#include <gtest/gtest.h>

#include "leo/constellation.h"
#include "leo/events.h"
#include "leo/launches.h"
#include "leo/outages.h"
#include "leo/speed.h"
#include "leo/subscribers.h"

namespace usaas::leo {
namespace {

using core::Date;

// ---- Launch schedule: the paper's §4.2 counts ----

TEST(Launches, FourteenLaunchesJanToSep2021) {
  const LaunchSchedule sched;
  EXPECT_EQ(sched.launches_between(Date(2021, 1, 1), Date(2021, 9, 30)), 14);
}

TEST(Launches, NoLaunchesJunToAug2021) {
  const LaunchSchedule sched;
  EXPECT_EQ(sched.launches_between(Date(2021, 6, 1), Date(2021, 8, 31)), 0);
}

TEST(Launches, ThirtySevenBatchesSep21ToDec22) {
  const LaunchSchedule sched;
  EXPECT_EQ(sched.launches_between(Date(2021, 9, 1), Date(2022, 12, 31)), 37);
}

TEST(Launches, Roughly60SatellitesPerLaunchIn2021H1) {
  const LaunchSchedule sched;
  int count = 0;
  int sats = 0;
  for (const Launch& l : sched.launches()) {
    if (Date(2021, 1, 1) <= l.date && l.date <= Date(2021, 9, 30)) {
      ++count;
      sats += l.satellites;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_NEAR(static_cast<double>(sats) / count, 60.0, 3.0);
}

TEST(Launches, CumulativeCountMonotone) {
  const LaunchSchedule sched;
  int prev = 0;
  for (int m = 0; m < 24; ++m) {
    const Date d = Date(2021, 1, 15).plus_months(m);
    const int cur = sched.satellites_launched_by(d);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Launches, CustomScheduleSortsAndQueries) {
  LaunchSchedule sched{{{Date(2022, 5, 1), 50}, {Date(2022, 1, 1), 40}}};
  EXPECT_EQ(sched.launches().front().date, Date(2022, 1, 1));
  EXPECT_EQ(sched.satellites_launched_by(Date(2022, 2, 1)), 40);
  EXPECT_EQ(sched.launches_in_month(2022, 5), 1);
}

// ---- Subscribers: the paper's cited milestones ----

TEST(Subscribers, MilestonesInterpolated) {
  const SubscriberModel model;
  EXPECT_NEAR(model.subscribers_on(Date(2021, 2, 9)), 10000, 500);
  EXPECT_NEAR(model.subscribers_on(Date(2021, 8, 10)), 90000, 4000);
  EXPECT_NEAR(model.subscribers_on(Date(2022, 12, 19)), 1000000, 50000);
}

TEST(Subscribers, About21KAddedJunToAug2021) {
  // §4.2: "Between Jun and Aug'21, 21K new users started using Starlink".
  const SubscriberModel model;
  const double added =
      model.added_between(Date(2021, 6, 25), Date(2021, 8, 10));
  EXPECT_NEAR(added, 21000, 4000);
}

TEST(Subscribers, GrowthIsMonotone) {
  const SubscriberModel model;
  double prev = 0.0;
  for (int m = 0; m < 24; ++m) {
    const double cur = model.subscribers_on(Date(2021, 1, 1).plus_months(m));
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Subscribers, TenfoldGrowthSep21ToDec22) {
  const SubscriberModel model;
  const double sep21 = model.subscribers_on(Date(2021, 9, 15));
  const double dec22 = model.subscribers_on(Date(2022, 12, 15));
  EXPECT_GT(dec22 / sep21, 8.0);
}

TEST(Subscribers, Validation) {
  EXPECT_THROW(SubscriberModel{std::vector<SubscriberMilestone>{}},
               std::invalid_argument);
  EXPECT_THROW(SubscriberModel({{Date(2021, 1, 1), -5.0, ""}}),
               std::invalid_argument);
}

// ---- Constellation ----

TEST(Constellation, CommissioningLagDelaysService) {
  const LaunchSchedule sched{{{Date(2022, 1, 1), 60}}};
  ConstellationParams params;
  params.commissioning_days = 30;
  params.annual_attrition = 0.0;
  const ConstellationModel model{sched, params};
  EXPECT_DOUBLE_EQ(model.operational_satellites(Date(2022, 1, 15)), 0.0);
  EXPECT_DOUBLE_EQ(model.operational_satellites(Date(2022, 2, 1)), 60.0);
}

TEST(Constellation, AttritionErodesFleet) {
  const LaunchSchedule sched{{{Date(2020, 1, 1), 100}}};
  ConstellationParams params;
  params.commissioning_days = 0;
  params.annual_attrition = 0.1;
  const ConstellationModel model{sched, params};
  const double after_one_year = model.operational_satellites(Date(2021, 1, 1));
  EXPECT_NEAR(after_one_year, 90.0, 0.2);
}

TEST(Constellation, EfficiencyRampBounds) {
  const ConstellationModel model;
  const auto& p = model.params();
  EXPECT_DOUBLE_EQ(model.coverage_efficiency(Date(2020, 6, 1)),
                   p.efficiency_start);
  EXPECT_DOUBLE_EQ(model.coverage_efficiency(Date(2023, 6, 1)),
                   p.efficiency_end);
  const double mid = model.coverage_efficiency(Date(2022, 1, 1));
  EXPECT_GT(mid, p.efficiency_start);
  EXPECT_LT(mid, p.efficiency_end);
}

TEST(Constellation, ParamValidation) {
  ConstellationParams bad;
  bad.commissioning_days = -1;
  EXPECT_THROW(ConstellationModel(LaunchSchedule{}, bad),
               std::invalid_argument);
  bad = ConstellationParams{};
  bad.annual_attrition = 1.0;
  EXPECT_THROW(ConstellationModel(LaunchSchedule{}, bad),
               std::invalid_argument);
}

// ---- Speed model: the Fig 7 trajectory claims ----

class SpeedTrajectory : public ::testing::Test {
 protected:
  SpeedModel model_{ConstellationModel{}, SubscriberModel{}};
  [[nodiscard]] double median_at(int y, int m) const {
    return model_.median_downlink_mbps(Date(y, m, 15));
  }
};

TEST_F(SpeedTrajectory, SpeedsRiseJanToJun2021) {
  EXPECT_GT(median_at(2021, 6), median_at(2021, 1) * 1.3);
}

TEST_F(SpeedTrajectory, SharpDipJunToAug2021) {
  // 21K new users, no commissioned launches: speeds fall.
  EXPECT_LT(median_at(2021, 8), median_at(2021, 6) * 0.92);
}

TEST_F(SpeedTrajectory, SteadyDeclineBeyondSep2021) {
  const double sep21 = median_at(2021, 9);
  const double dec22 = median_at(2022, 12);
  EXPECT_LT(dec22, sep21 * 0.65);
  // "Almost steady": each quarter no higher than the previous +10%.
  double prev = sep21;
  for (int q = 1; q <= 5; ++q) {
    const double cur =
        model_.median_downlink_mbps(Date(2021, 9, 15).plus_months(3 * q));
    EXPECT_LT(cur, prev * 1.10);
    prev = cur;
  }
}

TEST_F(SpeedTrajectory, Dec21FasterThanApr21) {
  // The precondition of the paper's fulcrum anomaly: "downlink speed is
  // higher in Dec'21 than Apr'21".
  EXPECT_GT(median_at(2021, 12), median_at(2021, 4));
}

TEST_F(SpeedTrajectory, DeclineDeceleratesIn2022) {
  // Feb'22 crash is steep; late 2022 is a slow drift — which is what lets
  // the adapted sentiment recover (§4.2 "the exact inverse").
  const double early_drop = median_at(2022, 1) - median_at(2022, 3);
  const double late_drop = median_at(2022, 9) - median_at(2022, 11);
  EXPECT_GT(early_drop, 2.0 * late_drop);
}

TEST_F(SpeedTrajectory, DrawTestDistributionAroundMedian) {
  core::Rng rng{30};
  std::vector<double> downs;
  for (int i = 0; i < 4001; ++i) {
    const auto s = model_.draw_test(Date(2022, 6, 15), rng);
    EXPECT_GT(s.downlink_mbps, 0.0);
    EXPECT_GT(s.uplink_mbps, 0.0);
    EXPECT_LT(s.uplink_mbps, s.downlink_mbps);
    EXPECT_GT(s.latency_ms, 10.0);
    downs.push_back(s.downlink_mbps);
  }
  std::nth_element(downs.begin(), downs.begin() + 2000, downs.end());
  EXPECT_NEAR(downs[2000] / median_at(2022, 6), 1.0, 0.08);
}

TEST_F(SpeedTrajectory, OutageCollapsesSpeeds) {
  core::Rng rng{31};
  int collapsed = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto s = model_.draw_test(Date(2022, 6, 15), rng, 1.0);
    if (s.during_outage) {
      ++collapsed;
      EXPECT_LT(s.downlink_mbps, 20.0);
      EXPECT_GT(s.latency_ms, 150.0);
    }
  }
  EXPECT_EQ(collapsed, 2000);
}

// ---- Outages ----

TEST(Outages, MajorOutagesOnPaperDates) {
  const OutageModel model{Date(2022, 1, 1), Date(2022, 12, 31), 1};
  EXPECT_GT(model.severity_on(Date(2022, 1, 7)), 0.4);
  EXPECT_GT(model.severity_on(Date(2022, 4, 22)), 0.25);
  EXPECT_GT(model.severity_on(Date(2022, 8, 30)), 0.4);
}

TEST(Outages, Jan7AndAug30AreReported_Apr22IsNot) {
  for (const Outage& o : OutageModel::major_outages_2022()) {
    if (o.date == Date(2022, 4, 22)) {
      EXPECT_FALSE(o.publicly_reported);
    } else {
      EXPECT_TRUE(o.publicly_reported);
    }
  }
}

TEST(Outages, TransientsAreFrequentAndSmall) {
  const OutageModel model{Date(2021, 1, 1), Date(2022, 12, 31), 7};
  std::size_t transients = 0;
  for (const Outage& o : model.outages()) {
    if (o.cause != OutageCause::kSoftwareGlobal) {
      ++transients;
      EXPECT_LE(o.affected_fraction, 0.12);
      EXPECT_LE(o.severity(), 0.05);
    }
  }
  // ~0.22/day over 730 days.
  EXPECT_GT(transients, 100u);
  EXPECT_LT(transients, 260u);
}

TEST(Outages, MostTransientsUnreported) {
  // "Most of these outages are not publicly reported" (§4.1).
  const OutageModel model{Date(2021, 1, 1), Date(2022, 12, 31), 7};
  std::size_t reported = 0;
  std::size_t transients = 0;
  for (const Outage& o : model.outages()) {
    if (o.cause == OutageCause::kSoftwareGlobal) continue;
    ++transients;
    if (o.publicly_reported) ++reported;
  }
  EXPECT_LT(static_cast<double>(reported) / transients, 0.1);
}

TEST(Outages, DaysAboveThreshold) {
  const OutageModel model{Date(2022, 1, 1), Date(2022, 12, 31), 3};
  const auto majors = model.days_above(0.2);
  EXPECT_EQ(majors.size(), 3u);  // exactly the three major 2022 outages
  const auto any = model.days_above(0.001);
  EXPECT_GT(any.size(), majors.size());
}

TEST(Outages, DeterministicForSeed) {
  const OutageModel a{Date(2022, 1, 1), Date(2022, 6, 30), 11};
  const OutageModel b{Date(2022, 1, 1), Date(2022, 6, 30), 11};
  EXPECT_EQ(a.outages().size(), b.outages().size());
}

// ---- Events ----

TEST(Events, PaperEventsPresent) {
  const EventTimeline timeline;
  EXPECT_FALSE(timeline.on(Date(2021, 2, 9)).empty());    // preorders
  EXPECT_FALSE(timeline.on(Date(2021, 11, 24)).empty());  // delay email
  EXPECT_FALSE(timeline.on(Date(2022, 3, 3)).empty());    // roaming tweet
}

TEST(Events, SearchFindsPreordersByKeyword) {
  const EventTimeline timeline;
  const std::vector<std::string> q{"preorder"};
  const auto hit = timeline.search(q, Date(2021, 2, 10), 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->date, Date(2021, 2, 9));
}

TEST(Events, SearchCannotSeeUncoveredEvents) {
  // The Apr 22 '22 outage never made the news: searching for "outage"
  // around that date finds nothing (the paper's exact experience).
  const EventTimeline timeline;
  const std::vector<std::string> q{"outage"};
  EXPECT_FALSE(timeline.search(q, Date(2022, 4, 22), 3).has_value());
}

TEST(Events, SearchWindowRespected) {
  const EventTimeline timeline;
  const std::vector<std::string> q{"preorder"};
  EXPECT_FALSE(timeline.search(q, Date(2021, 3, 15), 3).has_value());
  EXPECT_TRUE(timeline.search(q, Date(2021, 2, 12), 3).has_value());
}

TEST(Events, RoamingDiscoveryPrecedesAnnouncement) {
  const auto lead = EventTimeline::roaming_user_discovery_date().days_until(
      EventTimeline::roaming_announcement_date());
  EXPECT_GE(lead, 14);  // "~2 weeks before"
}

TEST(Events, LaunchesProduceEvents) {
  const LaunchSchedule sched;
  const EventTimeline timeline{sched};
  std::size_t launch_events = 0;
  for (const NewsEvent& e : timeline.events()) {
    if (e.headline.find("launches another") != std::string::npos) {
      ++launch_events;
    }
  }
  EXPECT_EQ(static_cast<int>(launch_events),
            sched.launches_between(Date(2019, 1, 1), Date(2023, 1, 1)));
}

TEST(Events, BuzzAccumulatesPerDay) {
  EventTimeline timeline{std::vector<NewsEvent>{
      {Date(2022, 1, 1), "a", {"x"}, EventSentiment::kNeutral, 0.2, true},
      {Date(2022, 1, 1), "b", {"y"}, EventSentiment::kNeutral, 0.3, true},
  }};
  EXPECT_NEAR(timeline.buzz_on(Date(2022, 1, 1)), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(timeline.buzz_on(Date(2022, 1, 2)), 0.0);
}

}  // namespace
}  // namespace usaas::leo
