// Tests that the behaviour model reproduces the paper's §3.2 shape claims.
// These are the planted curves; the integration tests in
// test_usaas_correlation.cpp check the *pipeline* recovers them from noisy
// session data.
#include "confsim/behavior.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace usaas::confsim {
namespace {

netsim::NetworkConditions make_conditions(double lat_ms, double loss_pct,
                                          double jitter_ms, double bw_mbps) {
  netsim::NetworkConditions c;
  c.latency = core::Milliseconds{lat_ms};
  c.loss = core::Percent{loss_pct};
  c.jitter = core::Milliseconds{jitter_ms};
  c.bandwidth = core::Mbps{bw_mbps};
  return c;
}

// Controlled "good" values for the non-swept metrics.
netsim::NetworkConditions at_latency(double ms) {
  return make_conditions(ms, 0.1, 2.0, 3.5);
}
netsim::NetworkConditions at_loss(double pct) {
  return make_conditions(20.0, pct, 2.0, 3.5);
}
netsim::NetworkConditions at_jitter(double ms) {
  return make_conditions(20.0, 0.1, ms, 3.5);
}
netsim::NetworkConditions at_bandwidth(double mbps) {
  return make_conditions(20.0, 0.1, 2.0, mbps);
}

class BehaviorShapes : public ::testing::Test {
 protected:
  UserBehaviorModel model_;
  BehaviorContext ctx_;
};

// ---- Fig 1 (left): latency ----

TEST_F(BehaviorShapes, LatencyDropsPresenceAndCamAbout20Percent) {
  const auto best = model_.expected_engagement(at_latency(0.0), ctx_);
  const auto worst = model_.expected_engagement(at_latency(300.0), ctx_);
  const double presence_drop =
      100.0 * (best.presence_pct - worst.presence_pct) / best.presence_pct;
  const double cam_drop =
      100.0 * (best.cam_on_pct - worst.cam_on_pct) / best.cam_on_pct;
  EXPECT_GT(presence_drop, 15.0);
  EXPECT_LT(presence_drop, 30.0);
  EXPECT_GT(cam_drop, 15.0);
  EXPECT_LT(cam_drop, 30.0);
}

TEST_F(BehaviorShapes, LatencyDropsMicOnMoreThan25Percent) {
  const auto best = model_.expected_engagement(at_latency(0.0), ctx_);
  const auto worst = model_.expected_engagement(at_latency(300.0), ctx_);
  const double mic_drop =
      100.0 * (best.mic_on_pct - worst.mic_on_pct) / best.mic_on_pct;
  EXPECT_GT(mic_drop, 25.0);
}

TEST_F(BehaviorShapes, MicSlopeSteeperBefore150msThenPlateaus) {
  const auto e0 = model_.expected_engagement(at_latency(0.0), ctx_);
  const auto e150 = model_.expected_engagement(at_latency(150.0), ctx_);
  const auto e300 = model_.expected_engagement(at_latency(300.0), ctx_);
  const double early_slope = (e0.mic_on_pct - e150.mic_on_pct) / 150.0;
  const double late_slope = (e150.mic_on_pct - e300.mic_on_pct) / 150.0;
  EXPECT_GT(early_slope, 3.0 * late_slope);
}

TEST_F(BehaviorShapes, MutingIsFirstResort) {
  // At moderate latency the mic loses proportionally more than the camera
  // ("muting themselves as the means of first resort").
  const auto best = model_.expected_engagement(at_latency(0.0), ctx_);
  const auto mid = model_.expected_engagement(at_latency(120.0), ctx_);
  const double mic_rel = mid.mic_on_pct / best.mic_on_pct;
  const double cam_rel = mid.cam_on_pct / best.cam_on_pct;
  EXPECT_LT(mic_rel, cam_rel);
}

// ---- Fig 1 (middle-left): loss ----

TEST_F(BehaviorShapes, LossUpTo2PercentMovesEngagementUnder10Percent) {
  const auto best = model_.expected_engagement(at_loss(0.0), ctx_);
  const auto at2 = model_.expected_engagement(at_loss(2.0), ctx_);
  EXPECT_LT(100.0 * (best.presence_pct - at2.presence_pct) / best.presence_pct,
            10.0);
  EXPECT_LT(100.0 * (best.cam_on_pct - at2.cam_on_pct) / best.cam_on_pct,
            10.0);
  EXPECT_LT(100.0 * (best.mic_on_pct - at2.mic_on_pct) / best.mic_on_pct,
            10.0);
}

TEST_F(BehaviorShapes, DropOffJumpsBeyond3PercentLoss) {
  const double drop_low = model_.damage(at_loss(1.0), ctx_).drop_off;
  const double drop_high = model_.damage(at_loss(3.0), ctx_).drop_off;
  EXPECT_LT(drop_low, 0.02);
  EXPECT_GT(drop_high, drop_low + 0.10);  // "increases ... by more than 10%"
}

TEST_F(BehaviorShapes, MitigationAblationSteepensLossCurve) {
  netsim::MitigationConfig off;
  off.enabled = false;
  const UserBehaviorModel unmitigated{default_behavior_params(), off};
  const auto mitigated_at2 = model_.expected_engagement(at_loss(2.0), ctx_);
  const auto raw_at2 = unmitigated.expected_engagement(at_loss(2.0), ctx_);
  // Without the app-layer safeguards, 2% loss hurts much more.
  EXPECT_LT(raw_at2.presence_pct, mitigated_at2.presence_pct - 5.0);
}

// ---- Fig 1 (middle-right): jitter ----

TEST_F(BehaviorShapes, JitterDropsCamOnMoreThan15PercentAt10ms) {
  const auto best = model_.expected_engagement(at_jitter(0.0), ctx_);
  const auto at10 = model_.expected_engagement(at_jitter(10.0), ctx_);
  const double cam_drop =
      100.0 * (best.cam_on_pct - at10.cam_on_pct) / best.cam_on_pct;
  EXPECT_GT(cam_drop, 15.0);
}

TEST_F(BehaviorShapes, JitterHitsCamHarderThanMic) {
  const auto best = model_.expected_engagement(at_jitter(0.0), ctx_);
  const auto at10 = model_.expected_engagement(at_jitter(10.0), ctx_);
  const double cam_drop = 1.0 - at10.cam_on_pct / best.cam_on_pct;
  const double mic_drop = 1.0 - at10.mic_on_pct / best.mic_on_pct;
  EXPECT_GT(cam_drop, 2.0 * mic_drop);
}

// ---- Fig 1 (right): bandwidth ----

TEST_F(BehaviorShapes, EngagementAt1MbpsWithin5PercentOfBest) {
  const auto best = model_.expected_engagement(at_bandwidth(4.0), ctx_);
  const auto at1 = model_.expected_engagement(at_bandwidth(1.0), ctx_);
  EXPECT_GT(at1.presence_pct / best.presence_pct, 0.95);
  EXPECT_GT(at1.cam_on_pct / best.cam_on_pct, 0.94);
}

TEST_F(BehaviorShapes, MicOnFlatAcrossBandwidth) {
  const auto at_low = model_.expected_engagement(at_bandwidth(0.5), ctx_);
  const auto at_high = model_.expected_engagement(at_bandwidth(4.0), ctx_);
  EXPECT_NEAR(at_low.mic_on_pct, at_high.mic_on_pct, 0.5);
}

TEST_F(BehaviorShapes, StarvationBelow1MbpsHurtsVideo) {
  const auto at1 = model_.expected_engagement(at_bandwidth(1.0), ctx_);
  const auto at_quarter = model_.expected_engagement(at_bandwidth(0.25), ctx_);
  EXPECT_LT(at_quarter.cam_on_pct, at1.cam_on_pct - 10.0);
}

// ---- Fig 2: compounding ----

TEST_F(BehaviorShapes, LatencyLossCompoundingReachesHalfPresence) {
  const auto best =
      model_.expected_engagement(make_conditions(5.0, 0.05, 2.0, 3.5), ctx_);
  const auto worst =
      model_.expected_engagement(make_conditions(300.0, 3.0, 2.0, 3.5), ctx_);
  const double ratio = worst.presence_pct / best.presence_pct;
  EXPECT_LT(ratio, 0.60);  // "dip by as much as ~50%"
  EXPECT_GT(ratio, 0.35);
}

TEST_F(BehaviorShapes, CompoundingIsSuperadditive) {
  const auto base =
      model_.expected_engagement(make_conditions(5.0, 0.05, 2.0, 3.5), ctx_);
  const auto lat_only =
      model_.expected_engagement(make_conditions(300.0, 0.05, 2.0, 3.5), ctx_);
  const auto loss_only =
      model_.expected_engagement(make_conditions(5.0, 3.0, 2.0, 3.5), ctx_);
  const auto both =
      model_.expected_engagement(make_conditions(300.0, 3.0, 2.0, 3.5), ctx_);
  const double lat_damage = base.presence_pct - lat_only.presence_pct;
  const double loss_damage = base.presence_pct - loss_only.presence_pct;
  const double joint_damage = base.presence_pct - both.presence_pct;
  EXPECT_GT(joint_damage, lat_damage + loss_damage);
}

// ---- Fig 3: platform ----

TEST_F(BehaviorShapes, MobilePlatformsMoreSensitiveToLoss) {
  auto presence_at = [&](Platform p, double loss) {
    BehaviorContext ctx;
    ctx.platform = p;
    return model_.expected_engagement(at_loss(loss), ctx).presence_pct;
  };
  auto rel_drop = [&](Platform p) {
    return 1.0 - presence_at(p, 3.2) / presence_at(p, 0.0);
  };
  EXPECT_GT(rel_drop(Platform::kAndroid), rel_drop(Platform::kWindowsPc));
  EXPECT_GT(rel_drop(Platform::kIos), rel_drop(Platform::kWindowsPc));
  EXPECT_GT(rel_drop(Platform::kAndroid), rel_drop(Platform::kIos));
  EXPECT_LT(rel_drop(Platform::kMacPc), rel_drop(Platform::kWindowsPc));
}

// ---- Confounders ----

TEST_F(BehaviorShapes, LargerMeetingsMuteMore) {
  BehaviorContext small;
  small.meeting_size = 3;
  BehaviorContext large;
  large.meeting_size = 15;
  const auto cond = at_latency(10.0);
  EXPECT_GT(model_.expected_engagement(cond, small).mic_on_pct,
            model_.expected_engagement(cond, large).mic_on_pct + 15.0);
}

TEST_F(BehaviorShapes, ConditioningScalesSensitivity) {
  BehaviorContext acclimatized;
  acclimatized.conditioning = 0.8;
  BehaviorContext sensitive;
  sensitive.conditioning = 1.2;
  const auto cond = at_latency(250.0);
  EXPECT_GT(model_.expected_engagement(cond, acclimatized).presence_pct,
            model_.expected_engagement(cond, sensitive).presence_pct);
}

// ---- Realization vs expectation ----

TEST_F(BehaviorShapes, RealizedMeanMatchesExpectation) {
  core::Rng rng{11};
  const auto cond = make_conditions(100.0, 0.5, 4.0, 2.5);
  const auto expected = model_.expected_engagement(cond, ctx_);
  double presence_acc = 0.0;
  double cam_acc = 0.0;
  double mic_acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto e = model_.realize(cond, ctx_, rng);
    presence_acc += e.presence_pct;
    cam_acc += e.cam_on_pct;
    mic_acc += e.mic_on_pct;
  }
  EXPECT_NEAR(presence_acc / n, expected.presence_pct, 1.5);
  EXPECT_NEAR(cam_acc / n, expected.cam_on_pct, 1.5);
  EXPECT_NEAR(mic_acc / n, expected.mic_on_pct, 1.5);
}

TEST_F(BehaviorShapes, RealizedValuesStayInBounds) {
  core::Rng rng{12};
  for (int i = 0; i < 5000; ++i) {
    const auto cond = make_conditions(rng.uniform(0.0, 400.0),
                                      rng.uniform(0.0, 5.0),
                                      rng.uniform(0.0, 20.0),
                                      rng.uniform(0.1, 4.0));
    const auto e = model_.realize(cond, ctx_, rng);
    EXPECT_GE(e.presence_pct, 0.0);
    EXPECT_LE(e.presence_pct, 100.0);
    EXPECT_GE(e.cam_on_pct, 0.0);
    EXPECT_LE(e.cam_on_pct, 100.0);
    EXPECT_GE(e.mic_on_pct, 0.0);
    EXPECT_LE(e.mic_on_pct, 100.0);
  }
}

TEST_F(BehaviorShapes, DropOffRateMatchesDamageProbability) {
  core::Rng rng{13};
  const auto cond = at_loss(3.2);
  const double p_drop = model_.damage(cond, ctx_).drop_off;
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    drops += model_.realize(cond, ctx_, rng).dropped_early ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, p_drop, 0.01);
}

// Property sweep: damage is monotone non-decreasing in each metric.
class DamageMonotone : public ::testing::TestWithParam<netsim::Metric> {};

TEST_P(DamageMonotone, DamageNonDecreasing) {
  const UserBehaviorModel model;
  const BehaviorContext ctx;
  const netsim::Metric metric = GetParam();
  double prev_presence = -1.0;
  for (int step = 0; step <= 20; ++step) {
    netsim::NetworkConditions c = make_conditions(10.0, 0.1, 1.0, 3.5);
    const double t = step / 20.0;
    switch (metric) {
      case netsim::Metric::kLatency:
        c.latency = core::Milliseconds{t * 350.0};
        break;
      case netsim::Metric::kLoss:
        c.loss = core::Percent{t * 5.0};
        break;
      case netsim::Metric::kJitter:
        c.jitter = core::Milliseconds{t * 15.0};
        break;
      case netsim::Metric::kBandwidth:
        c.bandwidth = core::Mbps{4.0 - t * 3.8};  // decreasing bw = worse
        break;
    }
    const double d = model.damage(c, ctx).presence;
    EXPECT_GE(d, prev_presence - 1e-9)
        << "metric " << to_string(metric) << " step " << step;
    prev_presence = d;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, DamageMonotone,
                         ::testing::Values(netsim::Metric::kLatency,
                                           netsim::Metric::kLoss,
                                           netsim::Metric::kJitter,
                                           netsim::Metric::kBandwidth));

}  // namespace
}  // namespace usaas::confsim
