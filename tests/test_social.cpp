#include <gtest/gtest.h>

#include "core/correlation.h"
#include "nlp/keywords.h"
#include "nlp/sentiment.h"
#include "social/subreddit.h"
#include "social/text_gen.h"

namespace usaas::social {
namespace {

using core::Date;

SubredditConfig quarter_config() {
  SubredditConfig cfg;
  cfg.seed = 99;
  cfg.first_day = Date(2022, 1, 1);
  cfg.last_day = Date(2022, 3, 31);
  return cfg;
}

RedditSim make_sim(const SubredditConfig& cfg) {
  leo::LaunchSchedule sched;
  return RedditSim{
      cfg,
      leo::SpeedModel{leo::ConstellationModel{sched}, leo::SubscriberModel{}},
      leo::OutageModel{cfg.first_day, cfg.last_day, 5},
      leo::EventTimeline{sched}};
}

TEST(TextGen, ExperienceBucketsMatchPolarity) {
  const TextGenerator gen;
  const nlp::SentimentAnalyzer analyzer;
  core::Rng rng{1};
  const auto very_pos = gen.experience(0.9, 120.0, rng);
  const auto very_neg = gen.experience(-0.9, 5.0, rng);
  EXPECT_GT(analyzer.score(very_pos.title + " " + very_pos.body).polarity(),
            0.3);
  EXPECT_LT(analyzer.score(very_neg.title + " " + very_neg.body).polarity(),
            -0.3);
}

TEST(TextGen, SpeedAppearsInExperienceText) {
  const TextGenerator gen;
  core::Rng rng{2};
  const auto text = gen.experience(0.0, 77.0, rng);
  EXPECT_NE(text.body.find("77"), std::string::npos);
}

TEST(TextGen, OutageReportsContainDictionaryTerms) {
  const TextGenerator gen;
  const auto& dict = nlp::KeywordDictionary::outage_dictionary();
  core::Rng rng{3};
  for (int i = 0; i < 50; ++i) {
    const auto global = gen.outage_report(true, true, rng);
    EXPECT_TRUE(dict.matches(global.title + " " + global.body));
    const auto transient = gen.outage_report(false, false, rng);
    EXPECT_TRUE(dict.matches(transient.title + " " + transient.body));
  }
}

TEST(TextGen, PressCoverageIncreasesKeywordDensity) {
  const TextGenerator gen;
  const auto& dict = nlp::KeywordDictionary::outage_dictionary();
  core::Rng rng{4};
  double covered = 0.0;
  double uncovered = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto c = gen.outage_report(true, true, rng);
    const auto u = gen.outage_report(true, false, rng);
    covered += static_cast<double>(dict.count_occurrences(c.title + " " + c.body));
    uncovered += static_cast<double>(dict.count_occurrences(u.title + " " + u.body));
  }
  EXPECT_GT(covered, uncovered * 1.5);
}

TEST(TextGen, EventReactionsLeadWithKeywords) {
  const TextGenerator gen;
  core::Rng rng{5};
  leo::NewsEvent ev;
  ev.headline = "Something happened";
  ev.keywords = {"preorder", "order"};
  ev.sentiment = leo::EventSentiment::kPositive;
  const auto text = gen.event_reaction(ev, rng);
  EXPECT_EQ(text.title.rfind("preorder", 0), 0u);  // title starts with kw
  EXPECT_NE(text.body.find("preorder"), std::string::npos);
}

TEST(TextGen, FeatureDiscoveryMentionsTermRepeatedly) {
  const TextGenerator gen;
  core::Rng rng{6};
  const auto text = gen.feature_discovery("roaming", rng);
  const std::string all = text.title + " " + text.body;
  std::size_t mentions = 0;
  for (std::size_t pos = all.find("roaming"); pos != std::string::npos;
       pos = all.find("roaming", pos + 1)) {
    ++mentions;
  }
  EXPECT_GE(mentions, 2u);
}

TEST(RedditSim, DeterministicForSeed) {
  const auto cfg = quarter_config();
  auto sim_a = make_sim(cfg);
  auto sim_b = make_sim(cfg);
  const auto a = sim_a.simulate();
  const auto b = sim_b.simulate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(a.size(), 200); ++i) {
    EXPECT_EQ(a[i].title, b[i].title);
    EXPECT_EQ(a[i].upvotes, b[i].upvotes);
  }
}

TEST(RedditSim, VolumeMatchesConfiguredRamp) {
  const auto cfg = quarter_config();
  auto sim = make_sim(cfg);
  const auto posts = sim.simulate();
  const auto days =
      static_cast<double>(cfg.first_day.days_until(cfg.last_day)) + 1.0;
  const double per_day = static_cast<double>(posts.size()) / days;
  // Early-2022 sits mid-ramp between 25 and 80 posts/day, plus event and
  // outage bursts.
  EXPECT_GT(per_day, 30.0);
  EXPECT_LT(per_day, 90.0);
}

TEST(RedditSim, PostsSortedByDateWithinRange) {
  auto sim = make_sim(quarter_config());
  const auto posts = sim.simulate();
  ASSERT_FALSE(posts.empty());
  for (std::size_t i = 1; i < posts.size(); ++i) {
    EXPECT_LE(posts[i - 1].date, posts[i].date);
  }
  EXPECT_GE(posts.front().date, Date(2022, 1, 1));
  EXPECT_LE(posts.back().date, Date(2022, 3, 31));
}

TEST(RedditSim, AllKindsPresent) {
  auto sim = make_sim(quarter_config());
  const auto posts = sim.simulate();
  std::array<int, 7> counts{};
  for (const auto& p : posts) counts[static_cast<std::size_t>(p.kind)]++;
  EXPECT_GT(counts[static_cast<std::size_t>(PostKind::kExperience)], 0);
  EXPECT_GT(counts[static_cast<std::size_t>(PostKind::kSpeedtest)], 0);
  EXPECT_GT(counts[static_cast<std::size_t>(PostKind::kOutageReport)], 0);
  EXPECT_GT(counts[static_cast<std::size_t>(PostKind::kEventReaction)], 0);
  EXPECT_GT(counts[static_cast<std::size_t>(PostKind::kQuestion)], 0);
  EXPECT_GT(counts[static_cast<std::size_t>(PostKind::kOffTopic)], 0);
  EXPECT_GT(counts[static_cast<std::size_t>(PostKind::kFeatureDiscovery)], 0);
}

TEST(RedditSim, SpeedtestPostsCarryScreenshots) {
  auto sim = make_sim(quarter_config());
  for (const auto& p : sim.simulate()) {
    if (p.kind == PostKind::kSpeedtest) {
      EXPECT_TRUE(p.screenshot.has_value());
      EXPECT_TRUE(p.true_test.has_value());
    } else {
      EXPECT_FALSE(p.screenshot.has_value());
    }
  }
}

TEST(RedditSim, AnalyzerRecoversIntendedPolarity) {
  // The generated text must carry its planted polarity: correlation
  // between true_polarity and the analyzer's recovered polarity should be
  // strongly positive across the corpus.
  auto sim = make_sim(quarter_config());
  const auto posts = sim.simulate();
  const nlp::SentimentAnalyzer analyzer;
  std::vector<double> truth;
  std::vector<double> recovered;
  for (const auto& p : posts) {
    truth.push_back(p.true_polarity);
    recovered.push_back(analyzer.score(p.full_text()).polarity());
  }
  EXPECT_GT(core::pearson(truth, recovered), 0.6);
}

TEST(RedditSim, OutageDaysSpawnReports) {
  auto sim = make_sim(quarter_config());
  const auto posts = sim.simulate();
  int jan7_reports = 0;
  for (const auto& p : posts) {
    if (p.date == Date(2022, 1, 7) && p.kind == PostKind::kOutageReport) {
      ++jan7_reports;
    }
  }
  EXPECT_GT(jan7_reports, 20);
}

TEST(RedditSim, RoamingStorylineRampsBeforeAnnouncement) {
  auto sim = make_sim(quarter_config());
  const auto posts = sim.simulate();
  int before_window = 0;
  int in_window = 0;
  const Date discovery = leo::EventTimeline::roaming_user_discovery_date();
  const Date announce = leo::EventTimeline::roaming_announcement_date();
  for (const auto& p : posts) {
    if (p.kind != PostKind::kFeatureDiscovery) continue;
    if (p.date < discovery) {
      ++before_window;
    } else if (p.date < announce) {
      ++in_window;
    }
  }
  EXPECT_EQ(before_window, 0);
  EXPECT_GT(in_window, 10);
}

TEST(RedditSim, DayTruthsCoverEveryDay) {
  auto sim = make_sim(quarter_config());
  (void)sim.simulate();
  const auto& truths = sim.day_truths();
  ASSERT_EQ(truths.size(), 90u);
  EXPECT_EQ(truths.front().date, Date(2022, 1, 1));
  EXPECT_EQ(truths.back().date, Date(2022, 3, 31));
  for (const auto& t : truths) {
    EXPECT_GT(t.median_speed, 0.0);
    EXPECT_GT(t.expectation, 0.0);
  }
}

TEST(RedditSim, ExpectationLagsSpeedChanges) {
  // The fulcrum: expectation is an EWMA, so after the Feb '22 speed crash
  // the expectation sits above the current median for a while.
  auto sim = make_sim(quarter_config());
  (void)sim.simulate();
  for (const auto& t : sim.day_truths()) {
    if (t.date == Date(2022, 3, 1)) {
      EXPECT_GT(t.expectation, t.median_speed);
    }
  }
}

TEST(RedditSim, InvalidConfigRejected) {
  auto cfg = quarter_config();
  cfg.last_day = Date(2021, 1, 1);
  EXPECT_THROW(make_sim(cfg), std::invalid_argument);
  cfg = quarter_config();
  cfg.experience_share = 0.9;
  cfg.offtopic_share = 0.5;
  EXPECT_THROW(make_sim(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace usaas::social
