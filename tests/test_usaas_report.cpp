#include "usaas/report.h"

#include <gtest/gtest.h>

#include "social/subreddit.h"

namespace usaas::service {
namespace {

using core::Date;

class ReportTest : public ::testing::Test {
 protected:
  // Corpus covering Q1-Q2 2022 (contains the Apr 22 outage week).
  static const std::vector<social::Post>& corpus() {
    static const auto instance = [] {
      social::SubredditConfig cfg;
      cfg.first_day = Date(2022, 1, 1);
      cfg.last_day = Date(2022, 6, 30);
      leo::LaunchSchedule sched;
      social::RedditSim sim{
          cfg,
          leo::SpeedModel{leo::ConstellationModel{sched},
                          leo::SubscriberModel{}},
          leo::OutageModel{cfg.first_day, cfg.last_day, 42},
          leo::EventTimeline{sched}};
      return sim.simulate();
    }();
    return instance;
  }
  nlp::SentimentAnalyzer analyzer_;
};

TEST_F(ReportTest, QuietWeekHasNoAlerts) {
  const auto report = generate_weekly_report(corpus(), Date(2022, 2, 7),
                                             analyzer_);
  EXPECT_GT(report.posts, 100u);
  EXPECT_TRUE(report.alert_days.empty());
  EXPECT_TRUE(report.pos_share.has_value());
  EXPECT_GT(report.speedtest_reports, 5u);
  ASSERT_TRUE(report.median_downlink_mbps.has_value());
  EXPECT_GT(*report.median_downlink_mbps, 20.0);
}

TEST_F(ReportTest, OutageWeekRaisesAlert) {
  // Week of Apr 18-24 contains the Apr 22 major outage.
  const auto report = generate_weekly_report(corpus(), Date(2022, 4, 18),
                                             analyzer_);
  ASSERT_FALSE(report.alert_days.empty());
  bool found = false;
  for (const auto& d : report.alert_days) {
    if (d == Date(2022, 4, 22)) found = true;
  }
  EXPECT_TRUE(found);
  // Sentiment balance collapses relative to the previous week.
  ASSERT_TRUE(report.pos_share_delta.has_value());
  EXPECT_LT(*report.pos_share_delta, 0.0);
}

TEST_F(ReportTest, RoamingWeekSurfacesEmergingTopic) {
  // Week of Feb 14-20: the roaming discovery storyline starts Feb 15. The
  // corpus begins Jan 1, so the default 56-day trend warm-up would still
  // be running — shorten the history window to fit the corpus.
  ReportConfig cfg;
  cfg.trend.history_days = 28;
  const auto report = generate_weekly_report(corpus(), Date(2022, 2, 14),
                                             analyzer_, cfg);
  bool roaming = false;
  for (const auto& t : report.emerging_topics) {
    if (t.find("roaming") != std::string::npos) roaming = true;
  }
  EXPECT_TRUE(roaming);
}

TEST_F(ReportTest, WindowBoundariesRespected) {
  const auto report = generate_weekly_report(corpus(), Date(2022, 3, 7),
                                             analyzer_);
  EXPECT_EQ(report.week_end, Date(2022, 3, 13));
  std::size_t manual = 0;
  for (const auto& p : corpus()) {
    if (Date(2022, 3, 7) <= p.date && p.date <= Date(2022, 3, 13)) ++manual;
  }
  EXPECT_EQ(report.posts, manual);
}

TEST_F(ReportTest, RenderTextContainsTheEssentials) {
  const auto report = generate_weekly_report(corpus(), Date(2022, 4, 18),
                                             analyzer_);
  const std::string text = report.render_text();
  EXPECT_NE(text.find("USaaS weekly report 2022-04-18"), std::string::npos);
  EXPECT_NE(text.find("ALERTS"), std::string::npos);
  EXPECT_NE(text.find("loudest day"), std::string::npos);
}

TEST_F(ReportTest, LoudestDayIsTheOutageDay) {
  const auto report = generate_weekly_report(corpus(), Date(2022, 4, 18),
                                             analyzer_);
  EXPECT_EQ(report.loudest_day, Date(2022, 4, 22));
  EXPECT_FALSE(report.loudest_day_summary.empty());
}

}  // namespace
}  // namespace usaas::service
