// The fixed-size pool + parallel_for that the sharded USaaS engine fans
// ingest/query work over. Registered under the `sanitize` ctest label:
// these tests are the ThreadSanitizer workload.
#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace usaas::core {
namespace {

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  ThreadPool pool{4};
  std::atomic<int> calls{0};
  parallel_for(&pool, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleItemRunsInline) {
  ThreadPool pool{4};
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  std::size_t begin = 99;
  std::size_t end = 99;
  parallel_for(&pool, 1, [&](std::size_t b, std::size_t e) {
    ran_on = std::this_thread::get_id();
    begin = b;
    end = e;
  });
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 1u);
}

TEST(ParallelFor, NullPoolRunsInline) {
  std::vector<int> hits(16, 0);
  parallel_for(nullptr, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ItemsFarFewerThanThreads) {
  ThreadPool pool{8};
  std::vector<std::atomic<int>> hits(3);
  parallel_for(&pool, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ItemsFarMoreThanThreads) {
  ThreadPool pool{2};
  const std::size_t n = 20000;
  std::vector<std::uint64_t> values(n, 0);
  parallel_for(&pool, n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) values[i] = i;
  });
  const std::uint64_t sum =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelFor, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool{4};
  std::atomic<int> completed{0};
  const auto run = [&] {
    parallel_for(&pool, 64, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (i == 17) throw std::runtime_error("shard 17 is cursed");
      }
      ++completed;
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // Every non-throwing chunk still ran to completion before the rethrow.
  EXPECT_GT(completed.load(), 0);
}

TEST(ParallelFor, ExceptionMessageSurvives) {
  ThreadPool pool{2};
  try {
    parallel_for(&pool, 8, [](std::size_t, std::size_t) {
      throw std::runtime_error("boom");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ParallelFor, GrainOverloadCoversFullRangeOnce) {
  ThreadPool pool{4};
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    std::vector<int> hits(777, 0);
    parallel_for(&pool, hits.size(), grain,
                 [&](std::size_t b, std::size_t e) {
                   for (std::size_t i = b; i < e; ++i) ++hits[i];
                 });
    for (const int h : hits) ASSERT_EQ(h, 1) << "grain " << grain;
  }
}

TEST(ParallelFor, GrainChunksCarryAtLeastGrainItems) {
  ThreadPool pool{8};
  const std::size_t n = 500;
  const std::size_t grain = 64;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(&pool, n, grain, [&](std::size_t b, std::size_t e) {
    const std::lock_guard<std::mutex> lock{mu};
    chunks.emplace_back(b, e);
  });
  ASSERT_FALSE(chunks.empty());
  std::size_t covered = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_GE(e - b, grain);
    covered += e - b;
  }
  EXPECT_EQ(covered, n);
}

TEST(ParallelFor, GrainAtLeastNRunsInline) {
  // n <= grain collapses to a single chunk on the calling thread — true
  // whatever the core count or USAAS_PARALLEL_FORCE says.
  ThreadPool pool{4};
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  std::size_t begin = 99;
  std::size_t end = 0;
  parallel_for(&pool, 100, 100, [&](std::size_t b, std::size_t e) {
    ran_on = std::this_thread::get_id();
    begin = b;
    end = e;
  });
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 100u);
}

TEST(EffectiveParallelism, BoundsAndNullPool) {
  EXPECT_EQ(effective_parallelism(nullptr), 1u);
  EXPECT_GE(hardware_parallelism(), 1u);
  ThreadPool pool{4};
  const std::size_t eff = effective_parallelism(&pool);
  EXPECT_GE(eff, 1u);
  // Never more than the pool itself, whether or not the hardware cap or
  // the USAAS_PARALLEL_FORCE override is in effect.
  EXPECT_LE(eff, pool.size());
}

TEST(ThreadPool, SubmitRunsTasks) {
  std::atomic<int> ran{0};
  ThreadPool pool{3};
  for (int i = 0; i < 24; ++i) {
    pool.submit([&] { ++ran; });
  }
  // Destructor drains before join, so waiting is only to exercise the
  // steady path; the loop bounds the test at ~2 s on a loaded machine.
  for (int spin = 0; spin < 2000 && ran.load() < 24; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 24);
}

TEST(ThreadPool, DestructionDrainsPendingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 40; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++ran;
      });
    }
    // Most tasks are still queued here; the destructor must run them all.
  }
  EXPECT_EQ(ran.load(), 40);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ConcurrentParallelForCallers) {
  // Two threads sharing one pool, each running its own parallel_for — the
  // completion bookkeeping must not cross wires.
  ThreadPool pool{4};
  std::atomic<std::uint64_t> total{0};
  const auto worker = [&] {
    for (int round = 0; round < 5; ++round) {
      parallel_for(&pool, 1000, [&](std::size_t b, std::size_t e) {
        total += e - b;
      });
    }
  };
  std::thread a{worker};
  std::thread b{worker};
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2u * 5u * 1000u);
}

}  // namespace
}  // namespace usaas::core
