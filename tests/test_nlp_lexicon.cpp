// Lexicon perfect-hash unit tests: round-trips, held-out misses, the
// collision-free ctor check, and the forced-failure fallback path.
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "nlp/lexicon.h"
#include "nlp/perfect_hash.h"

namespace usaas::nlp {
namespace {

// ---- PerfectStringIndex --------------------------------------------

TEST(PerfectStringIndex, RoundTripsEveryKey) {
  const std::vector<std::string_view> keys = {
      "outage", "down", "offline", "no", "service", "internet", "went",
      "dark",   "not",  "working", "a",  "ab",      "abc",      "",
  };
  PerfectStringIndex index;
  ASSERT_TRUE(index.build(keys));
  EXPECT_EQ(index.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(index.lookup(keys[i], string_hash(keys[i])), i)
        << "key: " << keys[i];
  }
}

TEST(PerfectStringIndex, MissesReturnNpos) {
  const std::vector<std::string_view> keys = {"alpha", "beta", "gamma"};
  PerfectStringIndex index;
  ASSERT_TRUE(index.build(keys));
  for (const std::string_view miss :
       {"delta", "alphaa", "alph", "ALPHA", "", " alpha", "beta "}) {
    EXPECT_EQ(index.lookup(miss, string_hash(miss)),
              PerfectStringIndex::npos)
        << "miss: " << miss;
  }
}

TEST(PerfectStringIndex, DuplicateKeysFailTheBuild) {
  const std::vector<std::string_view> keys = {"dup", "other", "dup"};
  PerfectStringIndex index;
  EXPECT_FALSE(index.build(keys));
  // Failed build leaves the safe empty state: everything misses.
  EXPECT_EQ(index.lookup("dup", string_hash("dup")),
            PerfectStringIndex::npos);
}

TEST(PerfectStringIndex, ZeroDisplacementBudgetFails) {
  const std::vector<std::string_view> keys = {"one", "two"};
  PerfectStringIndex index;
  EXPECT_FALSE(index.build(keys, {.max_displacement = 0}));
  EXPECT_EQ(index.lookup("one", string_hash("one")),
            PerfectStringIndex::npos);
}

TEST(PerfectStringIndex, EmptyAndUnbuiltAreSafe) {
  PerfectStringIndex unbuilt;
  EXPECT_EQ(unbuilt.lookup("x", string_hash("x")), PerfectStringIndex::npos);
  PerfectStringIndex empty;
  ASSERT_TRUE(empty.build({}));
  EXPECT_EQ(empty.lookup("x", string_hash("x")), PerfectStringIndex::npos);
}

TEST(PerfectStringIndex, LargeVocabularyBuilds) {
  std::vector<std::string> storage;
  storage.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    storage.push_back("word" + std::to_string(i * 7919));
  }
  std::vector<std::string_view> keys(storage.begin(), storage.end());
  PerfectStringIndex index;
  ASSERT_TRUE(index.build(keys));
  for (std::size_t i = 0; i < keys.size(); i += 97) {
    EXPECT_EQ(index.lookup(keys[i], string_hash(keys[i])), i);
  }
}

// ---- Lexicon fast path ---------------------------------------------

// builtin() construction already verifies the full vocabulary
// round-trips (the ctor check throws logic_error on any collision); the
// test pins that the check ran and spot-checks each word class through
// both paths.
TEST(LexiconFastPath, BuiltinRoundTrips) {
  const Lexicon& lex = Lexicon::builtin();
  ASSERT_TRUE(lex.has_fast_path());

  const struct {
    std::string_view word;
    double valence;
  } valences[] = {{"good", 0.5}, {"terrible", -0.8}, {"outage", -0.7},
                  {"down", -0.5}, {"rock-solid", 0.7}, {"packet", -0.05}};
  for (const auto& [word, valence] : valences) {
    const Lexicon::Entry* e = lex.probe(word, string_hash(word));
    ASSERT_NE(e, nullptr) << word;
    EXPECT_TRUE(e->flags & Lexicon::Entry::kHasValence);
    EXPECT_EQ(e->valence, valence) << word;
    // The packed record and the map path must agree exactly.
    ASSERT_TRUE(lex.valence(word).has_value());
    EXPECT_EQ(*lex.valence(word), e->valence);
  }

  for (const std::string_view negator :
       {"not", "no", "never", "isn't", "stopped", "zero"}) {
    const Lexicon::Entry* e = lex.probe(negator, string_hash(negator));
    ASSERT_NE(e, nullptr) << negator;
    EXPECT_TRUE(e->flags & Lexicon::Entry::kNegator) << negator;
    EXPECT_TRUE(lex.is_negator(negator));
  }

  const struct {
    std::string_view word;
    double multiplier;
  } intensities[] = {{"very", 1.3}, {"extremely", 1.5}, {"slightly", 0.6}};
  for (const auto& [word, multiplier] : intensities) {
    const Lexicon::Entry* e = lex.probe(word, string_hash(word));
    ASSERT_NE(e, nullptr) << word;
    EXPECT_TRUE(e->flags & Lexicon::Entry::kIntensifier);
    EXPECT_EQ(e->intensity, multiplier);
    EXPECT_EQ(*lex.intensity(word), multiplier);
  }
}

TEST(LexiconFastPath, HeldOutMissesReturnNothing) {
  const Lexicon& lex = Lexicon::builtin();
  for (const std::string_view miss :
       {"quasar", "zyzzyva", "goodly", "outagez", "dow", "downn",
        "GOOD", "not ", "", "tremendous", "router"}) {
    EXPECT_EQ(lex.probe(miss, string_hash(miss)), nullptr) << miss;
    EXPECT_FALSE(lex.valence(miss).has_value()) << miss;
    EXPECT_FALSE(lex.is_negator(miss)) << miss;
    EXPECT_FALSE(lex.intensity(miss).has_value()) << miss;
  }
}

TEST(LexiconFastPath, CustomBuildRoundTripsFullVocabulary) {
  Lexicon lex;
  std::vector<std::string> words;
  for (int i = 0; i < 300; ++i) {
    words.push_back("w" + std::to_string(i * 31 + 7));
  }
  for (std::size_t i = 0; i < words.size(); ++i) {
    lex.add_word(words[i], (static_cast<double>(i % 21) - 10.0) / 10.0);
  }
  ASSERT_TRUE(lex.has_fast_path());
  for (const auto& w : words) {
    const Lexicon::Entry* e = lex.probe(w, string_hash(w));
    ASSERT_NE(e, nullptr) << w;
    EXPECT_EQ(e->valence, *lex.valence(w)) << w;
  }
}

TEST(LexiconFastPath, CollidingBuildFallsBackToMaps) {
  // max_displacement = 0 makes every placement "collide"; the lexicon
  // must keep answering through the maps with the fast path off.
  Lexicon lex{PerfectHashOptions{.max_displacement = 0}};
  lex.add_word("good", 0.5);
  lex.add_negator("not");
  lex.add_intensifier("very", 1.3);
  EXPECT_FALSE(lex.has_fast_path());
  EXPECT_EQ(*lex.valence("good"), 0.5);
  EXPECT_TRUE(lex.is_negator("not"));
  EXPECT_EQ(*lex.intensity("very"), 1.3);
  EXPECT_FALSE(lex.valence("bad").has_value());
}

TEST(LexiconFastPath, MultiRoleWordCarriesAllFlags) {
  Lexicon lex;
  lex.add_word("down", -0.5);
  lex.add_negator("down");
  lex.add_intensifier("down", 1.1);
  ASSERT_TRUE(lex.has_fast_path());
  const Lexicon::Entry* e = lex.probe("down", string_hash("down"));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->flags & Lexicon::Entry::kHasValence);
  EXPECT_TRUE(e->flags & Lexicon::Entry::kNegator);
  EXPECT_TRUE(e->flags & Lexicon::Entry::kIntensifier);
  EXPECT_EQ(e->valence, -0.5);
  EXPECT_EQ(e->intensity, 1.1);
}

}  // namespace
}  // namespace usaas::nlp
