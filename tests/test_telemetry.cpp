// Telemetry-layer tests: histogram bucket-boundary exactness, sharded
// counter/histogram merges under concurrent writers (the TSan workload
// for the registry), Prometheus/JSON exposition goldens, the bit-for-bit
// stats()-vs-exposition agreement the operator endpoint promises,
// slow-query-log worst-N semantics, per-query execution reports, and the
// USAAS_TELEMETRY kill switch (zero registration, not hidden values).
//
// Registered under the `sanitize` ctest label with USAAS_PARALLEL_FORCE=1
// so the concurrent-writer tests race-check the sharded cells under
// -DUSAAS_SANITIZE=thread.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "core/telemetry/exposition.h"
#include "core/telemetry/metrics.h"
#include "core/telemetry/slow_query_log.h"
#include "core/telemetry/trace.h"
#include "usaas/query_service.h"

namespace usaas::core::telemetry {
namespace {

// ---- Histogram bucket boundaries -----------------------------------------

TEST(HistogramBuckets, PowerOfTwoEdgesAreExact) {
  // Bucket i >= 1 holds [2^(kHistogramMinExp+i), 2^(kHistogramMinExp+i+1)):
  // a value landing exactly on a lower edge belongs to that bucket, and
  // the largest double below the edge belongs to the previous one.
  for (int i = 1; i + 1 < static_cast<int>(kHistogramBuckets); ++i) {
    const double edge = std::ldexp(1.0, kHistogramMinExp + i);
    EXPECT_EQ(histogram_bucket(edge), static_cast<std::size_t>(i))
        << "edge 2^" << (kHistogramMinExp + i);
    const double below = std::nextafter(edge, 0.0);
    EXPECT_EQ(histogram_bucket(below), static_cast<std::size_t>(i - 1))
        << "just below 2^" << (kHistogramMinExp + i);
    const double above = std::nextafter(edge, 1e300);
    EXPECT_EQ(histogram_bucket(above), static_cast<std::size_t>(i))
        << "just above 2^" << (kHistogramMinExp + i);
  }
}

TEST(HistogramBuckets, DegenerateValuesLandInBucketZero) {
  EXPECT_EQ(histogram_bucket(0.0), 0u);
  EXPECT_EQ(histogram_bucket(-1.0), 0u);
  EXPECT_EQ(histogram_bucket(std::numeric_limits<double>::quiet_NaN()), 0u);
  // Subnormal tails below the first edge also collapse into bucket 0.
  EXPECT_EQ(histogram_bucket(std::ldexp(1.0, kHistogramMinExp - 5)), 0u);
}

TEST(HistogramBuckets, OverflowClampsToLastBucket) {
  EXPECT_EQ(histogram_bucket(1e300), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket(std::numeric_limits<double>::infinity()),
            kHistogramBuckets - 1);
}

TEST(HistogramBuckets, UpperEdges) {
  EXPECT_DOUBLE_EQ(histogram_bucket_upper(0),
                   std::ldexp(1.0, kHistogramMinExp + 1));
  EXPECT_DOUBLE_EQ(histogram_bucket_upper(30), 2.0);  // 2^(-30+30+1)
  EXPECT_TRUE(std::isinf(histogram_bucket_upper(kHistogramBuckets - 1)));
}

TEST(HistogramSnapshotTest, CountSumMaxAndQuantileOrdering) {
  Registry reg{true};
  Histogram h = reg.histogram("latency_seconds");
  core::Rng rng{42};
  double max_seen = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(1e-6, 2.0);
    max_seen = std::max(max_seen, v);
    h.observe(v);
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.max, max_seen);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_GT(snap.p50, 0.0);
  // Cumulative buckets end at +Inf with cumulative == count.
  ASSERT_FALSE(snap.buckets.empty());
  EXPECT_TRUE(std::isinf(snap.buckets.back().first));
  EXPECT_EQ(snap.buckets.back().second, snap.count);
}

TEST(HistogramSnapshotTest, SingleValueQuantilesClampToMax) {
  Registry reg{true};
  Histogram h = reg.histogram("one_seconds");
  h.observe(1.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1.0);
  // 1.0 lands in bucket [1, 2); interpolation is clamped to the exact max.
  EXPECT_DOUBLE_EQ(snap.p50, 1.0);
  EXPECT_DOUBLE_EQ(snap.p99, 1.0);
}

// ---- Sharded cells under concurrent writers ------------------------------

TEST(ShardedMerge, ConcurrentCounterIncrementsAreLossless) {
  Registry reg{true};
  Counter c = reg.counter("hits_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(ShardedMerge, ConcurrentHistogramObservesAreLossless) {
  Registry reg{true};
  Histogram h = reg.histogram("work_seconds");
  constexpr int kThreads = 8;
  constexpr int kObserves = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // Observing 1.0 keeps the double sum exact at any accumulation order,
    // so the merged sum is a hard equality even under real concurrency.
    threads.emplace_back([&h] {
      for (int i = 0; i < kObserves; ++i) h.observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kObserves);
  EXPECT_DOUBLE_EQ(snap.sum,
                   static_cast<double>(kThreads) * kObserves);
  EXPECT_DOUBLE_EQ(snap.max, 1.0);
}

TEST(RegistryTest, GetOrCreateSharesCellsByNameAndLabels) {
  Registry reg{true};
  Counter a = reg.counter("requests_total", "", {{"path", "cache"}});
  Counter b = reg.counter("requests_total", "", {{"path", "cache"}});
  Counter other = reg.counter("requests_total", "", {{"path", "scan"}});
  a.add(3);
  b.add(4);
  other.add(1);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(other.value(), 1u);
  // Two label sets of one name are one family with two samples.
  EXPECT_EQ(reg.metric_count(), 2u);
  const std::vector<MetricFamily> families = reg.collect();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].samples.size(), 2u);
}

// ---- Exposition ----------------------------------------------------------

TEST(Exposition, PrometheusGolden) {
  Registry reg{true};
  Counter c = reg.counter("requests_total", "Requests served");
  c.add(3);
  Gauge g = reg.gauge("staleness_records", "Staged records");
  g.set(12.5);
  Histogram h = reg.histogram("latency_seconds", "Query latency");
  h.observe(1.0);
  const std::string expected =
      "# HELP requests_total Requests served\n"
      "# TYPE requests_total counter\n"
      "requests_total 3\n"
      "# HELP staleness_records Staged records\n"
      "# TYPE staleness_records gauge\n"
      "staleness_records 12.5\n"
      "# HELP latency_seconds Query latency\n"
      "# TYPE latency_seconds histogram\n"
      "latency_seconds_bucket{le=\"2\"} 1\n"
      "latency_seconds_bucket{le=\"+Inf\"} 1\n"
      "latency_seconds_sum 1\n"
      "latency_seconds_count 1\n"
      "latency_seconds{quantile=\"0.5\"} 1\n"
      "latency_seconds{quantile=\"0.95\"} 1\n"
      "latency_seconds{quantile=\"0.99\"} 1\n"
      "latency_seconds_max 1\n";
  EXPECT_EQ(to_prometheus(reg.collect()), expected);
}

TEST(Exposition, JsonGolden) {
  Registry reg{true};
  Counter c = reg.counter("requests_total", "Requests", {{"path", "scan"}});
  c.add(2);
  SlowQueryEntry slow;
  slow.fingerprint = 0xabcdef;
  slow.seconds = 0.25;
  slow.path = "scan";
  slow.shards_scanned = 4;
  slow.sessions = 100;
  slow.corpus_version = 7;
  slow.hits = 3;
  slow.last_seen_version = 9;
  slow.trace_id = 0x1234abcd5678ef90ull;
  const std::string expected =
      "{\n"
      "  \"counters\": {\"requests_total{path=\\\"scan\\\"}\": 2},\n"
      "  \"gauges\": {},\n"
      "  \"histograms\": {},\n"
      "  \"slow_queries\": [{\"fingerprint\": \"0000000000abcdef\", "
      "\"seconds\": 0.25, \"path\": \"scan\", \"shards_from_summary\": 0, "
      "\"shards_scanned\": 4, \"sessions\": 100, \"corpus_version\": 7, "
      "\"hits\": 3, \"last_seen_version\": 9, "
      "\"trace_id\": \"1234abcd5678ef90\"}]\n"
      "}\n";
  EXPECT_EQ(to_json(reg.collect(), {slow}), expected);
}

TEST(Exposition, FormatDoubleRoundTrips) {
  for (const double v : {0.1, 1.0 / 3.0, 12345.6789, 2.5e-7, 1e300}) {
    EXPECT_EQ(std::stod(format_double(v)), v) << format_double(v);
  }
  EXPECT_EQ(format_double(42.0), "42");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "+Inf");
}

// ---- Slow-query log ------------------------------------------------------

// Regression: the same-fingerprint path only adopted the entry's fields
// (corpus_version included) when the new run was SLOWER. A hot dashboard
// whose worst run happened at version 3 therefore looked like it had not
// run since version 3, no matter how often it ran afterwards. Freshness
// now lives in last_seen_version, stamped unconditionally — while the
// worst-run fields and the slowest-first golden order stay untouched.
TEST(SlowQueryLogTest, LastSeenVersionAdvancesOnFasterRerunsGoldenOrder) {
  SlowQueryLog log{4};
  log.record({1, 0.50, "scan", 0, 1, 10, 3, 1});
  log.record({2, 0.20, "scan", 0, 1, 10, 3, 1});
  // Fingerprint 1 re-runs FASTER against a newer corpus.
  log.record({1, 0.05, "cache", 0, 0, 10, 7, 1});
  const auto worst = log.worst();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].fingerprint, 1u);  // golden order: slowest first
  EXPECT_DOUBLE_EQ(worst[0].seconds, 0.50);  // worst run kept
  EXPECT_EQ(worst[0].path, "scan");
  EXPECT_EQ(worst[0].corpus_version, 3u);    // ...with its version
  EXPECT_EQ(worst[0].last_seen_version, 7u);  // freshness advanced
  EXPECT_EQ(worst[0].hits, 2u);
  EXPECT_EQ(worst[1].fingerprint, 2u);
  EXPECT_EQ(worst[1].last_seen_version, 3u);

  // A slower re-run adopts the timing fields AND the freshness stamp.
  log.record({2, 0.80, "scan", 0, 2, 12, 9, 1});
  const auto slower = log.find(2);
  ASSERT_TRUE(slower.has_value());
  EXPECT_DOUBLE_EQ(slower->seconds, 0.80);
  EXPECT_EQ(slower->corpus_version, 9u);
  EXPECT_EQ(slower->last_seen_version, 9u);
  // find() misses cleanly on unknown fingerprints.
  EXPECT_FALSE(log.find(42).has_value());
}

TEST(SlowQueryLogTest, KeepsWorstAndEvictsFastestResident) {
  SlowQueryLog log{2};
  log.record({1, 0.10, "scan", 0, 1, 10, 1, 1});
  log.record({2, 0.30, "scan", 0, 1, 10, 1, 1});
  // Newcomer slower than the fastest resident: fingerprint 1 (0.10s) is
  // evicted.
  log.record({3, 0.20, "scan", 0, 1, 10, 1, 1});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.evictions(), 1u);
  const std::vector<SlowQueryEntry> worst = log.worst();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].fingerprint, 2u);  // slowest first
  EXPECT_EQ(worst[1].fingerprint, 3u);
  // Newcomer faster than every resident: dropped, no eviction.
  log.record({4, 0.05, "scan", 0, 1, 10, 1, 1});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.evictions(), 1u);
}

TEST(SlowQueryLogTest, DedupesByFingerprintAndTracksHits) {
  SlowQueryLog log{4};
  log.record({9, 0.10, "scan", 0, 2, 10, 1, 1});
  // Faster rerun: hits bump, timing fields stay at the worst run.
  log.record({9, 0.05, "cache", 0, 0, 10, 2, 1});
  // Slower rerun: adopted as the new worst.
  log.record({9, 0.40, "summary-merge", 3, 0, 10, 3, 1});
  EXPECT_EQ(log.size(), 1u);
  const SlowQueryEntry entry = log.worst().front();
  EXPECT_EQ(entry.hits, 3u);
  EXPECT_DOUBLE_EQ(entry.seconds, 0.40);
  EXPECT_EQ(entry.path, "summary-merge");
  EXPECT_EQ(entry.shards_from_summary, 3u);
}

TEST(SlowQueryLogTest, ZeroCapacityDisables) {
  SlowQueryLog log{0};
  log.record({1, 1.0, "scan", 0, 1, 10, 1, 1});
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.worst().empty());
}

// ---- Kill switch ---------------------------------------------------------

TEST(KillSwitch, EnabledValueParsing) {
  EXPECT_TRUE(telemetry_enabled_value(nullptr));
  EXPECT_TRUE(telemetry_enabled_value("on"));
  EXPECT_TRUE(telemetry_enabled_value("1"));
  EXPECT_TRUE(telemetry_enabled_value(""));
  EXPECT_FALSE(telemetry_enabled_value("off"));
  EXPECT_FALSE(telemetry_enabled_value("OFF"));
  EXPECT_FALSE(telemetry_enabled_value("0"));
  EXPECT_FALSE(telemetry_enabled_value("false"));
  EXPECT_FALSE(telemetry_enabled_value("No"));
}

TEST(KillSwitch, DisabledRegistryRegistersNothing) {
  Registry reg{false};
  Counter c = reg.counter("requests_total");
  Gauge g = reg.gauge("staleness");
  Histogram h = reg.histogram("latency_seconds");
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_FALSE(static_cast<bool>(h));
  // No-op, not hidden: nothing was registered at all.
  c.add(5);
  g.set(1.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(reg.metric_count(), 0u);
  EXPECT_TRUE(reg.collect().empty());
}

TEST(KillSwitch, EnvironmentVariableDisablesAFreshRegistry) {
  ::setenv("USAAS_TELEMETRY", "off", 1);
  const Registry off;
  EXPECT_FALSE(off.enabled());
  ::setenv("USAAS_TELEMETRY", "on", 1);
  const Registry on;
  EXPECT_TRUE(on.enabled());
  ::unsetenv("USAAS_TELEMETRY");
  const Registry unset;
  EXPECT_TRUE(unset.enabled());
}

// ---- TraceSpan -----------------------------------------------------------

TEST(TraceSpanTest, LapsAndFinishObserveOnce) {
  Registry reg{true};
  Histogram total = reg.histogram("span_seconds");
  Histogram phase_a = reg.histogram("phase_seconds", "", {{"phase", "a"}});
  Histogram phase_b = reg.histogram("phase_seconds", "", {{"phase", "b"}});
  {
    TraceSpan span{total};
    span.lap(phase_a);
    span.lap(phase_b);
    EXPECT_GE(span.finish(), 0.0);
    // Idempotent: the destructor must not observe a second total.
  }
  EXPECT_EQ(total.snapshot().count, 1u);
  EXPECT_EQ(phase_a.snapshot().count, 1u);
  EXPECT_EQ(phase_b.snapshot().count, 1u);
}

TEST(TraceSpanTest, DeadSpanIsFree) {
  TraceSpan span{Histogram{}};
  span.lap(Histogram{});
  EXPECT_DOUBLE_EQ(span.finish(), 0.0);
}

}  // namespace
}  // namespace usaas::core::telemetry

// ---- Service-level wiring ------------------------------------------------

namespace usaas::service {
namespace {

using core::Date;
using core::telemetry::Registry;

std::vector<confsim::CallRecord> synth_calls(std::uint64_t seed,
                                             std::size_t n) {
  constexpr confsim::Platform kPlatforms[] = {
      confsim::Platform::kWindowsPc, confsim::Platform::kMacPc,
      confsim::Platform::kIos, confsim::Platform::kAndroid};
  core::Rng rng{seed};
  std::vector<confsim::CallRecord> calls;
  calls.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    confsim::CallRecord call;
    call.call_id = i;
    call.start.date = Date(2022, 1 + static_cast<int>(i % 3),
                           1 + static_cast<int>(rng.uniform_int(0, 27)));
    call.start.time = {10, 30};
    for (int p = 0; p < 3; ++p) {
      confsim::ParticipantRecord rec;
      rec.user_id = i * 8 + static_cast<std::uint64_t>(p);
      rec.platform = kPlatforms[rng.uniform_int(0, 3)];
      rec.meeting_size = 3;
      const double latency = 20.0 + rng.uniform(0.0, 250.0);
      const auto agg = [](double v) {
        return netsim::MetricAggregate{v, v * 0.95, v * 1.7};
      };
      rec.network.latency_ms = agg(latency);
      rec.network.loss_pct = agg(rng.uniform(0.0, 3.0));
      rec.network.jitter_ms = agg(rng.uniform(0.0, 15.0));
      rec.network.bandwidth_mbps = agg(1.0 + rng.uniform(0.0, 50.0));
      rec.network.duration_seconds = 1800.0;
      rec.network.sample_count = 360;
      rec.presence_pct = std::max(0.0, 95.0 - latency / 8.0);
      rec.cam_on_pct = std::max(0.0, 60.0 - latency / 6.0);
      rec.mic_on_pct = std::max(0.0, 35.0 - latency / 10.0);
      if (rng.bernoulli(0.2)) {
        rec.mos = core::clamp_mos(core::Mos{4.5 - latency / 120.0});
      }
      call.participants.push_back(rec);
    }
    calls.push_back(std::move(call));
  }
  return calls;
}

std::vector<social::Post> synth_posts(std::uint64_t seed, std::size_t n) {
  static const char* kBodies[] = {
      "service went down tonight, complete outage, everything offline",
      "the connection has been great lately, fast and reliable",
      "pretty average week, speeds are okay, nothing special",
  };
  core::Rng rng{seed};
  std::vector<social::Post> posts;
  posts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    social::Post post;
    post.id = i;
    post.date = Date(2022, 1 + static_cast<int>(i % 3),
                     1 + static_cast<int>(rng.uniform_int(0, 27)));
    post.author_id = rng.uniform_int(1, 500);
    post.title = "experience report";
    post.body = kBodies[rng.uniform_int(0, 2)];
    posts.push_back(std::move(post));
  }
  return posts;
}

/// Whole-month window matching a default summary axis exactly: the
/// summary-merge fast path answers every shard.
Query summary_query() {
  Query q;
  q.first = Date(2022, 1, 1);
  q.last = Date(2022, 3, 31);
  q.metric = netsim::Metric::kLatency;
  q.metric_lo = 0.0;
  q.metric_hi = 300.0;
  q.bins = 10;
  return q;
}

QueryService make_service(Registry* reg, bool summaries = true) {
  QueryServiceConfig config;
  config.threads = 4;
  config.shard_summaries = summaries;
  config.telemetry = reg;
  QueryService service{config};
  service.ingest_calls(synth_calls(7, 400));
  service.ingest_posts(synth_posts(8, 300));
  return service;
}

TEST(QueryExecutionReport, SummaryMergeThenCacheHit) {
  Registry reg{true};
  const QueryService service = make_service(&reg);
  const Query q = summary_query();
  const std::uint64_t fp = query_fingerprint(q);

  const Insight cold = service.run(q);
  EXPECT_EQ(cold.execution.served_by, ServedBy::kSummaryMerge);
  EXPECT_FALSE(cold.execution.cache_hit);
  EXPECT_GT(cold.execution.shards_from_summary, 0u);
  EXPECT_EQ(cold.execution.shards_scanned, 0u);
  EXPECT_GT(cold.execution.post_shards_from_summary, 0u);
  EXPECT_EQ(cold.execution.post_shards_scanned, 0u);
  EXPECT_GT(cold.execution.seconds, 0.0);

  const Insight warm = service.run(q);
  EXPECT_EQ(warm.execution.served_by, ServedBy::kCache);
  EXPECT_TRUE(warm.execution.cache_hit);
  EXPECT_EQ(warm.execution.shards_from_summary, 0u);
  EXPECT_EQ(warm.execution.shards_scanned, 0u);
  // The cached aggregates are byte-identical to the cold run's.
  EXPECT_EQ(warm.sessions, cold.sessions);
  EXPECT_EQ(warm.posts, cold.posts);

  // Both runs share the fingerprint; the slow log deduped them.
  const auto slow = service.slow_queries();
  ASSERT_FALSE(slow.empty());
  bool found = false;
  for (const auto& entry : slow) {
    if (entry.fingerprint != fp) continue;
    found = true;
    EXPECT_EQ(entry.hits, 2u);
  }
  EXPECT_TRUE(found);
}

TEST(QueryExecutionReport, BoundaryWindowIsMixedAndNoSummariesIsScan) {
  Registry reg{true};
  const QueryService with_summaries = make_service(&reg);
  Query cut = summary_query();
  cut.first = Date(2022, 1, 15);  // cuts January: its shards must scan
  const Insight mixed = with_summaries.run(cut);
  EXPECT_EQ(mixed.execution.served_by, ServedBy::kMixed);
  EXPECT_GT(mixed.execution.shards_scanned, 0u);
  EXPECT_GT(mixed.execution.shards_from_summary, 0u);

  Registry reg2{true};
  const QueryService no_summaries = make_service(&reg2, false);
  const Insight scanned = no_summaries.run(summary_query());
  EXPECT_EQ(scanned.execution.served_by, ServedBy::kScan);
  EXPECT_EQ(scanned.execution.shards_from_summary, 0u);
  EXPECT_GT(scanned.execution.shards_scanned, 0u);
}

TEST(QueryExecutionReport, InvalidQueryIsReported) {
  Registry reg{true};
  const QueryService service = make_service(&reg);
  Query bad = summary_query();
  bad.bins = 0;
  const Insight insight = service.run(bad);
  EXPECT_EQ(insight.error, QueryError::kZeroBins);
  EXPECT_EQ(insight.execution.served_by, ServedBy::kInvalid);
}

TEST(ServiceTelemetry, QueryHistogramsAndPathCountersPopulate) {
  Registry reg{true};
  const QueryService service = make_service(&reg);
  (void)service.run(summary_query());
  (void)service.run(summary_query());  // cache hit
  Query bad = summary_query();
  bad.metric_lo = 5.0;
  bad.metric_hi = 5.0;
  (void)service.run(bad);  // invalid

  EXPECT_EQ(reg.histogram("usaas_query_seconds").snapshot().count, 3u);
  const auto phase_count = [&](const char* phase) {
    return reg
        .histogram("usaas_query_phase_seconds", "", {{"phase", phase}})
        .snapshot()
        .count;
  };
  EXPECT_EQ(phase_count("validate"), 3u);
  EXPECT_EQ(phase_count("cache-probe"), 2u);  // invalid query exits first
  EXPECT_EQ(phase_count("implicit"), 1u);     // only the cold compute
  EXPECT_EQ(phase_count("social"), 1u);
  const auto path_count = [&](const char* path) {
    return reg.counter("usaas_queries_total", "", {{"path", path}}).value();
  };
  EXPECT_EQ(path_count("summary-merge"), 1u);
  EXPECT_EQ(path_count("cache"), 1u);
  EXPECT_EQ(path_count("invalid"), 1u);
  EXPECT_EQ(path_count("scan"), 0u);
  // Batch-ingest phase histograms saw both corpora.
  const auto ingest_count = [&](const char* corpus) {
    return reg
        .histogram("usaas_ingest_batch_seconds", "",
                   {{"corpus", corpus}, {"phase", "total"}})
        .snapshot()
        .count;
  };
  EXPECT_EQ(ingest_count("sessions"), 1u);
  EXPECT_EQ(ingest_count("posts"), 1u);
}

TEST(ServiceTelemetry, ExpositionAgreesBitForBitWithStats) {
  Registry reg{true};
  const QueryService service = make_service(&reg);
  (void)service.run(summary_query());
  (void)service.run(summary_query());

  const QueryService::ServiceStats stats = service.stats();
  const std::string text = service.metrics_text();
  const std::string json = service.metrics_json();
  // Every (sample line, exact integer) pair must appear verbatim in the
  // text exposition, and the same key/value in the JSON snapshot — both
  // are rendered from one stats() snapshot, so equality is exact, not
  // approximate.
  const std::vector<std::pair<std::string, std::uint64_t>> expected = {
      {"usaas_ingest_records_total{corpus=\"sessions\"}",
       stats.sessions.records},
      {"usaas_ingest_records_total{corpus=\"posts\"}", stats.posts.records},
      {"usaas_ingest_batches_total{corpus=\"sessions\"}",
       stats.sessions.batches},
      {"usaas_insight_cache_lookups_total{outcome=\"hit\"}",
       stats.insight_cache.hits},
      {"usaas_insight_cache_lookups_total{outcome=\"miss\"}",
       stats.insight_cache.misses},
      {"usaas_query_fanout_shards_total{source=\"summary\"}",
       stats.fanout.shards_from_summary},
      {"usaas_query_fanout_shards_total{source=\"scan\"}",
       stats.fanout.shards_scanned},
      {"usaas_corpus_version", stats.corpus_version},
  };
  for (const auto& [key, value] : expected) {
    const std::string line = key + " " + std::to_string(value) + "\n";
    EXPECT_NE(text.find(line), std::string::npos) << "missing: " << line;
    std::string json_key = "\"";
    for (const char c : key) {
      if (c == '"') json_key += "\\\"";
      else json_key.push_back(c);
    }
    json_key += "\": " + std::to_string(value);
    EXPECT_NE(json.find(json_key), std::string::npos)
        << "missing in JSON: " << json_key;
  }
  // The slow-query log surfaced the query in both formats.
  EXPECT_NE(text.find("usaas_slow_query_seconds"), std::string::npos);
  EXPECT_NE(json.find("\"slow_queries\": [{"), std::string::npos);
  EXPECT_GT(service.slow_queries().size(), 0u);
}

TEST(ServiceTelemetry, DisabledRegistryZeroRegistration) {
  Registry reg{false};
  const QueryService service = make_service(&reg);
  const Insight insight = service.run(summary_query());
  // Execution classification still works (it's structural, not timed)...
  EXPECT_EQ(insight.execution.served_by, ServedBy::kSummaryMerge);
  // ...but the kill switch removed every clock read and registration.
  EXPECT_DOUBLE_EQ(insight.execution.seconds, 0.0);
  EXPECT_EQ(reg.metric_count(), 0u);
  EXPECT_TRUE(service.slow_queries().empty());
  // The stats-derived exposition still renders (from stats(), which is
  // always maintained); only registry-native metrics are absent.
  const std::string text = service.metrics_text();
  EXPECT_EQ(text.find("usaas_query_seconds"), std::string::npos);
  EXPECT_NE(text.find("usaas_ingest_records_total"), std::string::npos);
}

}  // namespace
}  // namespace usaas::service
