// FairQueue tests: the EDF cross-tenant wait queue as a deterministic
// machine under core::VirtualClock. The contract under test:
//
//   * an empty queue tries inline and never parks a winner;
//   * a single parked waiter is its own dispatcher and naps EXACTLY the
//     seconds its try_acquire asked for — so admission waits stay
//     bit-identical with PR 7's private-sleep loop;
//   * deadlines are enforced at the exact instant: a waiter that cannot
//     pay by its deadline comes back kDeadline with the clock parked on
//     the deadline, not beyond it;
//   * under contention the earliest ABSOLUTE deadline is offered the
//     resource first, regardless of which thread parked first.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler_clock.h"
#include "usaas/fair_queue.h"

namespace usaas::service {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FairQueue, EmptyQueueAcquiresInlineWithoutParking) {
  core::VirtualClock clock;
  FairQueue queue{clock};
  int calls = 0;
  const FairQueue::TryAcquire take = [&](double) {
    ++calls;
    return 0.0;
  };
  EXPECT_EQ(queue.wait(10.0, take), FairQueue::Outcome::kAcquired);
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // no nap was needed
  const FairQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.acquired_immediate, 1u);
  EXPECT_EQ(stats.parked, 0u);
  EXPECT_EQ(stats.depth, 0u);
}

TEST(FairQueue, UnpayableIsReportedWithoutWaiting) {
  core::VirtualClock clock;
  FairQueue queue{clock};
  const FairQueue::TryAcquire never = [](double) { return kInf; };
  EXPECT_EQ(queue.wait(10.0, never), FairQueue::Outcome::kUnpayable);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  EXPECT_EQ(queue.stats().unpayable, 1u);
}

TEST(FairQueue, SingleWaiterNapsExactlyTheNeededSeconds) {
  core::VirtualClock clock;
  FairQueue queue{clock};
  // The resource becomes payable at t = 0.25 exactly (a 4 tokens/s
  // bucket refilling one token from empty).
  const double ready_at = 0.25;
  const FairQueue::TryAcquire take = [&](double now) {
    return now >= ready_at ? 0.0 : ready_at - now;
  };
  EXPECT_EQ(queue.wait(10.0, take), FairQueue::Outcome::kAcquired);
  // The waiter was its own dispatcher: one nap of exactly 0.25 virtual
  // seconds, not 0.25 + epsilon.
  EXPECT_DOUBLE_EQ(clock.now(), 0.25);
  const FairQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.parked, 1u);
  EXPECT_EQ(stats.acquired_queued, 1u);
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_EQ(stats.max_depth, 1u);
}

TEST(FairQueue, DeadlinePassesAtTheExactInstant) {
  core::VirtualClock clock;
  FairQueue queue{clock};
  // Needs a full second of accrual but only has 0.3 s of patience: the
  // dispatcher must nap min(need, slack) = 0.3 and expire on the dot.
  const FairQueue::TryAcquire starved = [](double now) {
    return now >= 1.0 ? 0.0 : 1.0 - now;
  };
  EXPECT_EQ(queue.wait(0.3, starved), FairQueue::Outcome::kDeadline);
  EXPECT_DOUBLE_EQ(clock.now(), 0.3);
  EXPECT_EQ(queue.stats().expired, 1u);
}

TEST(FairQueue, TokensLandingExactlyAtTheDeadlineStillAcquire) {
  core::VirtualClock clock;
  FairQueue queue{clock};
  // Payable at t = 0.5 and the deadline IS 0.5: PR 7's loop admitted
  // this boundary case (wait <= deadline), so the queue must too.
  const FairQueue::TryAcquire take = [](double now) {
    return now >= 0.5 ? 0.0 : 0.5 - now;
  };
  EXPECT_EQ(queue.wait(0.5, take), FairQueue::Outcome::kAcquired);
  EXPECT_DOUBLE_EQ(clock.now(), 0.5);
}

// The two threaded tests below gate the resource on an atomic flag and
// keep the waiters parked until BOTH threads are in the queue, so the
// asserted ordering is independent of thread arrival order. While the
// gate is closed every closure asks for the queue's minimum nap (1 µs of
// virtual time per dispatcher sweep), and the deadlines are huge (1e6 s)
// — the virtual clock cannot plausibly reach them while the real-time
// main thread flips the gate, so nothing expires prematurely.

TEST(FairQueue, EarliestDeadlineIsOfferedTheResourceFirst) {
  core::VirtualClock clock;
  FairQueue queue{clock};

  std::atomic<bool> released{false};
  std::vector<std::string> order;  // guarded by FairQueue::mu_: the
                                   // closures run with the queue locked.
  const auto taker = [&](const std::string& who) {
    return FairQueue::TryAcquire{[&, who](double) -> double {
      if (!released.load(std::memory_order_acquire)) return 1e-6;
      order.push_back(who);
      return 0.0;
    }};
  };
  const FairQueue::TryAcquire take_late = taker("late");
  const FairQueue::TryAcquire take_early = taker("early");

  FairQueue::Outcome late_outcome{};
  FairQueue::Outcome early_outcome{};
  std::thread late{[&] { late_outcome = queue.wait(2e6, take_late); }};
  std::thread early{[&] { early_outcome = queue.wait(1e6, take_early); }};
  while (queue.depth() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  released.store(true, std::memory_order_release);
  late.join();
  early.join();

  EXPECT_EQ(late_outcome, FairQueue::Outcome::kAcquired);
  EXPECT_EQ(early_outcome, FairQueue::Outcome::kAcquired);
  // Whichever thread parked first, deadline 1e6 outranks deadline 2e6.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "early");
  EXPECT_EQ(order[1], "late");
  const FairQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.acquired_queued, 2u);
  EXPECT_EQ(stats.max_depth, 2u);
  EXPECT_EQ(stats.depth, 0u);
}

TEST(FairQueue, ExpiringWaiterDoesNotStarveTheQueue) {
  core::VirtualClock clock;
  FairQueue queue{clock};
  // Once the gate opens, the EARLIER-deadline waiter can never pay
  // before its deadline (needs 1e7 s of accrual) while the later one can
  // pay instantly. The dead weight at the head of the EDF order must
  // expire on its own schedule without blocking the payable waiter
  // behind it.
  std::atomic<bool> released{false};
  const FairQueue::TryAcquire hopeless = [&](double) -> double {
    return released.load(std::memory_order_acquire) ? 1e7 : 1e-6;
  };
  const FairQueue::TryAcquire payable = [&](double) -> double {
    return released.load(std::memory_order_acquire) ? 0.0 : 1e-6;
  };
  FairQueue::Outcome hopeless_outcome{};
  FairQueue::Outcome payable_outcome{};
  std::thread a{[&] { hopeless_outcome = queue.wait(1e6, hopeless); }};
  std::thread b{[&] { payable_outcome = queue.wait(2e6, payable); }};
  while (queue.depth() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  released.store(true, std::memory_order_release);
  a.join();
  b.join();
  EXPECT_EQ(hopeless_outcome, FairQueue::Outcome::kDeadline);
  EXPECT_EQ(payable_outcome, FairQueue::Outcome::kAcquired);
  const FairQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.acquired_queued, 1u);
  EXPECT_EQ(stats.depth, 0u);
}

TEST(FairQueue, NewArrivalInterruptsADispatcherNap) {
  // Real clock on purpose: the regression is that a SteadyClock
  // dispatcher napping min(need, slack) could not be interrupted, so an
  // immediately-payable latecomer sat out the whole stale nap. Waiter A
  // would nap ~60 s at a time; every later arrival must cut that short.
  core::SteadyClock clock;
  FairQueue queue{clock};
  std::atomic<bool> released{false};
  const FairQueue::TryAcquire hopeless = [&](double) -> double {
    return released.load(std::memory_order_acquire) ? kInf : 60.0;
  };
  const FairQueue::TryAcquire instant = [](double) { return 0.0; };
  const double t0 = clock.now();
  FairQueue::Outcome a_outcome{};
  std::thread a{[&] { a_outcome = queue.wait(t0 + 240.0, hopeless); }};
  while (queue.depth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  // Let A become the dispatcher and start its long nap.
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  // B arrives mid-nap and can pay instantly: it must be served by the
  // interrupt-triggered re-sweep, not after A's nap expires.
  const auto b_start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.wait(t0 + 480.0, instant), FairQueue::Outcome::kAcquired);
  const double b_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    b_start)
          .count();
  EXPECT_LT(b_seconds, 5.0);  // a lost interrupt means ~60 s here
  // Release A (now unpayable) and interrupt the fresh nap with a third
  // arrival so A observes the verdict promptly instead of 60 s later.
  released.store(true, std::memory_order_release);
  EXPECT_EQ(queue.wait(t0 + 480.0, instant), FairQueue::Outcome::kAcquired);
  a.join();
  EXPECT_EQ(a_outcome, FairQueue::Outcome::kUnpayable);
  EXPECT_EQ(queue.stats().depth, 0u);
}

}  // namespace
}  // namespace usaas::service
