// Shard-equivalence property tests: the per-month x per-platform,
// multi-threaded ingest/query path must answer every query exactly like
// the flat single-shard sequential path — bit-identical for counts, dates
// and ratio aggregates, within 1e-9 for floating-point reductions (whose
// summation order legitimately differs between shard layouts).
//
// Also registered under the `sanitize` ctest label: with
// -DUSAAS_SANITIZE=thread this is the ThreadSanitizer workload for the
// whole ingest/fan-out/merge machinery.
#include <gtest/gtest.h>

#include <vector>

#include "confsim/dataset.h"
#include "social/subreddit.h"
#include "usaas/query_service.h"

namespace usaas::service {
namespace {

using core::Date;

constexpr double kTol = 1e-9;

struct Corpus {
  std::vector<confsim::CallRecord> calls;
  std::vector<social::Post> posts;
};

Corpus make_corpus(std::uint64_t seed) {
  Corpus corpus;
  confsim::DatasetConfig cfg;
  cfg.seed = seed;
  cfg.num_calls = 500;
  cfg.first_day = Date(2022, 1, 3);
  cfg.last_day = Date(2022, 3, 31);
  corpus.calls = confsim::CallDatasetGenerator{cfg}.generate();

  social::SubredditConfig scfg;
  scfg.first_day = Date(2022, 1, 1);
  scfg.last_day = Date(2022, 3, 31);
  leo::LaunchSchedule sched;
  social::RedditSim sim{
      scfg,
      leo::SpeedModel{leo::ConstellationModel{sched}, leo::SubscriberModel{}},
      leo::OutageModel{scfg.first_day, scfg.last_day, seed},
      leo::EventTimeline{sched}};
  corpus.posts = sim.simulate();
  return corpus;
}

QueryService build_service(const Corpus& corpus, QueryServiceConfig config) {
  QueryService svc{config};
  // Split the ingest into two batches to exercise repeated ingestion.
  const std::size_t half = corpus.calls.size() / 2;
  svc.ingest_calls(std::span{corpus.calls}.subspan(0, half));
  svc.ingest_calls(std::span{corpus.calls}.subspan(half));
  svc.ingest_posts(corpus.posts);
  svc.train_predictor();
  return svc;
}

std::vector<Query> query_battery() {
  std::vector<Query> queries;
  Query base;
  base.first = Date(2022, 1, 1);
  base.last = Date(2022, 3, 31);
  base.metric = netsim::Metric::kLatency;
  base.metric_lo = 0.0;
  base.metric_hi = 300.0;
  base.bins = 8;
  queries.push_back(base);  // full window

  Query platform = base;  // platform filter (prunes shard columns)
  platform.platform = confsim::Platform::kAndroid;
  queries.push_back(platform);

  Query access = base;  // access filter (pure per-record predicate)
  access.access = netsim::AccessTechnology::kLeoSatellite;
  queries.push_back(access);

  Query window = base;  // mid-month boundaries on both ends
  window.first = Date(2022, 1, 18);
  window.last = Date(2022, 2, 9);
  queries.push_back(window);

  Query loss = base;  // different sweep metric + bin layout
  loss.metric = netsim::Metric::kLoss;
  loss.metric_lo = 0.0;
  loss.metric_hi = 10.0;
  loss.bins = 5;
  loss.platform = confsim::Platform::kIos;
  queries.push_back(loss);

  return queries;
}

void expect_equivalent(const Insight& a, const Insight& b, bool bit_exact) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.rated_sessions, b.rated_sessions);
  EXPECT_EQ(a.posts, b.posts);
  EXPECT_EQ(a.outage_mention_days, b.outage_mention_days);
  EXPECT_EQ(a.outage_alert_days, b.outage_alert_days);
  // A ratio of exact integer counts: identical in every layout.
  EXPECT_DOUBLE_EQ(a.strong_positive_share, b.strong_positive_share);

  ASSERT_EQ(a.engagement.size(), b.engagement.size());
  for (std::size_t c = 0; c < a.engagement.size(); ++c) {
    const EngagementCurve& ca = a.engagement[c];
    const EngagementCurve& cb = b.engagement[c];
    EXPECT_EQ(ca.engagement_metric, cb.engagement_metric);
    ASSERT_EQ(ca.points.size(), cb.points.size());
    for (std::size_t p = 0; p < ca.points.size(); ++p) {
      EXPECT_EQ(ca.points[p].sessions, cb.points[p].sessions);
      EXPECT_DOUBLE_EQ(ca.points[p].metric_value, cb.points[p].metric_value);
      if (bit_exact) {
        EXPECT_DOUBLE_EQ(ca.points[p].engagement, cb.points[p].engagement);
      } else {
        EXPECT_NEAR(ca.points[p].engagement, cb.points[p].engagement, kTol);
      }
    }
  }

  ASSERT_EQ(a.mos_spearman.size(), b.mos_spearman.size());
  for (std::size_t i = 0; i < a.mos_spearman.size(); ++i) {
    EXPECT_EQ(a.mos_spearman[i].first, b.mos_spearman[i].first);
    EXPECT_NEAR(a.mos_spearman[i].second, b.mos_spearman[i].second, kTol);
  }

  ASSERT_EQ(a.observed_mean_mos.has_value(), b.observed_mean_mos.has_value());
  if (a.observed_mean_mos) {
    EXPECT_NEAR(*a.observed_mean_mos, *b.observed_mean_mos, kTol);
  }
  ASSERT_EQ(a.predicted_mean_mos.has_value(),
            b.predicted_mean_mos.has_value());
  if (a.predicted_mean_mos) {
    EXPECT_NEAR(*a.predicted_mean_mos, *b.predicted_mean_mos, kTol);
  }
}

TEST(ShardEquivalence, ShardedParallelMatchesFlatSequential) {
  for (const std::uint64_t seed : {11u, 97u, 2023u}) {
    SCOPED_TRACE(testing::Message() << "corpus seed " << seed);
    const Corpus corpus = make_corpus(seed);
    const QueryService reference =
        build_service(corpus, {ShardingPolicy::kSingleShard, 0});
    const QueryService sharded =
        build_service(corpus, {ShardingPolicy::kMonthPlatform, 4});
    ASSERT_EQ(reference.ingested_sessions(), sharded.ingested_sessions());
    ASSERT_EQ(reference.ingested_posts(), sharded.ingested_posts());
    EXPECT_EQ(reference.session_shards(), 1u);
    EXPECT_GT(sharded.session_shards(), 1u);
    for (const Query& q : query_battery()) {
      expect_equivalent(reference.run(q), sharded.run(q),
                        /*bit_exact=*/false);
    }
  }
}

TEST(ShardEquivalence, ResultsIndependentOfThreadCount) {
  // Same shard layout, different thread counts: the merge order is fixed
  // by shard keys, so results must be bit-identical — not merely close.
  const Corpus corpus = make_corpus(7);
  const QueryService sequential =
      build_service(corpus, {ShardingPolicy::kMonthPlatform, 0});
  const QueryService threaded =
      build_service(corpus, {ShardingPolicy::kMonthPlatform, 8});
  ASSERT_EQ(sequential.session_shards(), threaded.session_shards());
  for (const Query& q : query_battery()) {
    const Insight a = sequential.run(q);
    const Insight b = threaded.run(q);
    expect_equivalent(a, b, /*bit_exact=*/true);
    ASSERT_EQ(a.observed_mean_mos.has_value(), b.observed_mean_mos.has_value());
    if (a.observed_mean_mos) {
      EXPECT_DOUBLE_EQ(*a.observed_mean_mos, *b.observed_mean_mos);
    }
    if (a.predicted_mean_mos) {
      EXPECT_DOUBLE_EQ(*a.predicted_mean_mos, *b.predicted_mean_mos);
    }
  }
}

TEST(ShardEquivalence, MonthPlatformPartitioningIsComplete) {
  const Corpus corpus = make_corpus(3);
  const QueryService sharded =
      build_service(corpus, {ShardingPolicy::kMonthPlatform, 2});
  // 3 months x up to 4 platforms, and every session landed in some shard.
  EXPECT_LE(sharded.session_shards(), 12u);
  EXPECT_GE(sharded.session_shards(), 3u);
  EXPECT_EQ(sharded.post_shards(), 3u);

  // Narrowing the window to one fully-covered month prunes to that month's
  // sessions only; summing per-platform queries reconstructs the total.
  Query feb;
  feb.first = Date(2022, 2, 1);
  feb.last = Date(2022, 2, 28);
  const Insight whole = sharded.run(feb);
  std::size_t by_platform = 0;
  for (const confsim::Platform p :
       {confsim::Platform::kWindowsPc, confsim::Platform::kMacPc,
        confsim::Platform::kIos, confsim::Platform::kAndroid}) {
    Query narrowed = feb;
    narrowed.platform = p;
    by_platform += sharded.run(narrowed).sessions;
  }
  EXPECT_EQ(by_platform, whole.sessions);
  EXPECT_GT(whole.sessions, 0u);
}

}  // namespace
}  // namespace usaas::service
