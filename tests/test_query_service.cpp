// End-to-end: the USaaS query façade over both signal corpora (§5, Fig 8).
#include "usaas/query_service.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "confsim/dataset.h"
#include "social/subreddit.h"

namespace usaas::service {
namespace {

using core::Date;

class QueryServiceTest : public ::testing::Test {
 protected:
  static const QueryService& service() {
    static const QueryService instance = [] {
      QueryService svc;
      confsim::DatasetConfig cfg;
      cfg.seed = 11;
      cfg.num_calls = 8000;
      cfg.sampling = confsim::ConditionSampling::kPopulation;
      cfg.first_day = Date(2022, 1, 3);
      cfg.last_day = Date(2022, 4, 29);
      const auto calls = confsim::CallDatasetGenerator{cfg}.generate();
      svc.ingest_calls(calls);

      social::SubredditConfig scfg;
      scfg.first_day = Date(2022, 1, 1);
      scfg.last_day = Date(2022, 6, 30);
      leo::LaunchSchedule sched;
      social::RedditSim sim{
          scfg,
          leo::SpeedModel{leo::ConstellationModel{sched},
                          leo::SubscriberModel{}},
          leo::OutageModel{scfg.first_day, scfg.last_day, 42},
          leo::EventTimeline{sched}};
      const auto posts = sim.simulate();
      svc.ingest_posts(posts);
      svc.train_predictor();
      return svc;
    }();
    return instance;
  }

  static Query default_query() {
    Query q;
    q.first = Date(2022, 1, 1);
    q.last = Date(2022, 6, 30);
    q.metric = netsim::Metric::kLatency;
    q.metric_lo = 0.0;
    q.metric_hi = 300.0;
    return q;
  }
};

TEST_F(QueryServiceTest, IngestionCounters) {
  EXPECT_GT(service().ingested_sessions(), 30000u);
  EXPECT_GT(service().ingested_posts(), 5000u);
}

TEST_F(QueryServiceTest, InsightHasAllEngagementCurves) {
  const auto insight = service().run(default_query());
  ASSERT_EQ(insight.engagement.size(), 3u);
  for (const auto& curve : insight.engagement) {
    EXPECT_FALSE(curve.points.empty());
  }
  EXPECT_GT(insight.sessions, 30000u);
}

TEST_F(QueryServiceTest, PredictorBackfillsCoverage) {
  const auto insight = service().run(default_query());
  ASSERT_TRUE(insight.observed_mean_mos.has_value());
  ASSERT_TRUE(insight.predicted_mean_mos.has_value());
  // Observed covers ~0.25% of sessions; predicted covers all of them, and
  // the two agree on the average to within half a star.
  EXPECT_LT(insight.rated_sessions, insight.sessions / 50);
  EXPECT_NEAR(*insight.predicted_mean_mos, *insight.observed_mean_mos, 0.5);
}

TEST_F(QueryServiceTest, MosCorrelationsExposed) {
  const auto insight = service().run(default_query());
  ASSERT_FALSE(insight.mos_spearman.empty());
  double presence_corr = 0.0;
  for (const auto& [metric, corr] : insight.mos_spearman) {
    if (metric == EngagementMetric::kPresence) presence_corr = corr;
  }
  EXPECT_GT(presence_corr, 0.05);
}

TEST_F(QueryServiceTest, PlatformFilterNarrowsSessions) {
  auto q = default_query();
  const auto all = service().run(q);
  q.platform = confsim::Platform::kAndroid;
  const auto android = service().run(q);
  EXPECT_LT(android.sessions, all.sessions / 4);
  EXPECT_GT(android.sessions, 0u);
}

TEST_F(QueryServiceTest, SocialAggregatesPresent) {
  const auto insight = service().run(default_query());
  EXPECT_GT(insight.posts, 5000u);
  EXPECT_GT(insight.strong_positive_share, 0.0);
  EXPECT_LT(insight.strong_positive_share, 1.0);
  EXPECT_GT(insight.outage_mention_days, 30u);
}

TEST_F(QueryServiceTest, OutageAlertsIncludeJan7AndApr22) {
  const auto insight = service().run(default_query());
  auto has = [&](const Date& d) {
    return std::find(insight.outage_alert_days.begin(),
                     insight.outage_alert_days.end(),
                     d) != insight.outage_alert_days.end();
  };
  EXPECT_TRUE(has(Date(2022, 1, 7)));
  EXPECT_TRUE(has(Date(2022, 4, 22)));
}

TEST_F(QueryServiceTest, DateWindowFiltersSocialSide) {
  auto q = default_query();
  q.first = Date(2022, 2, 1);
  q.last = Date(2022, 2, 28);
  const auto feb = service().run(q);
  const auto all = service().run(default_query());
  EXPECT_LT(feb.posts, all.posts / 3);
}

// ---- Query validation regressions: malformed inputs must yield an empty
// Insight, never NaN or degenerate bins. ----

TEST_F(QueryServiceTest, InvalidQueriesYieldEmptyInsight) {
  std::vector<Query> invalid;
  auto reversed_window = default_query();
  reversed_window.first = Date(2022, 6, 30);
  reversed_window.last = Date(2022, 1, 1);
  invalid.push_back(reversed_window);

  auto reversed_metric = default_query();
  reversed_metric.metric_lo = 300.0;
  reversed_metric.metric_hi = 0.0;
  invalid.push_back(reversed_metric);

  auto empty_metric = default_query();
  empty_metric.metric_lo = 100.0;
  empty_metric.metric_hi = 100.0;  // lo == hi is empty too
  invalid.push_back(empty_metric);

  auto zero_bins = default_query();
  zero_bins.bins = 0;
  invalid.push_back(zero_bins);

  for (const Query& q : invalid) {
    EXPECT_FALSE(q.valid());
    const auto insight = service().run(q);
    EXPECT_TRUE(insight.engagement.empty());
    EXPECT_TRUE(insight.mos_spearman.empty());
    EXPECT_EQ(insight.sessions, 0u);
    EXPECT_EQ(insight.posts, 0u);
    EXPECT_FALSE(insight.observed_mean_mos.has_value());
    EXPECT_FALSE(insight.predicted_mean_mos.has_value());
    EXPECT_TRUE(insight.outage_alert_days.empty());
  }
}

// ---- Structured validation: each rejection reason has a stable enum and
// a message carrying the offending values, and run() stamps the reason
// into the Insight. One test per QueryError. ----

TEST_F(QueryServiceTest, ValidQueryReportsNoError) {
  const Query q = default_query();
  const QueryValidation verdict = q.validate();
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.error, QueryError::kNone);
  EXPECT_TRUE(verdict.message.empty());
  EXPECT_EQ(service().run(q).error, QueryError::kNone);
}

TEST_F(QueryServiceTest, ReversedWindowRejectedWithReason) {
  auto q = default_query();
  q.first = Date(2022, 6, 30);
  q.last = Date(2022, 1, 1);
  const QueryValidation verdict = q.validate();
  EXPECT_EQ(verdict.error, QueryError::kReversedWindow);
  EXPECT_NE(verdict.message.find("2022-06-30"), std::string::npos);
  EXPECT_NE(verdict.message.find("2022-01-01"), std::string::npos);
  EXPECT_STREQ(to_string(verdict.error), "reversed-window");
  EXPECT_EQ(service().run(q).error, QueryError::kReversedWindow);
}

TEST_F(QueryServiceTest, NonFiniteMetricRangeRejectedWithReason) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const double bad : {std::nan(""), kInf, -kInf}) {
    auto lo_bad = default_query();
    lo_bad.metric_lo = bad;
    EXPECT_EQ(lo_bad.validate().error, QueryError::kNonFiniteMetricRange);
    auto hi_bad = default_query();
    hi_bad.metric_hi = bad;
    const QueryValidation verdict = hi_bad.validate();
    EXPECT_EQ(verdict.error, QueryError::kNonFiniteMetricRange);
    EXPECT_FALSE(verdict.message.empty());
    EXPECT_EQ(service().run(hi_bad).error,
              QueryError::kNonFiniteMetricRange);
  }
}

TEST_F(QueryServiceTest, EmptyMetricRangeRejectedWithReason) {
  auto q = default_query();
  q.metric_lo = 100.0;
  q.metric_hi = 100.0;  // lo == hi is empty too
  const QueryValidation verdict = q.validate();
  EXPECT_EQ(verdict.error, QueryError::kEmptyMetricRange);
  EXPECT_NE(verdict.message.find("100.0"), std::string::npos);
  EXPECT_EQ(service().run(q).error, QueryError::kEmptyMetricRange);
}

TEST_F(QueryServiceTest, ZeroBinsRejectedWithReason) {
  auto q = default_query();
  q.bins = 0;
  const QueryValidation verdict = q.validate();
  EXPECT_EQ(verdict.error, QueryError::kZeroBins);
  EXPECT_FALSE(verdict.message.empty());
  EXPECT_EQ(service().run(q).error, QueryError::kZeroBins);
}

TEST_F(QueryServiceTest, FirstFailingCheckWins) {
  // A query broken several ways reports the highest-priority reason, in
  // QueryError declaration order.
  auto q = default_query();
  q.first = Date(2022, 6, 30);
  q.last = Date(2022, 1, 1);
  q.metric_lo = std::nan("");
  q.bins = 0;
  EXPECT_EQ(q.validate().error, QueryError::kReversedWindow);
}

// ---- Predictor lifecycle regressions: train_predictor() must be safe
// before any ingest, under the 30-rated-session minimum, and when called
// repeatedly — never leaving stale or partial state behind. ----

TEST(QueryServiceLifecycle, TrainBeforeAnyIngestFailsCleanly) {
  QueryService svc;
  EXPECT_FALSE(svc.train_predictor());
  EXPECT_FALSE(svc.predictor_trained());
  // The service still answers queries (with no predicted coverage).
  const auto insight = svc.run(Query{});
  EXPECT_EQ(insight.sessions, 0u);
  EXPECT_FALSE(insight.predicted_mean_mos.has_value());
}

TEST(QueryServiceLifecycle, TrainTwiceAndUnderMinimum) {
  confsim::DatasetConfig cfg;
  cfg.seed = 23;
  cfg.first_day = Date(2022, 1, 3);
  cfg.last_day = Date(2022, 2, 28);

  QueryService svc;
  cfg.num_calls = 40;  // ~1 rated session expected: far below the minimum
  svc.ingest_calls(confsim::CallDatasetGenerator{cfg}.generate());
  EXPECT_FALSE(svc.train_predictor());
  EXPECT_FALSE(svc.predictor_trained());
  const auto untrained = svc.run(Query{});
  EXPECT_GT(untrained.sessions, 0u);
  EXPECT_FALSE(untrained.predicted_mean_mos.has_value());

  cfg.seed = 24;
  cfg.num_calls = 3000;  // ~90 rated sessions: comfortably above it
  svc.ingest_calls(confsim::CallDatasetGenerator{cfg}.generate());
  EXPECT_TRUE(svc.train_predictor());
  EXPECT_TRUE(svc.predictor_trained());
  const auto first = svc.run(Query{});
  ASSERT_TRUE(first.predicted_mean_mos.has_value());

  // Retraining on the same data is idempotent.
  EXPECT_TRUE(svc.train_predictor());
  const auto second = svc.run(Query{});
  ASSERT_TRUE(second.predicted_mean_mos.has_value());
  EXPECT_DOUBLE_EQ(*first.predicted_mean_mos, *second.predicted_mean_mos);

  // New ingest marks the model stale until the next train.
  cfg.seed = 25;
  cfg.num_calls = 40;
  svc.ingest_calls(confsim::CallDatasetGenerator{cfg}.generate());
  EXPECT_FALSE(svc.predictor_trained());
  EXPECT_TRUE(svc.train_predictor());
}

}  // namespace
}  // namespace usaas::service
