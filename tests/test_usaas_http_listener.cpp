// HTTP front-end tests, in three tiers:
//
//   1. wire-form parsers as pure functions (both the query-string and
//      the flat-JSON spelling must land on the same WireRequest);
//   2. end-to-end over a real loopback socket: route dispatch, the
//      admission-outcome -> status-code mapping (200/400/404/429+Retry-
//      After/504), and /metrics served through the same boundary;
//   3. the socket-level chaos storm: a FaultInjector-driven client fleet
//      (slow-loris stalls, truncated requests, early disconnects) plus
//      server-side injected accept failures, after which the listener's
//      connection ledger and the scheduler's admission ledger must both
//      reconcile EXACTLY and every thread must exit within the shutdown
//      timeout. Registered under the `sanitize` label: this is the TSan/
//      ASan workload for the whole front end.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "confsim/call.h"
#include "core/date.h"
#include "core/fault_injector.h"
#include "usaas/http_listener.h"
#include "usaas/query_scheduler.h"
#include "usaas/query_service.h"

namespace usaas::service {
namespace {

using core::Date;

// ---- Corpus fixture ----------------------------------------------------

confsim::CallRecord sample_call(std::uint64_t id, const Date& day) {
  confsim::CallRecord call;
  call.call_id = id;
  call.start.date = day;
  call.start.time = {9, 0};
  confsim::ParticipantRecord rec;
  rec.user_id = id * 10;
  rec.platform = confsim::Platform::kWindowsPc;
  rec.meeting_size = 2;
  rec.access = netsim::AccessTechnology::kFiber;
  const auto agg = [](double v) { return netsim::MetricAggregate{v, v, v}; };
  rec.network.latency_ms = agg(40.0 + static_cast<double>(id % 50));
  rec.network.loss_pct = agg(0.5);
  rec.network.jitter_ms = agg(3.0);
  rec.network.bandwidth_mbps = agg(25.0);
  rec.network.duration_seconds = 1800.0;
  rec.network.sample_count = 360;
  rec.presence_pct = 90.0;
  rec.cam_on_pct = 50.0;
  rec.mic_on_pct = 30.0;
  call.participants.push_back(rec);
  return call;
}

struct Fixture {
  core::telemetry::Registry reg{true};
  QueryService svc;
  Fixture() : svc{make_config(&reg)} {
    std::vector<confsim::CallRecord> calls;
    std::uint64_t id = 0;
    for (int month = 1; month <= 3; ++month) {
      for (int day : {1, 10, 20, 28}) {
        calls.push_back(sample_call(id++, Date(2022, month, day)));
      }
    }
    svc.ingest_calls(calls);
  }
  static QueryServiceConfig make_config(core::telemetry::Registry* reg) {
    QueryServiceConfig cfg;
    cfg.sharding = ShardingPolicy::kMonthPlatform;
    cfg.threads = 1;
    cfg.telemetry = reg;
    return cfg;
  }
};

// ---- Wire-form parsers -------------------------------------------------

constexpr std::string_view kQueryString =
    "tenant=dash&first=2022-01-01&last=2022-03-31&metric=latency"
    "&lo=0&hi=300&bins=4&platform=ios&access=leo-satellite&budget_ms=250";

constexpr std::string_view kJsonBody =
    R"({"tenant":"dash","first":"2022-01-01","last":"2022-03-31",)"
    R"("metric":"latency","lo":0,"hi":300,"bins":4,)"
    R"("platform":"ios","access":"leo-satellite","budget_ms":250})";

void expect_dash_request(const WireRequest& wr) {
  EXPECT_EQ(wr.tenant, "dash");
  EXPECT_EQ(wr.query.first, Date(2022, 1, 1));
  EXPECT_EQ(wr.query.last, Date(2022, 3, 31));
  EXPECT_EQ(wr.query.metric, netsim::Metric::kLatency);
  EXPECT_DOUBLE_EQ(wr.query.metric_lo, 0.0);
  EXPECT_DOUBLE_EQ(wr.query.metric_hi, 300.0);
  EXPECT_EQ(wr.query.bins, 4u);
  EXPECT_DOUBLE_EQ(wr.budget_seconds, 0.25);
}

TEST(WireForm, BothSpellingsParseToTheSameRequest) {
  std::string error;
  const auto from_qs = parse_query_string(kQueryString, error);
  ASSERT_TRUE(from_qs.has_value()) << error;
  expect_dash_request(*from_qs);
  const auto from_json = parse_json_body(kJsonBody, error);
  ASSERT_TRUE(from_json.has_value()) << error;
  expect_dash_request(*from_json);
  EXPECT_EQ(from_qs->query.platform, from_json->query.platform);
  EXPECT_EQ(from_qs->query.access, from_json->query.access);
}

TEST(WireForm, DefaultsAreAnonymousWithNoBudget) {
  std::string error;
  const auto wr = parse_query_string("first=2022-01-01&last=2022-01-31",
                                     error);
  ASSERT_TRUE(wr.has_value()) << error;
  EXPECT_EQ(wr->tenant, "anonymous");
  EXPECT_DOUBLE_EQ(wr->budget_seconds, 0.0);  // "use the server default"
}

TEST(WireForm, MalformedInputsAreRejectedWithAReason) {
  std::string error;
  EXPECT_FALSE(parse_query_string("frist=2022-01-01", error));  // typo
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(parse_query_string("first=01/02/2022", error));
  EXPECT_NE(error.find("bad date"), std::string::npos);
  EXPECT_FALSE(parse_query_string("metric=losss", error));
  EXPECT_NE(error.find("unknown metric"), std::string::npos);
  EXPECT_FALSE(parse_query_string("first", error));  // no '='
  EXPECT_FALSE(parse_query_string("budget_ms=-5", error));
  EXPECT_FALSE(parse_query_string("lo=abc", error));
  EXPECT_FALSE(parse_json_body("[1,2]", error));
  EXPECT_FALSE(parse_json_body(R"({"tenant":"x")", error));  // unterminated
  EXPECT_FALSE(parse_json_body(R"({"tenant":"x"} trailing)", error));
  EXPECT_TRUE(parse_json_body("{}", error).has_value());  // empty = defaults
}

TEST(WireForm, QueryStringValuesArePercentDecoded) {
  std::string error;
  // A standard client URL-encodes: %20 and '+' both mean space, and the
  // date separator survives a gratuitous %2D encoding.
  const auto wr = parse_query_string(
      "tenant=team%20alpha&first=2022%2d01%2D01&last=2022-01-31", error);
  ASSERT_TRUE(wr.has_value()) << error;
  EXPECT_EQ(wr->tenant, "team alpha");
  EXPECT_EQ(wr->query.first, Date(2022, 1, 1));
  const auto plus = parse_query_string("tenant=a+b&first=2022-01-01"
                                       "&last=2022-01-31",
                                       error);
  ASSERT_TRUE(plus.has_value()) << error;
  EXPECT_EQ(plus->tenant, "a b");
  // Malformed escapes are a reasoned 400, not literal bytes.
  EXPECT_FALSE(parse_query_string("tenant=a%zz", error));
  EXPECT_NE(error.find("bad %-escape"), std::string::npos);
  EXPECT_FALSE(parse_query_string("tenant=a%2", error));
  EXPECT_NE(error.find("truncated %-escape"), std::string::npos);
}

TEST(FaultInjectorEnv, SocketSpecParsesFromTheEnvironment) {
  ::setenv("USAAS_FAULT_SOCKET",
           "accept_fail=0.5,slow_read=0.25,slow_read_ms=123,partial=0.1,"
           "disconnect=0.05",
           1);
  const auto cfg = core::FaultInjector::config_from_env();
  ::unsetenv("USAAS_FAULT_SOCKET");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cfg->accept_failure_p, 0.5);
  EXPECT_DOUBLE_EQ(cfg->slow_read_p, 0.25);
  EXPECT_EQ(cfg->slow_read_delay, std::chrono::milliseconds{123});
  EXPECT_DOUBLE_EQ(cfg->partial_request_p, 0.1);
  EXPECT_DOUBLE_EQ(cfg->disconnect_p, 0.05);
}

// ---- Loopback client helpers -------------------------------------------

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{2, 0};  // a stuck test should fail, not hang
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  return fd;
}

void send_best_effort(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // the chaos paths don't care
    sent += static_cast<std::size_t>(n);
  }
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// One whole request/response exchange; empty string on connect failure.
std::string http_exchange(std::uint16_t port, const std::string& raw) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  send_best_effort(fd, raw);
  std::string response = read_to_eof(fd);
  ::close(fd);
  return response;
}

std::string get_request(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

std::string post_request(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

int status_of(const std::string& response) {
  if (response.rfind("HTTP/1.1 ", 0) != 0 || response.size() < 12) return -1;
  return std::stoi(response.substr(9, 3));
}

// ---- End-to-end over loopback ------------------------------------------

struct Frontend {
  Fixture fx;
  QueryScheduler sched;
  HttpListener listener;
  explicit Frontend(SchedulerConfig scfg = {}, HttpListenerConfig lcfg = {})
      : sched{fx.svc, scfg}, listener{sched, fx.svc, lcfg} {}
};

TEST(HttpListener, ServesAdmittedQueriesOverBothSpellings) {
  Frontend fe;
  ASSERT_TRUE(fe.listener.start());
  const std::uint16_t port = fe.listener.port();
  ASSERT_NE(port, 0);

  const std::string via_get = http_exchange(
      port, get_request("/query?" + std::string{kQueryString}));
  EXPECT_EQ(status_of(via_get), 200) << via_get;
  EXPECT_NE(via_get.find("\"outcome\":\"admitted\""), std::string::npos);
  EXPECT_NE(via_get.find("\"tenant\":\"dash\""), std::string::npos);
  EXPECT_NE(via_get.find("\"served_by\":"), std::string::npos);

  const std::string via_post =
      http_exchange(port, post_request("/query", std::string{kJsonBody}));
  EXPECT_EQ(status_of(via_post), 200) << via_post;
  // The second run of the identical query is a cache hit: the honesty
  // stamps ride the wire.
  EXPECT_NE(via_post.find("\"outcome\":\"admitted\""), std::string::npos);
  EXPECT_NE(via_post.find("\"served_by\":\"cache\""), std::string::npos);

  EXPECT_TRUE(fe.listener.stop());
  const HttpListenerStats stats = fe.listener.stats();
  EXPECT_EQ(stats.status_200, 2u);
  EXPECT_TRUE(stats.reconciles());
}

TEST(HttpListener, MapsRoutesAndBadInputsToStatusCodes) {
  Frontend fe;
  ASSERT_TRUE(fe.listener.start());
  const std::uint16_t port = fe.listener.port();

  EXPECT_EQ(status_of(http_exchange(port, get_request("/nope"))), 404);
  const std::string bad =
      http_exchange(port, get_request("/query?metric=bogus"));
  EXPECT_EQ(status_of(bad), 400);
  EXPECT_NE(bad.find("unknown metric"), std::string::npos);
  // Parses fine but the query itself is invalid (reversed window): the
  // scheduler admits it, the service refuses it, the client gets a 400.
  const std::string reversed = http_exchange(
      port, get_request("/query?first=2022-03-01&last=2022-01-01"));
  EXPECT_EQ(status_of(reversed), 400);
  EXPECT_NE(reversed.find("invalid query"), std::string::npos);
  const std::string malformed = http_exchange(port, "garbage\r\n\r\n");
  EXPECT_EQ(status_of(malformed), 400);

  // The service stays measurable through its own boundary.
  const std::string metrics = http_exchange(port, get_request("/metrics"));
  EXPECT_EQ(status_of(metrics), 200);
  EXPECT_NE(metrics.find("usaas_admission_submitted_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("usaas_stream_backpressure_total"),
            std::string::npos);
  const std::string metrics_json =
      http_exchange(port, get_request("/metrics.json"));
  EXPECT_EQ(status_of(metrics_json), 200);

  EXPECT_TRUE(fe.listener.stop());
  EXPECT_TRUE(fe.listener.stats().reconciles());
}

TEST(HttpListener, AdoptsAndEchoesXRequestIdIntoTraces) {
  Frontend fe;
  ASSERT_TRUE(fe.listener.start());
  const std::uint16_t port = fe.listener.port();

  const auto echoed = [](const std::string& response) -> std::string {
    const std::size_t pos = response.find("X-Request-Id: ");
    if (pos == std::string::npos || pos + 30 > response.size()) return {};
    return response.substr(pos + 14, 16);
  };
  const auto with_id = [](const std::string& id) {
    return "GET /query?" + std::string{kQueryString} +
           " HTTP/1.1\r\nHost: t\r\nX-Request-Id: " + id + "\r\n\r\n";
  };

  // Hex IDs parse verbatim: the caller can grep its own ID.
  const std::string hex = http_exchange(port, with_id("deadbeef"));
  EXPECT_EQ(status_of(hex), 200) << hex;
  EXPECT_EQ(echoed(hex), "00000000deadbeef");

  // Non-hex IDs hash to a stable 64-bit ID — same header, same echo.
  const std::string a = http_exchange(port, with_id("client-run-7"));
  const std::string b = http_exchange(port, with_id("client-run-7"));
  EXPECT_EQ(echoed(a).size(), 16u);
  EXPECT_NE(echoed(a), "0000000000000000");
  EXPECT_EQ(echoed(a), echoed(b));

  // No header: the scheduler mints one and the echo still rides back.
  const std::string minted =
      http_exchange(port, get_request("/query?" + std::string{kQueryString}));
  EXPECT_EQ(echoed(minted).size(), 16u);
  EXPECT_NE(echoed(minted), "0000000000000000");

  // The adopted ID is queryable at /debug/traces over the same wire.
  const std::string traces =
      http_exchange(port, get_request("/debug/traces"));
  EXPECT_EQ(status_of(traces), 200);
  EXPECT_NE(traces.find("\"trace_id\": \"00000000deadbeef\""),
            std::string::npos)
      << traces;

  EXPECT_TRUE(fe.listener.stop());
  EXPECT_TRUE(fe.listener.stats().reconciles());
}

TEST(HttpListener, HugeOrNegativeContentLengthIsARejectedReadNotAWrap) {
  HttpListenerConfig lcfg;
  lcfg.read_timeout = std::chrono::milliseconds{250};
  Frontend fe{{}, lcfg};
  ASSERT_TRUE(fe.listener.start());
  const std::uint16_t port = fe.listener.port();

  // A Content-Length crafted so that header_end + 4 + body_len wraps to
  // a small value used to truncate the buffer and build a SIZE_MAX view.
  // Now any length beyond max_request_bytes is rejected before any
  // arithmetic: the server drops the connection without a response.
  const auto attack = [&](const std::string& content_length) {
    const std::string raw = "POST /query HTTP/1.1\r\nHost: t\r\n"
                            "Content-Length: " + content_length +
                            "\r\n\r\n{}";
    return http_exchange(port, raw);
  };
  EXPECT_TRUE(attack("18446744073709551578").empty());  // ~2^64 - 38: wraps
  EXPECT_TRUE(attack("18446744073709551615").empty());  // 2^64 - 1
  EXPECT_TRUE(attack("99999999999999999999999").empty());  // > 2^64: ERANGE
  EXPECT_TRUE(attack("-1").empty());                    // strtoull would wrap
  EXPECT_TRUE(attack("1000000").empty());               // > max_request_bytes
  // Sanity: an honest request still round-trips on the same server.
  EXPECT_EQ(status_of(http_exchange(
                port, post_request("/query", std::string{kJsonBody}))),
            200);

  EXPECT_TRUE(fe.listener.stop());
  const HttpListenerStats stats = fe.listener.stats();
  EXPECT_EQ(stats.read_failures, 5u);
  EXPECT_TRUE(stats.reconciles());
}

TEST(HttpListener, ClientControlledStringsAreJsonEscapedInResponses) {
  Frontend fe;
  ASSERT_TRUE(fe.listener.start());
  const std::uint16_t port = fe.listener.port();

  // A tenant with an embedded quote (sent percent-encoded) must come
  // back escaped, keeping the response body valid JSON.
  const std::string ok = http_exchange(
      port, get_request("/query?tenant=a%22b&first=2022-01-01"
                        "&last=2022-03-31&bins=4"));
  EXPECT_EQ(status_of(ok), 200) << ok;
  EXPECT_NE(ok.find("\"tenant\":\"a\\\"b\""), std::string::npos) << ok;

  // Parser error text echoes the request: the quote inside the unknown
  // key ("oo\"ps") must be escaped in the error body.
  const std::string bad =
      http_exchange(port, get_request("/query?oo%22ps=1"));
  EXPECT_EQ(status_of(bad), 400) << bad;
  EXPECT_NE(bad.find("unknown key: oo\\\"ps"), std::string::npos) << bad;

  EXPECT_TRUE(fe.listener.stop());
  EXPECT_TRUE(fe.listener.stats().reconciles());
}

TEST(HttpListener, ShedsWith429AndRetryAfterWhenSaturated) {
  SchedulerConfig scfg;
  scfg.default_qos = {0.5, 1.0};  // one token, trickling refill
  scfg.max_wait_seconds = 0.0;    // no patience: saturate immediately
  Frontend fe{scfg};
  ASSERT_TRUE(fe.listener.start());
  const std::uint16_t port = fe.listener.port();

  const std::string first = http_exchange(
      port, get_request("/query?first=2022-01-01&last=2022-03-31&bins=4"));
  EXPECT_EQ(status_of(first), 200) << first;
  // Different window, nothing cached, bucket empty: shed with a hint.
  const std::string second = http_exchange(
      port, get_request("/query?first=2022-01-01&last=2022-02-28&bins=4"));
  EXPECT_EQ(status_of(second), 429) << second;
  EXPECT_NE(second.find("Retry-After: "), std::string::npos);
  EXPECT_NE(second.find("\"outcome\":\"shed\""), std::string::npos);

  EXPECT_TRUE(fe.listener.stop());
  const HttpListenerStats stats = fe.listener.stats();
  EXPECT_EQ(stats.status_429, 1u);
  EXPECT_TRUE(stats.reconciles());
}

TEST(HttpListener, ExpiredBudgetsAnswer504) {
  Frontend fe;
  ASSERT_TRUE(fe.listener.start());
  const std::uint16_t port = fe.listener.port();
  // A tenth of a microsecond of patience: gone before (or just after)
  // admission either way — the wire answer is an explicit 504, never a
  // hang and never a torn payload.
  const std::string expired = http_exchange(
      port, get_request(
                "/query?first=2022-01-15&last=2022-03-20&budget_ms=0.0001"));
  EXPECT_EQ(status_of(expired), 504) << expired;
  EXPECT_NE(expired.find("\"outcome\":\"expired\""), std::string::npos);
  EXPECT_TRUE(fe.listener.stop());
  const HttpListenerStats stats = fe.listener.stats();
  EXPECT_EQ(stats.status_504, 1u);
  EXPECT_TRUE(stats.reconciles());
  EXPECT_EQ(fe.sched.stats().expired, 1u);
}

// ---- The chaos storm (TSan/ASan workload) ------------------------------

TEST(HttpListenerChaos, FaultStormReconcilesExactlyAndShutsDownCleanly) {
  SchedulerConfig scfg;
  scfg.default_qos = {50.0, 20.0};
  scfg.max_wait_seconds = 0.01;  // saturation sheds fast under the storm
  HttpListenerConfig lcfg;
  lcfg.worker_threads = 3;
  lcfg.max_pending_connections = 8;  // small: the 503 path gets traffic
  lcfg.read_timeout = std::chrono::milliseconds{250};
  lcfg.write_timeout = std::chrono::milliseconds{250};
  lcfg.default_budget_seconds = 0.2;

  core::FaultInjector::Config fcfg;
  fcfg.seed = 42;
  fcfg.accept_failure_p = 0.1;
  fcfg.slow_read_p = 0.1;
  fcfg.slow_read_delay = std::chrono::milliseconds{400};  // > read_timeout
  fcfg.partial_request_p = 0.1;
  fcfg.disconnect_p = 0.1;
  core::FaultInjector fault{fcfg};
  lcfg.fault = &fault;

  Frontend fe{scfg, lcfg};
  ASSERT_TRUE(fe.listener.start());
  const std::uint16_t port = fe.listener.port();

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::string tenant = "storm-" + std::to_string(c % 2);
        std::string raw;
        if (i % 7 == 0) {
          raw = get_request("/query?oops=1");  // a guaranteed 400
        } else if (i % 3 == 0) {
          raw = post_request(
              "/query", "{\"tenant\":\"" + tenant +
                            "\",\"first\":\"2022-01-15\",\"last\":"
                            "\"2022-03-20\",\"bins\":4,\"budget_ms\":50}");
        } else {
          raw = get_request("/query?tenant=" + tenant +
                            "&first=2022-01-01&last=2022-03-31&bins=4");
        }
        // Client-side socket faults, drawn from the shared injector.
        const auto stall = fault.slow_read_stall();
        const bool truncate = fault.truncate_this_request();
        const bool disconnect = fault.disconnect_before_response();
        const int fd = connect_loopback(port);
        if (fd < 0) continue;
        if (truncate) {
          // Half a request, then silence: the server's read deadline
          // must end this connection, not a worker's patience.
          send_best_effort(fd, std::string_view{raw}.substr(0, raw.size() / 2));
          ::close(fd);
          continue;
        }
        if (stall.count() > 0) {
          send_best_effort(fd,
                           std::string_view{raw}.substr(0, raw.size() / 2));
          std::this_thread::sleep_for(stall);
          send_best_effort(fd, std::string_view{raw}.substr(raw.size() / 2));
        } else {
          send_best_effort(fd, raw);
        }
        if (disconnect) {
          ::close(fd);  // vanish before reading the response
          continue;
        }
        const std::string response = read_to_eof(fd);
        ::close(fd);
        if (!response.empty()) {
          // Whatever came back is a complete, well-formed status line.
          const int status = status_of(response);
          EXPECT_TRUE(status == 200 || status == 400 || status == 429 ||
                      status == 503 || status == 504)
              << response.substr(0, 64);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // The no-wedged-worker gate: every thread exits within the timeout.
  EXPECT_TRUE(fe.listener.stop(std::chrono::seconds{5}));

  const HttpListenerStats ls = fe.listener.stats();
  EXPECT_TRUE(ls.reconciles())
      << "accepted=" << ls.accepted << " accept_failures="
      << ls.accept_failures << " saturated=" << ls.saturated
      << " drained=" << ls.drained
      << " handled=" << ls.handled << " read_failures=" << ls.read_failures
      << " responses=" << ls.responses_sent
      << " write_failures=" << ls.write_failures;
  EXPECT_EQ(ls.accept_failures, fault.accept_failures_injected());
  EXPECT_GT(ls.responses_sent, 0u);

  // The admission ledger survived the storm exactly.
  const SchedulerStats ss = fe.sched.stats();
  EXPECT_TRUE(ss.reconciles())
      << "submitted=" << ss.submitted << " admitted=" << ss.admitted
      << " degraded=" << ss.degraded << " shed=" << ss.shed
      << " expired=" << ss.expired;
  for (const auto& [tenant, snap] : ss.tenants) {
    EXPECT_EQ(snap.queue_depth, 0u) << tenant;
  }
}

}  // namespace
}  // namespace usaas::service
