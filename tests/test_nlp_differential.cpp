// The differential NLP harness: the fused fast path (perfect-hash
// lexicon, arena tokens, single-pass scoring) against the frozen
// reference pipeline (owned-string tokens, map/set probes) in
// nlp::reference. Every comparison is exact — EXPECT_EQ on doubles, not
// EXPECT_NEAR — because the fast path's contract is bit-identical
// output, not approximately-equal output.
//
// Runs under the sanitize label so the TSan/ASan gates re-execute it;
// the generator is seeded, so a failure reproduces deterministically.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nlp/keywords.h"
#include "nlp/lexicon.h"
#include "nlp/post_scorer.h"
#include "nlp/reference.h"
#include "nlp/sentiment.h"
#include "nlp/tokenizer.h"

namespace usaas::nlp {
namespace {

// ---- Seeded post generator -----------------------------------------
// Mixes vocabulary the scorer reacts to (valence words, negators,
// intensifier chains, outage uni-/bigrams) with junk: digits,
// apostrophe abuse, UTF-8 noise, shouting, punctuation runs.

const std::vector<std::string>& word_pool() {
  static const std::vector<std::string> pool = {
      // Valence / negation / intensity vocabulary.
      "good", "great", "terrible", "awful", "down", "outage", "broken",
      "works", "perfect", "useless", "not", "no", "never", "isn't",
      "don't", "can't", "stopped", "zero", "very", "really", "extremely",
      "slightly", "barely", "so", "constantly", "kinda",
      // Keyword dictionary heads/seconds.
      "service", "internet", "connection", "signal", "went", "dark",
      "working", "cut", "out", "dropped", "offline", "again", "searching",
      "dead", "downtime", "unreachable", "obstructed", "lost",
      // Neutral filler.
      "the", "router", "dish", "starlink", "my", "today", "after",
      "update", "speed", "test", "mbps", "latency",
      // Apostrophes, digits, mixed case, UTF-8 noise.
      "users'", "'quoted'", "o'brien", "isn''t", "99", "150mbps", "v2",
      "DOWN", "OUTAGE", "WhY", "caf\xc3\xa9", "na\xc3\xafve",
      "\xf0\x9f\x9b\xb0", "--", "!!!", "...",
  };
  return pool;
}

std::string random_post(core::Rng& rng) {
  const auto& pool = word_pool();
  const auto words = static_cast<std::size_t>(rng.uniform_int(0, 40));
  std::string text;
  for (std::size_t w = 0; w < words; ++w) {
    if (!text.empty()) {
      // Vary the separators: spaces, punctuation, newlines.
      switch (rng.uniform_int(0, 5)) {
        case 0: text += ", "; break;
        case 1: text += "! "; break;
        case 2: text += "\n"; break;
        case 3: text += " - "; break;
        default: text += ' '; break;
      }
    }
    text += pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  }
  return text;
}

std::vector<std::string> edge_case_texts() {
  return {
      "",
      " ",
      "\t\n  \r",
      "!!!",
      "'''",
      "''",
      "a",
      "'a'",
      "users'",
      "the users' routers went down",
      "isn't working, don't buy",
      "not very good",
      "not not good",
      "really very extremely slow",
      "never ever EVER again",
      "no service no internet no connection",
      "went down went dark stopped working",
      "offline again offline again offline again",
      "GREAT SERVICE TOTALLY LOVE IT",
      "99 150 0 12345678901234567890",
      "caf\xc3\xa9 na\xc3\xafve \xf0\x9f\x9b\xb0\xf0\x9f\x93\xa1",
      "\xff\xfe\x80 outage \x01\x02",
      std::string(3000, 'x'),
      std::string(100, '!'),
      "down down down down down down down down down down",
  };
}

void expect_token_streams_identical(std::string_view text,
                                    TokenScratch& scratch) {
  const auto ref = reference::tokenize(text);
  const auto fast = tokenize_into(text, scratch);
  ASSERT_EQ(ref.size(), fast.size()) << "text: " << text;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].text, fast[i].text) << "token " << i;
    EXPECT_EQ(ref[i].position, fast[i].position) << "token " << i;
  }
}

void expect_scores_identical(std::string_view text, const PostScorer& scorer,
                             TokenScratch& scratch) {
  const Lexicon& lex = Lexicon::builtin();
  const auto& dict = KeywordDictionary::outage_dictionary();
  const SentimentConfig config;

  const SentimentScores ref = reference::score_sentiment(lex, config, text);
  const std::size_t ref_hits = reference::count_keywords(dict, text);

  // Path 1: fused single pass.
  const PostScorer::Result fused = scorer.score(text, scratch);
  EXPECT_EQ(fused.sentiment.positive, ref.positive) << "text: " << text;
  EXPECT_EQ(fused.sentiment.negative, ref.negative) << "text: " << text;
  EXPECT_EQ(fused.sentiment.neutral, ref.neutral) << "text: " << text;
  EXPECT_EQ(fused.keyword_hits, ref_hits) << "text: " << text;

  // Path 2: arena tokens + analyzer fast probe + set-based counting.
  const SentimentAnalyzer analyzer{lex, config};
  const auto tokens = tokenize_into(text, scratch);
  const SentimentScores two_phase = analyzer.score(tokens, text);
  EXPECT_EQ(two_phase.positive, ref.positive);
  EXPECT_EQ(two_phase.negative, ref.negative);
  EXPECT_EQ(two_phase.neutral, ref.neutral);
  EXPECT_EQ(dict.count_occurrences(tokens, scratch.bigram), ref_hits);
}

TEST(NlpDifferential, FastPathsAreLive) {
  EXPECT_TRUE(Lexicon::builtin().has_fast_path());
  EXPECT_TRUE(KeywordDictionary::outage_dictionary().has_fast_path());
  EXPECT_TRUE(PostScorer{}.fused());
}

TEST(NlpDifferential, EdgeCaseTokenStreams) {
  TokenScratch scratch;
  for (const auto& text : edge_case_texts()) {
    expect_token_streams_identical(text, scratch);
  }
}

TEST(NlpDifferential, EdgeCaseScores) {
  const PostScorer scorer;
  ASSERT_TRUE(scorer.fused());
  TokenScratch scratch;
  for (const auto& text : edge_case_texts()) {
    expect_scores_identical(text, scorer, scratch);
  }
}

TEST(NlpDifferential, TenThousandRandomPosts) {
  core::Rng rng{0xD1FFE7EA1ULL};
  const PostScorer scorer;
  ASSERT_TRUE(scorer.fused());
  TokenScratch scratch;
  for (int i = 0; i < 10000; ++i) {
    const std::string text = random_post(rng);
    expect_token_streams_identical(text, scratch);
    expect_scores_identical(text, scorer, scratch);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at post " << i << ": " << text;
    }
  }
}

TEST(NlpDifferential, FallbackScorerMatchesReferenceToo) {
  // A lexicon whose perfect hash is forced to fail: the scorer must run
  // the two-phase map path and still agree with the reference exactly.
  Lexicon broken{PerfectHashOptions{.max_displacement = 0}};
  broken.add_word("good", 0.5);
  broken.add_word("bad", -0.5);
  broken.add_negator("not");
  broken.add_intensifier("very", 1.3);
  ASSERT_FALSE(broken.has_fast_path());

  const PostScorer scorer{broken, KeywordDictionary::outage_dictionary()};
  ASSERT_FALSE(scorer.fused());
  const SentimentConfig config;
  TokenScratch scratch;
  core::Rng rng{77};
  for (int i = 0; i < 200; ++i) {
    const std::string text = random_post(rng);
    const auto ref = reference::score_sentiment(broken, config, text);
    const auto got = scorer.score(text, scratch);
    ASSERT_EQ(got.sentiment.positive, ref.positive) << text;
    ASSERT_EQ(got.sentiment.negative, ref.negative) << text;
    ASSERT_EQ(got.sentiment.neutral, ref.neutral) << text;
  }
}

}  // namespace
}  // namespace usaas::nlp
