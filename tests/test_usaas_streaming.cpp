// Streaming-ingest property tests: StreamIngestor must be a transparent
// front-end — a stream of pushes, flushed at any watermark, yields query
// results bit-identical to one-shot batch ingest of the same records, for
// every ShardingPolicy and thread count. Backpressure policies, poison
// quarantine, and reader/writer concurrency (queries racing a live
// producer) are exercised on top.
//
// Registered under the `sanitize` ctest label with USAAS_PARALLEL_FORCE=1:
// under -DUSAAS_SANITIZE=thread the QueryDuringLiveIngest tests are the
// TSan workload for the corpus RW lock (producer flushes take it
// exclusively while query threads fan out under shared holds).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "confsim/call.h"
#include "core/fault_injector.h"
#include "core/rng.h"
#include "social/post.h"
#include "usaas/query_service.h"
#include "usaas/stream_ingestor.h"

namespace usaas::service {
namespace {

using core::Date;

// ---- Corpus + battery helpers (mirror test_usaas_ingest_equivalence) ----

std::vector<confsim::CallRecord> boundary_calls(std::uint64_t seed,
                                                std::size_t calls_per_day) {
  const Date days[] = {
      {2021, 12, 31}, {2022, 1, 1},  {2022, 1, 31}, {2022, 2, 1},
      {2022, 2, 28},  {2022, 3, 1},  {2022, 6, 30}, {2022, 7, 1},
      {2022, 12, 31}, {2023, 1, 1},
  };
  constexpr confsim::Platform kPlatforms[] = {
      confsim::Platform::kWindowsPc, confsim::Platform::kMacPc,
      confsim::Platform::kIos, confsim::Platform::kAndroid};
  constexpr netsim::AccessTechnology kAccess[] = {
      netsim::AccessTechnology::kFiber, netsim::AccessTechnology::kCable,
      netsim::AccessTechnology::kLeoSatellite};
  core::Rng rng{seed};
  std::vector<confsim::CallRecord> calls;
  std::uint64_t call_id = 0;
  for (const Date& day : days) {
    for (std::size_t c = 0; c < calls_per_day; ++c) {
      confsim::CallRecord call;
      call.call_id = call_id++;
      call.start.date = day;
      call.start.time = {10, 30};
      const int participants = 3 + static_cast<int>(rng.uniform_int(0, 2));
      for (int p = 0; p < participants; ++p) {
        confsim::ParticipantRecord rec;
        rec.user_id = call.call_id * 8 + static_cast<std::uint64_t>(p);
        rec.platform = kPlatforms[rng.uniform_int(0, 3)];
        rec.meeting_size = participants;
        rec.access = kAccess[rng.uniform_int(0, 2)];
        const double latency = 20.0 + rng.uniform(0.0, 250.0);
        const auto agg = [](double v) {
          return netsim::MetricAggregate{v, v * 0.95, v * 1.7};
        };
        rec.network.latency_ms = agg(latency);
        rec.network.loss_pct = agg(rng.uniform(0.0, 3.0));
        rec.network.jitter_ms = agg(rng.uniform(0.0, 15.0));
        rec.network.bandwidth_mbps = agg(1.0 + rng.uniform(0.0, 50.0));
        rec.network.duration_seconds = 1800.0;
        rec.network.sample_count = 360;
        rec.presence_pct = std::max(0.0, 95.0 - latency / 8.0);
        rec.cam_on_pct = std::max(0.0, 60.0 - latency / 6.0);
        rec.mic_on_pct = std::max(0.0, 35.0 - latency / 10.0);
        rec.dropped_early = rng.bernoulli(0.05);
        if (rng.bernoulli(0.15)) {
          rec.mos = core::clamp_mos(core::Mos{4.5 - latency / 120.0});
        }
        call.participants.push_back(rec);
      }
      calls.push_back(std::move(call));
    }
  }
  return calls;
}

std::vector<social::Post> boundary_posts(std::uint64_t seed,
                                         std::size_t posts_per_day) {
  static const char* kBodies[] = {
      "service went down tonight, complete outage, everything offline",
      "the connection has been great lately, fast and reliable",
      "pretty average week, speeds are okay, nothing special",
      "lost connection during calls, not working, is the network down",
  };
  const Date days[] = {
      {2021, 12, 31}, {2022, 1, 1},  {2022, 2, 28}, {2022, 3, 1},
      {2022, 8, 15},  {2022, 12, 31}, {2023, 1, 1},
  };
  core::Rng rng{seed};
  std::vector<social::Post> posts;
  std::uint64_t id = 0;
  for (const Date& day : days) {
    for (std::size_t i = 0; i < posts_per_day; ++i) {
      social::Post post;
      post.id = id++;
      post.date = day;
      post.author_id = rng.uniform_int(1, 500);
      post.title = "experience report";
      post.body = kBodies[rng.uniform_int(0, 3)];
      post.upvotes = static_cast<int>(rng.uniform_int(0, 50));
      post.num_comments = static_cast<int>(rng.uniform_int(0, 10));
      posts.push_back(std::move(post));
    }
  }
  return posts;
}

std::vector<Query> battery() {
  std::vector<Query> queries;
  Query base;
  base.first = Date(2021, 12, 1);
  base.last = Date(2023, 1, 31);
  base.metric = netsim::Metric::kLatency;
  base.metric_lo = 0.0;
  base.metric_hi = 300.0;
  base.bins = 6;
  queries.push_back(base);

  Query year_straddle = base;
  year_straddle.first = Date(2021, 12, 15);
  year_straddle.last = Date(2022, 1, 15);
  queries.push_back(year_straddle);

  Query platform = year_straddle;
  platform.platform = confsim::Platform::kAndroid;
  queries.push_back(platform);

  Query access = base;
  access.access = netsim::AccessTechnology::kLeoSatellite;
  queries.push_back(access);

  return queries;
}

void expect_identical(const Insight& a, const Insight& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.rated_sessions, b.rated_sessions);
  EXPECT_EQ(a.posts, b.posts);
  EXPECT_EQ(a.outage_mention_days, b.outage_mention_days);
  EXPECT_EQ(a.outage_alert_days, b.outage_alert_days);
  EXPECT_DOUBLE_EQ(a.strong_positive_share, b.strong_positive_share);
  ASSERT_EQ(a.engagement.size(), b.engagement.size());
  for (std::size_t c = 0; c < a.engagement.size(); ++c) {
    ASSERT_EQ(a.engagement[c].points.size(), b.engagement[c].points.size());
    for (std::size_t p = 0; p < a.engagement[c].points.size(); ++p) {
      EXPECT_EQ(a.engagement[c].points[p].sessions,
                b.engagement[c].points[p].sessions);
      EXPECT_DOUBLE_EQ(a.engagement[c].points[p].engagement,
                       b.engagement[c].points[p].engagement);
    }
  }
  ASSERT_EQ(a.mos_spearman.size(), b.mos_spearman.size());
  for (std::size_t i = 0; i < a.mos_spearman.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.mos_spearman[i].second, b.mos_spearman[i].second);
  }
  ASSERT_EQ(a.observed_mean_mos.has_value(), b.observed_mean_mos.has_value());
  if (a.observed_mean_mos) {
    EXPECT_DOUBLE_EQ(*a.observed_mean_mos, *b.observed_mean_mos);
  }
  ASSERT_EQ(a.predicted_mean_mos.has_value(),
            b.predicted_mean_mos.has_value());
  if (a.predicted_mean_mos) {
    EXPECT_DOUBLE_EQ(*a.predicted_mean_mos, *b.predicted_mean_mos);
  }
}

struct Corpus {
  std::vector<confsim::CallRecord> calls;
  std::vector<social::Post> posts;
};

Corpus make_corpus(std::uint64_t seed) {
  return {boundary_calls(seed, 10), boundary_posts(seed ^ 0x5eed, 5)};
}

QueryService batch_service(const Corpus& corpus, QueryServiceConfig config) {
  QueryService svc{config};
  svc.ingest_calls(corpus.calls);
  svc.ingest_posts(corpus.posts);
  svc.train_predictor();
  return svc;
}

// ---- Poison records for the quarantine tests -------------------------

confsim::CallRecord good_call(std::uint64_t id) {
  confsim::CallRecord call = boundary_calls(id + 1, 1).front();
  call.call_id = id;
  return call;
}

social::Post good_post(std::uint64_t id) {
  social::Post post = boundary_posts(id + 1, 1).front();
  post.id = id;
  return post;
}

confsim::CallRecord poison_call(QuarantineReason reason, std::uint64_t id) {
  confsim::CallRecord call = good_call(id);
  switch (reason) {
    case QuarantineReason::kDateOutOfRange:
      call.start.date = Date{};  // unset field: 1970-01-01
      break;
    case QuarantineReason::kNanMetric:
      call.participants.front().network.jitter_ms.p95 = std::nan("");
      break;
    case QuarantineReason::kNegativeMetric:
      call.participants.front().network.loss_pct.median = -0.5;
      break;
    case QuarantineReason::kEngagementOutOfRange:
      call.participants.front().cam_on_pct = 170.0;
      break;
    case QuarantineReason::kMosOutOfRange:
      call.participants.front().mos = core::Mos{9.5};
      break;
    case QuarantineReason::kEmptyPostText:
      break;  // not a call-side reason
  }
  return call;
}

// ---- The tentpole property: streaming == batch, bit-identical --------

TEST(Streaming, MatchesBatchAtAnyWatermarkPolicyAndThreadCount) {
  const Corpus corpus = make_corpus(1234);
  for (const ShardingPolicy policy :
       {ShardingPolicy::kSingleShard, ShardingPolicy::kMonthPlatform}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      const QueryService batched = batch_service(corpus, {policy, threads});
      for (const std::size_t watermark :
           {std::size_t{1}, std::size_t{7}, std::size_t{64},
            corpus.calls.size() + corpus.posts.size()}) {
        SCOPED_TRACE(testing::Message()
                     << "policy "
                     << (policy == ShardingPolicy::kSingleShard ? "single"
                                                                : "month")
                     << ", threads " << threads << ", watermark "
                     << watermark);
        QueryService streamed{{policy, threads}};
        StreamIngestorConfig cfg;
        cfg.call_capacity = cfg.post_capacity =
            corpus.calls.size() + corpus.posts.size();
        cfg.call_flush_watermark = cfg.post_flush_watermark = watermark;
        StreamIngestor ingestor{streamed, cfg};
        for (const auto& call : corpus.calls) {
          ASSERT_EQ(ingestor.push(call), PushOutcome::kAccepted);
        }
        for (const auto& post : corpus.posts) {
          ASSERT_EQ(ingestor.push(post), PushOutcome::kAccepted);
        }
        ASSERT_TRUE(ingestor.flush());
        streamed.train_predictor();
        ASSERT_EQ(streamed.ingested_sessions(), batched.ingested_sessions());
        ASSERT_EQ(streamed.ingested_posts(), batched.ingested_posts());
        ASSERT_EQ(streamed.session_shards(), batched.session_shards());
        ASSERT_EQ(streamed.post_shards(), batched.post_shards());
        const StreamIngestor::Stats stats = ingestor.stats();
        EXPECT_EQ(stats.health.accepted,
                  corpus.calls.size() + corpus.posts.size());
        EXPECT_EQ(stats.health.flushed, stats.health.accepted);
        EXPECT_EQ(stats.health.staged, 0u);
        EXPECT_EQ(stats.health.quarantined, 0u);
        for (const Query& q : battery()) {
          expect_identical(streamed.run(q), batched.run(q));
        }
      }
    }
  }
}

TEST(Streaming, ChunkPushMatchesRecordPush) {
  const Corpus corpus = make_corpus(77);
  const QueryService batched =
      batch_service(corpus, {ShardingPolicy::kMonthPlatform, 2});
  QueryService streamed{{ShardingPolicy::kMonthPlatform, 2}};
  StreamIngestorConfig cfg;
  cfg.call_flush_watermark = 16;
  cfg.post_flush_watermark = 16;
  StreamIngestor ingestor{streamed, cfg};
  // Uneven chunks, including a chunk of one.
  const std::span<const confsim::CallRecord> calls{corpus.calls};
  const std::size_t cut = calls.size() / 3;
  EXPECT_EQ(ingestor.push_calls(calls.subspan(0, cut)), cut);
  EXPECT_EQ(ingestor.push_calls(calls.subspan(cut, 1)), 1u);
  EXPECT_EQ(ingestor.push_calls(calls.subspan(cut + 1)),
            calls.size() - cut - 1);
  EXPECT_EQ(ingestor.push_posts(corpus.posts), corpus.posts.size());
  ASSERT_TRUE(ingestor.flush());
  streamed.train_predictor();
  for (const Query& q : battery()) {
    expect_identical(streamed.run(q), batched.run(q));
  }
}

TEST(Streaming, PushManyMatchesRecordPushBitIdentically) {
  // push_many amortizes the lock but must keep per-record semantics:
  // watermark slicing is a pure function of the push sequence, so pushing
  // in chunks that straddle flush boundaries — with poison interleaved —
  // yields the same flushes, the same quarantine, and bit-identical
  // query results as a push() loop.
  const Corpus corpus = make_corpus(4096);
  StreamIngestorConfig cfg;
  cfg.call_flush_watermark = 16;
  cfg.post_flush_watermark = 16;

  QueryService looped{{ShardingPolicy::kMonthPlatform, 2}};
  StreamIngestor one_by_one{looped, cfg};
  QueryService chunked{{ShardingPolicy::kMonthPlatform, 2}};
  StreamIngestor many{chunked, cfg};

  // Interleave a poison call every 11 records so quarantine bookkeeping
  // is exercised inside chunks too.
  std::vector<confsim::CallRecord> feed;
  for (std::size_t i = 0; i < corpus.calls.size(); ++i) {
    if (i % 11 == 0) {
      feed.push_back(poison_call(QuarantineReason::kNanMetric, 7000 + i));
    }
    feed.push_back(corpus.calls[i]);
  }

  std::size_t accepted_loop = 0;
  for (const auto& call : feed) {
    if (one_by_one.push(call) == PushOutcome::kAccepted) ++accepted_loop;
  }
  for (const auto& post : corpus.posts) {
    ASSERT_EQ(one_by_one.push(post), PushOutcome::kAccepted);
  }

  // Chunk size 37 is coprime with the watermark (16): chunks straddle
  // flush boundaries mid-span.
  const std::span<const confsim::CallRecord> span{feed};
  std::size_t accepted_many = 0;
  for (std::size_t i = 0; i < span.size(); i += 37) {
    accepted_many +=
        many.push_many(span.subspan(i, std::min<std::size_t>(37, span.size() - i)));
  }
  accepted_many += many.push_many(std::span<const social::Post>{corpus.posts});
  EXPECT_EQ(accepted_many, accepted_loop + corpus.posts.size());

  ASSERT_TRUE(one_by_one.flush());
  ASSERT_TRUE(many.flush());
  looped.train_predictor();
  chunked.train_predictor();

  const StreamIngestor::Stats ls = one_by_one.stats();
  const StreamIngestor::Stats ms = many.stats();
  EXPECT_EQ(ms.health.accepted, ls.health.accepted);
  EXPECT_EQ(ms.health.flushed, ls.health.flushed);
  EXPECT_EQ(ms.health.quarantined, ls.health.quarantined);
  EXPECT_GT(ms.health.quarantined, 0u);
  EXPECT_EQ(ms.health.staged, 0u);
  EXPECT_EQ(chunked.ingested_sessions(), looped.ingested_sessions());
  EXPECT_EQ(chunked.ingested_posts(), looped.ingested_posts());
  EXPECT_EQ(chunked.session_shards(), looped.session_shards());
  for (const Query& q : battery()) {
    expect_identical(chunked.run(q), looped.run(q));
  }
}

TEST(Streaming, PushManyStopsAtTheFirstRejection) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  core::FaultInjector::Config fcfg;
  fcfg.fail_first_flushes = 1u << 20;  // every flush fails
  core::FaultInjector faults{fcfg};
  StreamIngestorConfig cfg;
  cfg.call_capacity = 8;
  cfg.call_flush_watermark = 8;
  cfg.backpressure = BackpressurePolicy::kReject;
  cfg.max_flush_attempts = 2;
  cfg.retry_backoff = std::chrono::milliseconds{0};
  StreamIngestor ingestor{svc, cfg, &faults};
  const auto calls = boundary_calls(6, 2);
  ASSERT_GE(calls.size(), 12u);
  // Capacity 8, every flush fails: exactly 8 of the span fit.
  EXPECT_EQ(ingestor.push_many(std::span{calls}.first(12)), 8u);
  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(stats.health.accepted, 8u);
  EXPECT_EQ(stats.health.rejected, 1u);  // the 9th; 10..12 never attempted
  EXPECT_EQ(stats.health.staged, 8u);
}

// ---- Backpressure policies -------------------------------------------

core::FaultInjector always_failing_flushes() {
  core::FaultInjector::Config cfg;
  cfg.fail_first_flushes = 1u << 20;  // effectively: every flush fails
  return core::FaultInjector{cfg};
}

TEST(Streaming, RejectPolicyRefusesWhenFullAndStuck) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  core::FaultInjector faults = always_failing_flushes();
  StreamIngestorConfig cfg;
  cfg.call_capacity = 8;
  cfg.call_flush_watermark = 8;
  cfg.backpressure = BackpressurePolicy::kReject;
  cfg.max_flush_attempts = 2;
  cfg.retry_backoff = std::chrono::milliseconds{0};
  StreamIngestor ingestor{svc, cfg, &faults};
  const auto calls = boundary_calls(3, 2);
  ASSERT_GE(calls.size(), 12u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ingestor.push(calls[i]), PushOutcome::kAccepted);
  }
  // Buffer is full and every flush fails: further pushes are refused.
  EXPECT_EQ(ingestor.push(calls[8]), PushOutcome::kRejected);
  EXPECT_EQ(ingestor.push(calls[9]), PushOutcome::kRejected);
  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(stats.health.accepted, 8u);
  EXPECT_EQ(stats.health.rejected, 2u);
  EXPECT_EQ(stats.health.staged, 8u);
  EXPECT_EQ(stats.health.flushed, 0u);
  EXPECT_TRUE(stats.health.degraded);
  EXPECT_EQ(svc.ingested_sessions(), 0u);
  // push_calls stops at the first rejection.
  EXPECT_EQ(ingestor.push_calls(std::span{calls}.subspan(10)), 0u);
}

TEST(Streaming, DropOldestPolicyKeepsTheFreshestRecords) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  core::FaultInjector faults = always_failing_flushes();
  StreamIngestorConfig cfg;
  cfg.call_capacity = 4;
  cfg.call_flush_watermark = 4;
  cfg.backpressure = BackpressurePolicy::kDropOldest;
  cfg.max_flush_attempts = 2;
  cfg.retry_backoff = std::chrono::milliseconds{0};
  StreamIngestor ingestor{svc, cfg, &faults};
  const auto calls = boundary_calls(5, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ingestor.push(calls[i]), PushOutcome::kAccepted);
  }
  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(stats.health.accepted, 10u);
  EXPECT_EQ(stats.health.dropped, 6u);  // capacity 4, 10 accepted
  EXPECT_EQ(stats.health.staged, 4u);
  EXPECT_EQ(stats.health.rejected, 0u);
  EXPECT_TRUE(stats.health.degraded);
}

TEST(Streaming, BlockPolicyRetriesUntilTheFlushRecovers) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  // Fails the first 3 flush attempts, then heals: a full-buffer push under
  // kBlock must retry the flush inline and eventually accept.
  core::FaultInjector::Config fcfg;
  fcfg.fail_first_flushes = 3;
  core::FaultInjector faults{fcfg};
  StreamIngestorConfig cfg;
  cfg.call_capacity = 4;
  cfg.call_flush_watermark = 4;
  cfg.backpressure = BackpressurePolicy::kBlock;
  cfg.max_flush_attempts = 2;  // per round; 2 rounds cover the 3 failures
  cfg.max_block_rounds = 3;
  cfg.retry_backoff = std::chrono::milliseconds{1};
  StreamIngestor ingestor{svc, cfg, &faults};
  const auto calls = boundary_calls(7, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ingestor.push(calls[i]), PushOutcome::kAccepted);
  }
  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(stats.health.accepted, 5u);
  EXPECT_EQ(stats.health.flush_failures, 3u);
  EXPECT_GE(stats.health.flush_retries, 1u);
  EXPECT_GE(stats.blocked_pushes, 1u);
  EXPECT_GE(stats.backoff_waits, 1u);
  EXPECT_EQ(stats.health.dropped, 0u);
  EXPECT_EQ(stats.health.rejected, 0u);
  // The healed flush delivered the first 4; the 5th is staged.
  EXPECT_EQ(stats.health.flushed, 4u);
  EXPECT_EQ(stats.health.staged, 1u);
  EXPECT_FALSE(stats.health.degraded);
  ASSERT_TRUE(ingestor.flush());
  EXPECT_EQ(svc.ingested_sessions(), [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < 5; ++i) n += calls[i].participants.size();
    return n;
  }());
}

// ---- Quarantine -------------------------------------------------------

TEST(Streaming, QuarantineCountsPerReasonAndShieldsShards) {
  const Corpus good = make_corpus(11);
  for (const ShardingPolicy policy :
       {ShardingPolicy::kSingleShard, ShardingPolicy::kMonthPlatform}) {
    SCOPED_TRACE(testing::Message() << "policy " << static_cast<int>(policy));
    const QueryService clean = batch_service(good, {policy, 2});
    QueryService dirty{{policy, 2}};
    StreamIngestor ingestor{dirty};
    // Interleave poison with the good corpus: 2 of each call-side reason
    // plus 3 empty-text posts and 2 bad-date posts.
    constexpr QuarantineReason kCallReasons[] = {
        QuarantineReason::kDateOutOfRange, QuarantineReason::kNanMetric,
        QuarantineReason::kNegativeMetric,
        QuarantineReason::kEngagementOutOfRange,
        QuarantineReason::kMosOutOfRange};
    std::uint64_t poison_id = 900000;
    for (std::size_t i = 0; i < good.calls.size(); ++i) {
      if (i % 7 == 0) {
        const QuarantineReason reason = kCallReasons[(i / 7) % 5];
        EXPECT_EQ(ingestor.push(poison_call(reason, poison_id++)),
                  PushOutcome::kQuarantined);
      }
      ASSERT_EQ(ingestor.push(good.calls[i]), PushOutcome::kAccepted);
    }
    const std::size_t call_poison = (good.calls.size() + 6) / 7;
    for (std::size_t i = 0; i < 3; ++i) {
      social::Post empty = good_post(poison_id++);
      empty.title = "  ";
      empty.body = "\t\n";
      EXPECT_EQ(ingestor.push(empty), PushOutcome::kQuarantined);
    }
    for (std::size_t i = 0; i < 2; ++i) {
      social::Post undated = good_post(poison_id++);
      undated.date = Date{};
      EXPECT_EQ(ingestor.push(undated), PushOutcome::kQuarantined);
    }
    EXPECT_EQ(ingestor.push_posts(good.posts), good.posts.size());
    ASSERT_TRUE(ingestor.flush());
    dirty.train_predictor();

    const StreamIngestor::Stats stats = ingestor.stats();
    EXPECT_EQ(stats.health.quarantined, call_poison + 5);
    const auto count = [&](QuarantineReason r) {
      return stats.quarantined_by_reason[static_cast<std::size_t>(r)];
    };
    // 2 of the 5 call reasons appear twice with 10 poison calls, plus the
    // 2 undated posts on kDateOutOfRange; derive exactly instead.
    std::array<std::uint64_t, kNumQuarantineReasons> expected{};
    for (std::size_t i = 0; i < call_poison; ++i) {
      ++expected[static_cast<std::size_t>(kCallReasons[i % 5])];
    }
    expected[static_cast<std::size_t>(QuarantineReason::kDateOutOfRange)] +=
        2;
    expected[static_cast<std::size_t>(QuarantineReason::kEmptyPostText)] += 3;
    for (std::size_t r = 0; r < kNumQuarantineReasons; ++r) {
      EXPECT_EQ(count(static_cast<QuarantineReason>(r)), expected[r])
          << to_string(static_cast<QuarantineReason>(r));
    }

    // The dead-letter buffer names the poison, and the shard stores never
    // saw it: results are bit-identical to the clean corpus.
    EXPECT_EQ(ingestor.quarantine().size(),
              std::min<std::size_t>(call_poison + 5,
                                    ingestor.config().quarantine_capacity));
    EXPECT_EQ(dirty.ingested_sessions(), clean.ingested_sessions());
    EXPECT_EQ(dirty.ingested_posts(), clean.ingested_posts());
    EXPECT_EQ(dirty.session_shards(), clean.session_shards());
    for (const Query& q : battery()) {
      expect_identical(dirty.run(q), clean.run(q));
    }
  }
}

TEST(Streaming, QuarantineBufferIsCappedButCountersStayExact) {
  QueryService svc;
  StreamIngestorConfig cfg;
  cfg.quarantine_capacity = 4;
  StreamIngestor ingestor{svc, cfg};
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(
        ingestor.push(poison_call(QuarantineReason::kNanMetric, 100 + i)),
        PushOutcome::kQuarantined);
  }
  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(stats.health.quarantined, 10u);
  EXPECT_EQ(stats.quarantined_by_reason[static_cast<std::size_t>(
                QuarantineReason::kNanMetric)],
            10u);
  EXPECT_EQ(stats.quarantine_evicted, 6u);
  const auto dead = ingestor.quarantine();
  ASSERT_EQ(dead.size(), 4u);
  // Oldest evicted: the survivors are the last four pushed.
  EXPECT_EQ(dead.front().id, 106u);
  EXPECT_EQ(dead.back().id, 109u);
  EXPECT_EQ(dead.front().reason, QuarantineReason::kNanMetric);
}

TEST(Streaming, ValidatorReasonPriorityIsStable) {
  // A record broken several ways lands on the first reason in enum order.
  confsim::CallRecord multi = poison_call(QuarantineReason::kNanMetric, 1);
  multi.participants.front().network.loss_pct.mean = -2.0;
  multi.participants.front().presence_pct = 300.0;
  EXPECT_EQ(validate_record(multi), QuarantineReason::kNanMetric);
  multi.start.date = Date{};
  EXPECT_EQ(validate_record(multi), QuarantineReason::kDateOutOfRange);
  EXPECT_EQ(validate_record(good_call(1)), std::nullopt);
  EXPECT_EQ(validate_record(good_post(1)), std::nullopt);
}

// ---- Health publication + staleness ----------------------------------

TEST(Streaming, HealthIsPublishedIntoServiceStats) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  StreamIngestorConfig cfg;
  cfg.call_flush_watermark = 64;  // large: pushes stay staged
  StreamIngestor ingestor{svc, cfg};
  const auto calls = boundary_calls(2, 1);
  for (std::size_t i = 0; i < 5; ++i) ingestor.push(calls[i]);
  QueryService::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.stream.accepted, 5u);
  EXPECT_EQ(stats.stream.staged, 5u);
  EXPECT_EQ(stats.staleness_records(), 5u);
  EXPECT_EQ(stats.stream.flushed, 0u);
  EXPECT_EQ(svc.ingested_sessions(), 0u);  // nothing queryable yet
  ASSERT_TRUE(ingestor.flush());
  stats = svc.stats();
  EXPECT_EQ(stats.stream.flushed, 5u);
  EXPECT_EQ(stats.staleness_records(), 0u);
  EXPECT_GT(svc.ingested_sessions(), 0u);
}

// ---- Queries racing a live producer (the TSan workload) ---------------

TEST(Streaming, QueryDuringLiveIngestSeesOnlyFlushedPrefixes) {
  const auto calls = boundary_calls(42, 16);
  constexpr std::size_t kWatermark = 10;
  // Single producer + deterministic watermark slicing: the only session
  // totals a query may ever observe are the participant prefix-sums at
  // flush boundaries.
  std::set<std::size_t> allowed{0};
  std::size_t participants = 0;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    participants += calls[i].participants.size();
    if ((i + 1) % kWatermark == 0 || i + 1 == calls.size()) {
      allowed.insert(participants);
    }
  }

  QueryService svc{{ShardingPolicy::kMonthPlatform, 4}};
  StreamIngestorConfig cfg;
  cfg.call_flush_watermark = kWatermark;
  StreamIngestor ingestor{svc, cfg};

  Query q;
  q.first = Date(2021, 12, 1);
  q.last = Date(2023, 1, 31);
  q.metric_lo = 0.0;
  q.metric_hi = 300.0;
  q.bins = 4;

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  const auto reader = [&] {
    std::uint64_t last_version = 0;
    while (!done.load(std::memory_order_acquire)) {
      const Insight insight = svc.run(q);
      if (allowed.count(insight.sessions) == 0) ++violations;
      if (insight.corpus_version < last_version) ++violations;
      last_version = insight.corpus_version;
      const QueryService::ServiceStats stats = svc.stats();
      if (stats.stream.accepted <
          stats.stream.flushed + stats.stream.staged - stats.stream.dropped) {
        ++violations;
      }
      // Yield between queries: back-to-back shared holds would starve the
      // producer's exclusive acquisitions on reader-preferring rwlocks
      // (and time the test out on 1-core sanitizer hosts).
      std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }
  };
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) readers.emplace_back(reader);
  for (const auto& call : calls) {
    ASSERT_EQ(ingestor.push(call), PushOutcome::kAccepted);
  }
  ASSERT_TRUE(ingestor.flush());
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);

  // After the producer finishes, the stream is fully queryable and
  // bit-identical to batch ingest of the same records.
  QueryService batch{{ShardingPolicy::kMonthPlatform, 4}};
  batch.ingest_calls(calls);
  expect_identical(svc.run(q), batch.run(q));
}

// ---- IngestStats under concurrent ingest (satellite) ------------------

TEST(Streaming, IngestStatsAreMonotoneAndThreadCountInvariant) {
  const auto calls = boundary_calls(8, 12);
  const auto posts = boundary_posts(9, 8);

  // Counters must be identical whatever the pool width: bytes/records are
  // properties of the corpus, not the schedule.
  std::vector<QueryService::ServiceStats> per_threads;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    QueryService svc{{ShardingPolicy::kMonthPlatform, threads}};
    svc.ingest_calls(calls);
    svc.ingest_posts(posts);
    per_threads.push_back(svc.stats());
  }
  for (std::size_t i = 1; i < per_threads.size(); ++i) {
    EXPECT_EQ(per_threads[i].sessions.records,
              per_threads[0].sessions.records);
    EXPECT_EQ(per_threads[i].sessions.bytes_moved,
              per_threads[0].sessions.bytes_moved);
    EXPECT_EQ(per_threads[i].sessions.shards_touched,
              per_threads[0].sessions.shards_touched);
    EXPECT_EQ(per_threads[i].posts.records, per_threads[0].posts.records);
    EXPECT_EQ(per_threads[i].posts.bytes_moved,
              per_threads[0].posts.bytes_moved);
    EXPECT_EQ(per_threads[i].corpus_version, per_threads[0].corpus_version);
  }

  // Monotonicity while two ingest threads append batches and a sampler
  // polls stats(): cumulative counters never go backwards.
  QueryService svc{{ShardingPolicy::kMonthPlatform, 2}};
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread sampler{[&] {
    std::size_t last_records = 0;
    std::size_t last_bytes = 0;
    std::uint64_t last_version = 0;
    while (!done.load(std::memory_order_acquire)) {
      const QueryService::ServiceStats stats = svc.stats();
      const std::size_t records =
          stats.sessions.records + stats.posts.records;
      const std::size_t bytes =
          stats.sessions.bytes_moved + stats.posts.bytes_moved;
      if (records < last_records || bytes < last_bytes ||
          stats.corpus_version < last_version) {
        ++violations;
      }
      if (stats.sessions.total_seconds < 0.0 ||
          stats.sessions.count_seconds + stats.sessions.plan_seconds +
                  stats.sessions.scatter_seconds >
              stats.sessions.total_seconds + 1.0) {
        ++violations;  // phase clocks must stay consistent
      }
      last_records = records;
      last_bytes = bytes;
      last_version = stats.corpus_version;
      std::this_thread::sleep_for(std::chrono::microseconds{200});
    }
  }};
  std::thread call_writer{[&] {
    const std::span<const confsim::CallRecord> span{calls};
    for (std::size_t i = 0; i < span.size(); i += 8) {
      svc.ingest_calls(span.subspan(i, std::min<std::size_t>(8, span.size() - i)));
    }
  }};
  std::thread post_writer{[&] {
    const std::span<const social::Post> span{posts};
    for (std::size_t i = 0; i < span.size(); i += 8) {
      svc.ingest_posts(span.subspan(i, std::min<std::size_t>(8, span.size() - i)));
    }
  }};
  call_writer.join();
  post_writer.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_EQ(violations.load(), 0);
  const QueryService::ServiceStats final_stats = svc.stats();
  EXPECT_EQ(final_stats.sessions.records, per_threads[0].sessions.records);
  EXPECT_EQ(final_stats.sessions.bytes_moved,
            per_threads[0].sessions.bytes_moved);
  EXPECT_EQ(final_stats.posts.records, per_threads[0].posts.records);
}

}  // namespace
}  // namespace usaas::service
