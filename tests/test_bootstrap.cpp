#include "core/bootstrap.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"
#include "core/stats.h"

namespace usaas::core {
namespace {

TEST(Bootstrap, PointEstimateMatchesStatistic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ci = bootstrap_mean_ci(xs, 0.95, 500, 1);
  EXPECT_DOUBLE_EQ(ci.point, 3.0);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, DeterministicForSeed) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const auto a = bootstrap_median_ci(xs, 0.9, 300, 42);
  const auto b = bootstrap_median_ci(xs, 0.9, 300, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, IntervalNarrowsWithSampleSize) {
  Rng rng{5};
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 30; ++i) small.push_back(rng.normal(10.0, 2.0));
  for (int i = 0; i < 3000; ++i) large.push_back(rng.normal(10.0, 2.0));
  const auto ci_small = bootstrap_mean_ci(small, 0.95, 400, 7);
  const auto ci_large = bootstrap_mean_ci(large, 0.95, 400, 7);
  EXPECT_LT(ci_large.hi - ci_large.lo, ci_small.hi - ci_small.lo);
}

TEST(Bootstrap, HigherLevelWidensInterval) {
  Rng rng{6};
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const auto ci80 = bootstrap_mean_ci(xs, 0.80, 600, 9);
  const auto ci99 = bootstrap_mean_ci(xs, 0.99, 600, 9);
  EXPECT_LT(ci80.hi - ci80.lo, ci99.hi - ci99.lo);
}

TEST(Bootstrap, CoverageRoughlyNominal) {
  // Repeated experiments: the 90% CI for the mean should contain the true
  // mean in roughly 90% of trials (allow a generous band).
  Rng rng{8};
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 40; ++i) xs.push_back(rng.normal(5.0, 3.0));
    const auto ci =
        bootstrap_mean_ci(xs, 0.9, 300, static_cast<std::uint64_t>(t) + 1);
    if (ci.lo <= 5.0 && 5.0 <= ci.hi) ++covered;
  }
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_GT(rate, 0.80);
  EXPECT_LT(rate, 0.98);
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 100.0};
  const auto ci = bootstrap_ci(
      xs, [](std::span<const double> s) { return max_value(s); }, 0.9, 200, 3);
  EXPECT_DOUBLE_EQ(ci.point, 100.0);
  EXPECT_LE(ci.hi, 100.0);  // the max statistic cannot exceed the sample max
}

TEST(Bootstrap, ArgumentValidation) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)bootstrap_mean_ci({}, 0.9, 100, 1), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(xs, 0.0, 100, 1), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(xs, 1.0, 100, 1), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(xs, 0.9, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace usaas::core
