#include "core/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"

namespace usaas::core {
namespace {

TEST(Stats, MeanMedianBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), std::invalid_argument);
  EXPECT_THROW((void)median(empty), std::invalid_argument);
  EXPECT_THROW((void)variance(empty), std::invalid_argument);
  EXPECT_THROW((void)quantile(empty, 0.5), std::invalid_argument);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_THROW((void)quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, P95OfUniformSequence) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_NEAR(p95(xs), 95.0, 1e-9);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  Rng rng{100};
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
}

TEST(RunningStats, EmptyThrows) {
  const RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_THROW((void)rs.mean(), std::logic_error);
  EXPECT_THROW((void)rs.variance(), std::logic_error);
  EXPECT_THROW((void)rs.min(), std::logic_error);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  Rng rng{101};
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.normal(20.0, 1.0);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Stats, SummarizeFields) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 100.0};
  const auto s = summarize(xs);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count, 5u);
  EXPECT_DOUBLE_EQ(s->median, 3.0);
  EXPECT_DOUBLE_EQ(s->min, 1.0);
  EXPECT_DOUBLE_EQ(s->max, 100.0);
  EXPECT_FALSE(summarize(std::vector<double>{}).has_value());
}

TEST(Stats, NormalizeToPercentOfMax) {
  const std::vector<double> xs{2.0, 4.0, 1.0};
  const auto out = normalize_to_percent_of_max(xs);
  EXPECT_DOUBLE_EQ(out[0], 50.0);
  EXPECT_DOUBLE_EQ(out[1], 100.0);
  EXPECT_DOUBLE_EQ(out[2], 25.0);
  // Degenerate all-zero input stays zero (no division blow-up).
  const auto zeros = normalize_to_percent_of_max(std::vector<double>{0.0, 0.0});
  EXPECT_DOUBLE_EQ(zeros[0], 0.0);
}

TEST(Stats, RanksWithTies) {
  const std::vector<double> xs{10.0, 20.0, 20.0, 30.0};
  const auto r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, RanksAllEqual) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  const auto r = ranks(xs);
  for (const double v : r) EXPECT_DOUBLE_EQ(v, 2.0);
}

// Property: quantile is monotone in q.
class QuantileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotone, MonotoneInQ) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(0.0, 5.0));
  double prev = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone, ::testing::Range(1, 11));

}  // namespace
}  // namespace usaas::core
