#include "nlp/tokenizer.h"

#include <gtest/gtest.h>

namespace usaas::nlp {
namespace {

TEST(Tokenizer, LowercasesAndSplits) {
  const auto words = tokenize_words("Starlink IS Amazing!");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "starlink");
  EXPECT_EQ(words[1], "is");
  EXPECT_EQ(words[2], "amazing");
}

TEST(Tokenizer, KeepsIntraWordApostrophes) {
  const auto words = tokenize_words("isn't working, don't buy");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "isn't");
  EXPECT_EQ(words[2], "don't");
}

TEST(Tokenizer, StripsQuotingApostrophes) {
  const auto words = tokenize_words("'quoted' text");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "quoted");
}

TEST(Tokenizer, KeepsNumbers) {
  const auto words = tokenize_words("99 dollars for 150 Mbps");
  EXPECT_EQ(words[0], "99");
  EXPECT_EQ(words[2], "for");
  EXPECT_EQ(words[3], "150");
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(tokenize_words("").empty());
  EXPECT_TRUE(tokenize_words("!!! ... ---").empty());
}

TEST(Tokenizer, PositionsAreSequential) {
  const auto tokens = tokenize("a b c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[2].position, 2u);
}

TEST(Tokenizer, CountExclamations) {
  EXPECT_EQ(count_exclamations("wow!! really!"), 3u);
  EXPECT_EQ(count_exclamations("calm text"), 0u);
}

TEST(Tokenizer, UppercaseRatio) {
  EXPECT_DOUBLE_EQ(uppercase_ratio("ABC"), 1.0);
  EXPECT_DOUBLE_EQ(uppercase_ratio("abc"), 0.0);
  EXPECT_NEAR(uppercase_ratio("AbCd"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(uppercase_ratio("123 !!!"), 0.0);
}

TEST(Tokenizer, StopWords) {
  EXPECT_TRUE(is_stop_word("the"));
  EXPECT_TRUE(is_stop_word("and"));
  EXPECT_FALSE(is_stop_word("outage"));
  EXPECT_FALSE(is_stop_word("starlink"));
}

TEST(Tokenizer, ContentWordsFiltersStopsAndShortTokens) {
  const auto words = content_words("The outage is a big problem");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "outage");
  EXPECT_EQ(words[1], "big");
  EXPECT_EQ(words[2], "problem");
}

TEST(Tokenizer, ToLowerAsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
}

}  // namespace
}  // namespace usaas::nlp
