#include "nlp/tokenizer.h"

#include <gtest/gtest.h>

namespace usaas::nlp {
namespace {

TEST(Tokenizer, LowercasesAndSplits) {
  const auto words = tokenize_words("Starlink IS Amazing!");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "starlink");
  EXPECT_EQ(words[1], "is");
  EXPECT_EQ(words[2], "amazing");
}

TEST(Tokenizer, KeepsIntraWordApostrophes) {
  const auto words = tokenize_words("isn't working, don't buy");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "isn't");
  EXPECT_EQ(words[2], "don't");
}

TEST(Tokenizer, StripsQuotingApostrophes) {
  const auto words = tokenize_words("'quoted' text");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "quoted");
}

// Regression: possessive plurals must normalize to the bare form the
// stop-word list and the lexicon use — "users'" tokenizes as "users",
// never as "users'" (an apostrophe only joins two word characters).
TEST(Tokenizer, NormalizesTrailingApostrophes) {
  const auto words = tokenize_words("the users' routers");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "the");
  EXPECT_EQ(words[1], "users");
  EXPECT_EQ(words[2], "routers");

  // At end of input too (no following character to look at).
  const auto tail = tokenize_words("blame the users'");
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[2], "users");

  // Doubled apostrophes never join: only a word character can follow.
  const auto doubled = tokenize_words("isn''t");
  ASSERT_EQ(doubled.size(), 2u);
  EXPECT_EQ(doubled[0], "isn");
  EXPECT_EQ(doubled[1], "t");
}

TEST(Tokenizer, KeepsNumbers) {
  const auto words = tokenize_words("99 dollars for 150 Mbps");
  EXPECT_EQ(words[0], "99");
  EXPECT_EQ(words[2], "for");
  EXPECT_EQ(words[3], "150");
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(tokenize_words("").empty());
  EXPECT_TRUE(tokenize_words("!!! ... ---").empty());
}

TEST(Tokenizer, PositionsAreSequential) {
  TokenScratch scratch;
  const auto tokens = tokenize_into("a b c", scratch);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[2].position, 2u);
}

TEST(Tokenizer, ArenaTokensSurviveScratchReuse) {
  TokenScratch scratch;
  const auto first = tokenize_into("Alpha beta", scratch);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].text, "alpha");
  // Re-tokenizing with the same scratch overwrites the arena; the new
  // views are correct and the call allocates nothing new (same capacity).
  const auto second = tokenize_into("GAMMA delta", scratch);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].text, "gamma");
  EXPECT_EQ(second[1].text, "delta");
}

TEST(Tokenizer, ArenaInputMayAliasScratchText) {
  TokenScratch scratch;
  scratch.text = "Title words AND Body words";
  const auto tokens = tokenize_into(scratch.text, scratch);
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "title");
  EXPECT_EQ(tokens[4].text, "words");
}

TEST(Tokenizer, CountExclamations) {
  EXPECT_EQ(count_exclamations("wow!! really!"), 3u);
  EXPECT_EQ(count_exclamations("calm text"), 0u);
}

TEST(Tokenizer, UppercaseRatio) {
  EXPECT_DOUBLE_EQ(uppercase_ratio("ABC"), 1.0);
  EXPECT_DOUBLE_EQ(uppercase_ratio("abc"), 0.0);
  EXPECT_NEAR(uppercase_ratio("AbCd"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(uppercase_ratio("123 !!!"), 0.0);
}

TEST(Tokenizer, StopWords) {
  EXPECT_TRUE(is_stop_word("the"));
  EXPECT_TRUE(is_stop_word("and"));
  EXPECT_FALSE(is_stop_word("outage"));
  EXPECT_FALSE(is_stop_word("starlink"));
}

TEST(Tokenizer, ContentWordsFiltersStopsAndShortTokens) {
  const auto words = content_words("The outage is a big problem");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "outage");
  EXPECT_EQ(words[1], "big");
  EXPECT_EQ(words[2], "problem");
}

TEST(Tokenizer, ToLowerAsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
}

}  // namespace
}  // namespace usaas::nlp
