// Multi-seed property sweep over the social simulator: the corpus-level
// invariants the §4 pipelines depend on must hold for ANY seed, not just
// the benchmark seed.
#include <gtest/gtest.h>

#include "core/correlation.h"
#include "nlp/sentiment.h"
#include "social/subreddit.h"

namespace usaas::social {
namespace {

using core::Date;

class SocialSeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static std::vector<Post> simulate(std::uint64_t seed) {
    SubredditConfig cfg;
    cfg.seed = seed;
    cfg.first_day = Date(2022, 3, 1);
    cfg.last_day = Date(2022, 5, 31);
    leo::LaunchSchedule sched;
    RedditSim sim{
        cfg,
        leo::SpeedModel{leo::ConstellationModel{sched},
                        leo::SubscriberModel{}},
        leo::OutageModel{cfg.first_day, cfg.last_day, seed ^ 0xabcd},
        leo::EventTimeline{sched}};
    return sim.simulate();
  }
};

TEST_P(SocialSeedSweep, VolumeInExpectedBand) {
  const auto posts = simulate(GetParam());
  const double per_day = static_cast<double>(posts.size()) / 92.0;
  EXPECT_GT(per_day, 30.0);
  EXPECT_LT(per_day, 110.0);
}

TEST_P(SocialSeedSweep, PolarityRecoverableByAnalyzer) {
  const auto posts = simulate(GetParam());
  const nlp::SentimentAnalyzer analyzer;
  std::vector<double> truth;
  std::vector<double> recovered;
  for (const auto& p : posts) {
    truth.push_back(p.true_polarity);
    recovered.push_back(analyzer.score(p.full_text()).polarity());
  }
  EXPECT_GT(core::pearson(truth, recovered), 0.55) << "seed " << GetParam();
}

TEST_P(SocialSeedSweep, ScreenshotInvariant) {
  for (const auto& p : simulate(GetParam())) {
    EXPECT_EQ(p.screenshot.has_value(), p.kind == PostKind::kSpeedtest);
    EXPECT_EQ(p.true_test.has_value(), p.kind == PostKind::kSpeedtest);
    EXPECT_GE(p.upvotes, 0);
    EXPECT_GE(p.num_comments, 0);
    EXPECT_GE(p.true_polarity, -1.0);
    EXPECT_LE(p.true_polarity, 1.0);
  }
}

TEST_P(SocialSeedSweep, Apr22OutageAlwaysVisible) {
  // The deterministic major outage must dominate its neighbourhood in
  // every seed's corpus.
  const auto posts = simulate(GetParam());
  std::size_t apr22_reports = 0;
  std::size_t apr20_reports = 0;
  for (const auto& p : posts) {
    if (p.kind != PostKind::kOutageReport) continue;
    if (p.date == Date(2022, 4, 22)) ++apr22_reports;
    if (p.date == Date(2022, 4, 20)) ++apr20_reports;
  }
  EXPECT_GT(apr22_reports, 15u) << "seed " << GetParam();
  EXPECT_GT(apr22_reports, apr20_reports * 3) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SocialSeedSweep,
                         ::testing::Values(1u, 17u, 202u, 9999u, 123456u));

}  // namespace
}  // namespace usaas::social
