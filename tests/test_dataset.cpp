#include "confsim/dataset.h"

#include <gtest/gtest.h>

namespace usaas::confsim {
namespace {

DatasetConfig small_config() {
  DatasetConfig cfg;
  cfg.num_calls = 300;
  cfg.seed = 1;
  return cfg;
}

TEST(Dataset, DeterministicForSeed) {
  const CallDatasetGenerator gen{small_config()};
  const auto a = gen.generate();
  const auto b = gen.generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].participants.size(), b[i].participants.size());
    EXPECT_DOUBLE_EQ(a[i].participants[0].presence_pct,
                     b[i].participants[0].presence_pct);
    EXPECT_DOUBLE_EQ(a[i].participants[0].network.latency_ms.mean,
                     b[i].participants[0].network.latency_ms.mean);
  }
}

TEST(Dataset, DifferentSeedsDiffer) {
  auto cfg_a = small_config();
  auto cfg_b = small_config();
  cfg_b.seed = 2;
  const auto a = CallDatasetGenerator{cfg_a}.generate();
  const auto b = CallDatasetGenerator{cfg_b}.generate();
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a[0].participants[0].network.latency_ms.mean,
            b[0].participants[0].network.latency_ms.mean);
}

TEST(Dataset, EnterpriseFilterHolds) {
  const auto calls = CallDatasetGenerator{small_config()}.generate();
  ASSERT_FALSE(calls.empty());
  for (const auto& call : calls) {
    EXPECT_TRUE(passes_enterprise_filter(call));
    EXPECT_GE(call.size(), 3);
    EXPECT_TRUE(call.start.date.is_weekday());
    EXPECT_GE(call.start.time.hour, 9);
    EXPECT_LT(call.start.time.hour, 20);
  }
}

TEST(Dataset, DateRangeRespected) {
  auto cfg = small_config();
  cfg.first_day = core::Date(2022, 2, 1);
  cfg.last_day = core::Date(2022, 2, 28);
  const auto calls = CallDatasetGenerator{cfg}.generate();
  for (const auto& call : calls) {
    EXPECT_GE(call.start.date, cfg.first_day);
    EXPECT_LE(call.start.date, cfg.last_day);
  }
}

TEST(Dataset, SweepFillsAllBins) {
  auto cfg = small_config();
  cfg.num_calls = 2000;
  cfg.sampling = ConditionSampling::kSweep;
  cfg.sweep_metric = netsim::Metric::kLatency;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 300.0;
  const auto calls = CallDatasetGenerator{cfg}.generate();
  std::array<int, 15> bins{};
  for (const auto& call : calls) {
    for (const auto& p : call.participants) {
      const double lat = p.network.latency_ms.mean;
      if (lat >= 0.0 && lat < 300.0) {
        ++bins[static_cast<std::size_t>(lat / 20.0)];
      }
    }
  }
  for (const int count : bins) EXPECT_GT(count, 50);
}

TEST(Dataset, SweepControlsOtherMetrics) {
  auto cfg = small_config();
  cfg.sampling = ConditionSampling::kSweep;
  cfg.sweep_metric = netsim::Metric::kLoss;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 3.5;
  const auto calls = CallDatasetGenerator{cfg}.generate();
  int in_control = 0;
  int total = 0;
  for (const auto& call : calls) {
    for (const auto& p : call.participants) {
      ++total;
      if (netsim::others_in_control(p.network.mean_conditions(),
                                    netsim::Metric::kLoss)) {
        ++in_control;
      }
    }
  }
  // The baselines are inside the windows; session noise moves a few out.
  EXPECT_GT(static_cast<double>(in_control) / total, 0.55);
}

TEST(Dataset, MosSamplingSparse) {
  auto cfg = small_config();
  cfg.num_calls = 3000;
  const auto calls = CallDatasetGenerator{cfg}.generate();
  std::size_t rated = 0;
  std::size_t total = 0;
  for (const auto& call : calls) {
    for (const auto& p : call.participants) {
      ++total;
      if (p.mos) ++rated;
    }
  }
  const double rate = static_cast<double>(rated) / static_cast<double>(total);
  EXPECT_GT(rate, 0.0005);
  EXPECT_LT(rate, 0.01);
}

TEST(Dataset, FullTelemetryModeProducesSamples) {
  auto cfg = small_config();
  cfg.num_calls = 20;
  cfg.telemetry = TelemetryMode::kFull;
  const auto calls = CallDatasetGenerator{cfg}.generate();
  ASSERT_FALSE(calls.empty());
  for (const auto& call : calls) {
    for (const auto& p : call.participants) {
      // A full simulation has one sample per 5 seconds of the call.
      EXPECT_EQ(p.network.sample_count,
                static_cast<std::size_t>(call.scheduled_minutes * 12));
      EXPECT_GT(p.network.latency_ms.p95, 0.0);
    }
  }
}

TEST(Dataset, FastModeMatchesFullModeOnAverage) {
  // The fast analytic telemetry should produce session means distributed
  // like the full path simulation (same baselines, same seed stream).
  auto full_cfg = small_config();
  full_cfg.num_calls = 150;
  full_cfg.telemetry = TelemetryMode::kFull;
  auto fast_cfg = full_cfg;
  fast_cfg.telemetry = TelemetryMode::kFast;
  auto mean_latency = [](const std::vector<CallRecord>& calls) {
    double acc = 0.0;
    std::size_t n = 0;
    for (const auto& c : calls) {
      for (const auto& p : c.participants) {
        acc += p.network.latency_ms.mean;
        ++n;
      }
    }
    return acc / static_cast<double>(n);
  };
  const double full_mean =
      mean_latency(CallDatasetGenerator{full_cfg}.generate());
  const double fast_mean =
      mean_latency(CallDatasetGenerator{fast_cfg}.generate());
  EXPECT_NEAR(fast_mean / full_mean, 1.0, 0.25);
}

TEST(Dataset, MeetingSizeDistribution) {
  auto cfg = small_config();
  cfg.num_calls = 1000;
  cfg.mean_extra_participants = 3.0;
  cfg.max_participants = 10;
  const auto calls = CallDatasetGenerator{cfg}.generate();
  double acc = 0.0;
  for (const auto& call : calls) {
    EXPECT_LE(call.size(), 10);
    EXPECT_GE(call.size(), 3);
    acc += call.size();
  }
  EXPECT_NEAR(acc / static_cast<double>(calls.size()), 6.0, 0.6);
}

TEST(Dataset, StreamingMatchesBatch) {
  const CallDatasetGenerator gen{small_config()};
  const auto batch = gen.generate();
  std::size_t streamed = 0;
  gen.generate_stream([&](const CallRecord& c) {
    ASSERT_LT(streamed, batch.size());
    EXPECT_EQ(c.call_id, batch[streamed].call_id);
    ++streamed;
  });
  EXPECT_EQ(streamed, batch.size());
}

TEST(Dataset, ConfigValidation) {
  DatasetConfig cfg;
  cfg.num_calls = 0;
  EXPECT_THROW(CallDatasetGenerator{cfg}, std::invalid_argument);
  cfg = DatasetConfig{};
  cfg.last_day = core::Date(2021, 1, 1);
  EXPECT_THROW(CallDatasetGenerator{cfg}, std::invalid_argument);
  cfg = DatasetConfig{};
  cfg.max_participants = 2;
  EXPECT_THROW(CallDatasetGenerator{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace usaas::confsim
