#include "core/units.h"

#include <gtest/gtest.h>

namespace usaas::core {
namespace {

TEST(Units, MillisecondsAccessors) {
  const Milliseconds m{1500.0};
  EXPECT_DOUBLE_EQ(m.ms(), 1500.0);
  EXPECT_DOUBLE_EQ(m.seconds(), 1.5);
}

TEST(Units, MbpsAccessors) {
  const Mbps b{2.5};
  EXPECT_DOUBLE_EQ(b.mbps(), 2.5);
  EXPECT_DOUBLE_EQ(b.kbps(), 2500.0);
}

TEST(Units, PercentFractionRoundTrip) {
  const Percent p{37.5};
  EXPECT_DOUBLE_EQ(p.fraction(), 0.375);
  EXPECT_DOUBLE_EQ(Percent::from_fraction(0.375).percent(), 37.5);
}

TEST(Units, ArithmeticAndOrdering) {
  const Milliseconds a{10.0};
  const Milliseconds b{15.0};
  EXPECT_LT(a, b);
  EXPECT_EQ((a + b).ms(), 25.0);
  EXPECT_EQ((b - a).ms(), 5.0);
  EXPECT_EQ((a * 3.0).ms(), 30.0);
  EXPECT_EQ((3.0 * a).ms(), 30.0);
  EXPECT_EQ((b / 3.0).ms(), 5.0);
  EXPECT_EQ(a, Milliseconds{10.0});
}

TEST(Units, ClampPercentBounds) {
  EXPECT_DOUBLE_EQ(clamp_percent(Percent{-5.0}).percent(), 0.0);
  EXPECT_DOUBLE_EQ(clamp_percent(Percent{105.0}).percent(), 100.0);
  EXPECT_DOUBLE_EQ(clamp_percent(Percent{42.0}).percent(), 42.0);
}

TEST(Units, ClampMosBounds) {
  EXPECT_DOUBLE_EQ(clamp_mos(Mos{0.2}).score(), 1.0);
  EXPECT_DOUBLE_EQ(clamp_mos(Mos{6.0}).score(), 5.0);
  EXPECT_DOUBLE_EQ(clamp_mos(Mos{3.3}).score(), 3.3);
}

TEST(Units, ExpectInRangeThrowsOutside) {
  EXPECT_NO_THROW(expect_in_range(0.5, 0.0, 1.0, "x"));
  EXPECT_THROW(expect_in_range(1.5, 0.0, 1.0, "x"), std::invalid_argument);
  EXPECT_THROW(expect_in_range(-0.1, 0.0, 1.0, "x"), std::invalid_argument);
}

}  // namespace
}  // namespace usaas::core
