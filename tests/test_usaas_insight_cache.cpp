// Two-tier query path tests: the tier-1 versioned insight cache and the
// tier-2 mergeable per-shard summaries.
//
// The contract under test, from the service's documentation:
//   * a cache hit returns an Insight bit-identical to recomputing it;
//   * the corpus version is part of the cache key, so a mutation never
//     serves a stale insight — pre-bump entries become unreachable;
//   * the LRU is bounded: capacity is respected, eviction is oldest-first,
//     capacity 0 disables caching entirely;
//   * summary-merged answers agree with a full rescan (bit-identical for
//     access-filtered curves and all tallies, <= 1e-9 relative for merged
//     whole-population curves).
//
// Registered under the `sanitize` ctest label with USAAS_PARALLEL_FORCE=1:
// NoStaleInsightAfterBump races readers (cache probes + computes) against
// a live producer and is the TSan workload for cache_mu + the version
// counter.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "confsim/call.h"
#include "core/date.h"
#include "core/fingerprint.h"
#include "core/histogram.h"
#include "core/lru_cache.h"
#include "core/rng.h"
#include "social/post.h"
#include "usaas/query_service.h"
#include "usaas/shard_summary.h"

namespace usaas::service {
namespace {

using core::Date;

// ---- Corpus + battery helpers (mirror test_usaas_streaming) -----------

std::vector<confsim::CallRecord> boundary_calls(std::uint64_t seed,
                                                std::size_t calls_per_day) {
  const Date days[] = {
      {2021, 12, 31}, {2022, 1, 1},  {2022, 1, 31}, {2022, 2, 1},
      {2022, 2, 28},  {2022, 3, 1},  {2022, 6, 30}, {2022, 7, 1},
      {2022, 12, 31}, {2023, 1, 1},
  };
  constexpr confsim::Platform kPlatforms[] = {
      confsim::Platform::kWindowsPc, confsim::Platform::kMacPc,
      confsim::Platform::kIos, confsim::Platform::kAndroid};
  constexpr netsim::AccessTechnology kAccess[] = {
      netsim::AccessTechnology::kFiber, netsim::AccessTechnology::kCable,
      netsim::AccessTechnology::kLeoSatellite};
  core::Rng rng{seed};
  std::vector<confsim::CallRecord> calls;
  std::uint64_t call_id = 0;
  for (const Date& day : days) {
    for (std::size_t c = 0; c < calls_per_day; ++c) {
      confsim::CallRecord call;
      call.call_id = call_id++;
      call.start.date = day;
      call.start.time = {10, 30};
      const int participants = 3 + static_cast<int>(rng.uniform_int(0, 2));
      for (int p = 0; p < participants; ++p) {
        confsim::ParticipantRecord rec;
        rec.user_id = call.call_id * 8 + static_cast<std::uint64_t>(p);
        rec.platform = kPlatforms[rng.uniform_int(0, 3)];
        rec.meeting_size = participants;
        rec.access = kAccess[rng.uniform_int(0, 2)];
        const double latency = 20.0 + rng.uniform(0.0, 250.0);
        const auto agg = [](double v) {
          return netsim::MetricAggregate{v, v * 0.95, v * 1.7};
        };
        rec.network.latency_ms = agg(latency);
        rec.network.loss_pct = agg(rng.uniform(0.0, 3.0));
        rec.network.jitter_ms = agg(rng.uniform(0.0, 15.0));
        rec.network.bandwidth_mbps = agg(1.0 + rng.uniform(0.0, 50.0));
        rec.network.duration_seconds = 1800.0;
        rec.network.sample_count = 360;
        rec.presence_pct = std::max(0.0, 95.0 - latency / 8.0);
        rec.cam_on_pct = std::max(0.0, 60.0 - latency / 6.0);
        rec.mic_on_pct = std::max(0.0, 35.0 - latency / 10.0);
        rec.dropped_early = rng.bernoulli(0.05);
        if (rng.bernoulli(0.15)) {
          rec.mos = core::clamp_mos(core::Mos{4.5 - latency / 120.0});
        }
        call.participants.push_back(rec);
      }
      calls.push_back(std::move(call));
    }
  }
  return calls;
}

std::vector<social::Post> boundary_posts(std::uint64_t seed,
                                         std::size_t posts_per_day) {
  static const char* kBodies[] = {
      "service went down tonight, complete outage, everything offline",
      "the connection has been great lately, fast and reliable",
      "pretty average week, speeds are okay, nothing special",
      "lost connection during calls, not working, is the network down",
  };
  const Date days[] = {
      {2021, 12, 31}, {2022, 1, 1},  {2022, 2, 28}, {2022, 3, 1},
      {2022, 8, 15},  {2022, 12, 31}, {2023, 1, 1},
  };
  core::Rng rng{seed};
  std::vector<social::Post> posts;
  std::uint64_t id = 0;
  for (const Date& day : days) {
    for (std::size_t i = 0; i < posts_per_day; ++i) {
      social::Post post;
      post.id = id++;
      post.date = day;
      post.author_id = rng.uniform_int(1, 500);
      post.title = "experience report";
      post.body = kBodies[rng.uniform_int(0, 3)];
      post.upvotes = static_cast<int>(rng.uniform_int(0, 50));
      post.num_comments = static_cast<int>(rng.uniform_int(0, 10));
      posts.push_back(std::move(post));
    }
  }
  return posts;
}

struct Corpus {
  std::vector<confsim::CallRecord> calls;
  std::vector<social::Post> posts;
};

Corpus make_corpus(std::uint64_t seed) {
  return {boundary_calls(seed, 10), boundary_posts(seed ^ 0x5eed, 5)};
}

QueryServiceConfig service_config(std::size_t threads, std::size_t cache,
                                  bool summaries,
                                  ShardingPolicy policy =
                                      ShardingPolicy::kMonthPlatform) {
  QueryServiceConfig cfg;
  cfg.sharding = policy;
  cfg.threads = threads;
  cfg.insight_cache_entries = cache;
  cfg.shard_summaries = summaries;
  return cfg;
}

QueryService make_service(const Corpus& corpus, QueryServiceConfig config) {
  QueryService svc{config};
  svc.ingest_calls(corpus.calls);
  svc.ingest_posts(corpus.posts);
  svc.train_predictor();
  return svc;
}

// Every query shape the cache must key distinctly: summary-answerable
// dashboards (whole-month windows matching a configured axis), filtered
// variants, and shapes that must fall back to the scan path (mid-month
// boundary, non-axis bin count).
std::vector<Query> battery() {
  std::vector<Query> queries;
  Query base;
  base.first = Date(2021, 12, 1);
  base.last = Date(2023, 1, 31);
  base.metric = netsim::Metric::kLatency;
  base.metric_lo = 0.0;
  base.metric_hi = 300.0;
  base.bins = 10;
  queries.push_back(base);  // summary axis 0

  Query loss = base;
  loss.metric = netsim::Metric::kLoss;
  loss.metric_lo = 0.0;
  loss.metric_hi = 10.0;
  queries.push_back(loss);  // summary axis 1

  Query access = base;
  access.access = netsim::AccessTechnology::kLeoSatellite;
  queries.push_back(access);  // per-access summary buckets

  Query platform = base;
  platform.platform = confsim::Platform::kAndroid;
  queries.push_back(platform);  // platform pruning + summaries

  Query jitter = base;
  jitter.metric = netsim::Metric::kJitter;
  jitter.metric_lo = 0.0;
  jitter.metric_hi = 80.0;
  queries.push_back(jitter);  // summary axis 2

  Query midmonth = base;
  midmonth.first = Date(2021, 12, 15);
  midmonth.last = Date(2022, 1, 15);
  queries.push_back(midmonth);  // boundary shards must scan

  Query oddbins = base;
  oddbins.bins = 6;
  queries.push_back(oddbins);  // no matching axis: scan fallback

  return queries;
}

void expect_identical(const Insight& a, const Insight& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.rated_sessions, b.rated_sessions);
  EXPECT_EQ(a.posts, b.posts);
  EXPECT_EQ(a.outage_mention_days, b.outage_mention_days);
  EXPECT_EQ(a.outage_alert_days, b.outage_alert_days);
  EXPECT_DOUBLE_EQ(a.strong_positive_share, b.strong_positive_share);
  ASSERT_EQ(a.engagement.size(), b.engagement.size());
  for (std::size_t c = 0; c < a.engagement.size(); ++c) {
    ASSERT_EQ(a.engagement[c].points.size(), b.engagement[c].points.size());
    for (std::size_t p = 0; p < a.engagement[c].points.size(); ++p) {
      EXPECT_EQ(a.engagement[c].points[p].sessions,
                b.engagement[c].points[p].sessions);
      EXPECT_DOUBLE_EQ(a.engagement[c].points[p].engagement,
                       b.engagement[c].points[p].engagement);
      EXPECT_DOUBLE_EQ(a.engagement[c].points[p].metric_value,
                       b.engagement[c].points[p].metric_value);
    }
  }
  ASSERT_EQ(a.mos_spearman.size(), b.mos_spearman.size());
  for (std::size_t i = 0; i < a.mos_spearman.size(); ++i) {
    EXPECT_EQ(a.mos_spearman[i].first, b.mos_spearman[i].first);
    EXPECT_DOUBLE_EQ(a.mos_spearman[i].second, b.mos_spearman[i].second);
  }
  ASSERT_EQ(a.observed_mean_mos.has_value(), b.observed_mean_mos.has_value());
  if (a.observed_mean_mos) {
    EXPECT_DOUBLE_EQ(*a.observed_mean_mos, *b.observed_mean_mos);
  }
  ASSERT_EQ(a.predicted_mean_mos.has_value(),
            b.predicted_mean_mos.has_value());
  if (a.predicted_mean_mos) {
    EXPECT_DOUBLE_EQ(*a.predicted_mean_mos, *b.predicted_mean_mos);
  }
}

// Like expect_identical but with the service's documented 1e-9 relative
// budget on floating-point aggregates (integer counts stay exact): the
// tolerance summary-merged whole-population curves are held to.
void expect_close(const Insight& a, const Insight& b) {
  constexpr double kRel = 1e-9;
  const auto near = [&](double x, double y) {
    EXPECT_NEAR(x, y, kRel * std::max({1.0, std::fabs(x), std::fabs(y)}));
  };
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.rated_sessions, b.rated_sessions);
  EXPECT_EQ(a.posts, b.posts);
  EXPECT_EQ(a.outage_mention_days, b.outage_mention_days);
  EXPECT_EQ(a.outage_alert_days, b.outage_alert_days);
  near(a.strong_positive_share, b.strong_positive_share);
  ASSERT_EQ(a.engagement.size(), b.engagement.size());
  for (std::size_t c = 0; c < a.engagement.size(); ++c) {
    ASSERT_EQ(a.engagement[c].points.size(), b.engagement[c].points.size());
    for (std::size_t p = 0; p < a.engagement[c].points.size(); ++p) {
      EXPECT_EQ(a.engagement[c].points[p].sessions,
                b.engagement[c].points[p].sessions);
      near(a.engagement[c].points[p].engagement,
           b.engagement[c].points[p].engagement);
    }
  }
  ASSERT_EQ(a.mos_spearman.size(), b.mos_spearman.size());
  for (std::size_t i = 0; i < a.mos_spearman.size(); ++i) {
    near(a.mos_spearman[i].second, b.mos_spearman[i].second);
  }
  ASSERT_EQ(a.observed_mean_mos.has_value(), b.observed_mean_mos.has_value());
  if (a.observed_mean_mos) near(*a.observed_mean_mos, *b.observed_mean_mos);
  ASSERT_EQ(a.predicted_mean_mos.has_value(),
            b.predicted_mean_mos.has_value());
  if (a.predicted_mean_mos) {
    near(*a.predicted_mean_mos, *b.predicted_mean_mos);
  }
}

// ---- LruCache unit tests ---------------------------------------------

TEST(LruCache, FindPromotesAndEvictionIsOldestFirst) {
  core::LruCache<int, std::string> cache{2};
  EXPECT_EQ(cache.find(1), nullptr);
  cache.insert(1, "a", 8);
  cache.insert(2, "b", 16);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 24u);
  // Touch 1: it becomes most-recent, so inserting 3 must evict 2.
  ASSERT_NE(cache.find(1), nullptr);
  cache.insert(3, "c", 4);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.bytes(), 12u);
  EXPECT_EQ(cache.find(2), nullptr);
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(*cache.find(1), "a");
  ASSERT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(LruCache, ReplaceKeepsSizeAndUpdatesBytes) {
  core::LruCache<int, int> cache{4};
  cache.insert(7, 1, 100);
  cache.insert(7, 2, 10);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 10u);
  ASSERT_NE(cache.find(7), nullptr);
  EXPECT_EQ(*cache.find(7), 2);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCache, ZeroCapacityDisablesStorage) {
  core::LruCache<int, int> cache{0};
  cache.insert(1, 1, 64);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.find(1), nullptr);
}

// Stats contract: a disabled cache (capacity 0) reports ZERO traffic. It
// used to count a miss per find(), which made capacity-0 A/B runs look
// like a 100%-miss cache instead of no cache at all, and poisoned any
// hit-ratio alert fed from the exposition endpoint.
TEST(LruCache, ZeroCapacityReportsZeroTraffic) {
  core::LruCache<int, int> cache{0};
  for (int i = 0; i < 100; ++i) {
    cache.insert(i, i, 8);
    EXPECT_EQ(cache.find(i), nullptr);
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);

  // An enabled cache still counts both outcomes, so the fix cannot have
  // silenced real traffic.
  core::LruCache<int, int> live{2};
  live.insert(1, 1, 8);
  EXPECT_NE(live.find(1), nullptr);
  EXPECT_EQ(live.find(2), nullptr);
  EXPECT_EQ(live.hits(), 1u);
  EXPECT_EQ(live.misses(), 1u);
}

// ---- Insight heap accounting -----------------------------------------

// Regression: insight_heap_bytes skipped the engagement vector's OWN
// buffer (it only counted each curve's points), so every cached insight
// under-reported by engagement.capacity() * sizeof(EngagementCurve) and
// the usaas_insight_cache_bytes gauge drifted below the real footprint as
// entries accumulated.
TEST(InsightBytes, GrowsWithTheEngagementVectorBuffer) {
  Insight empty;
  const std::size_t base = insight_heap_bytes(empty);
  EXPECT_GE(base, sizeof(Insight));

  Insight with_curves;
  with_curves.engagement.resize(3);  // empty curves: only the outer buffer
  const std::size_t outer = insight_heap_bytes(with_curves);
  EXPECT_GE(outer, base + 3 * sizeof(EngagementCurve));

  with_curves.engagement[0].points.resize(16);
  EXPECT_GE(insight_heap_bytes(with_curves),
            outer + 16 * sizeof(CurvePoint));
}

TEST(InsightCache, ByteGaugeCoversEveryOwnedBuffer) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  const auto calls = boundary_calls(11, 4);
  svc.ingest_calls(calls);
  Query q;
  q.first = Date(2022, 1, 1);
  q.last = Date(2022, 12, 31);
  q.bins = 6;
  const Insight insight = svc.run(q);
  ASSERT_FALSE(insight.engagement.empty());
  // The cached copy's vector capacities are at least their sizes, so the
  // gauge must be at least the size-based floor — including the
  // engagement buffer the accounting used to miss.
  std::size_t floor = sizeof(Insight) +
                      insight.engagement.size() * sizeof(EngagementCurve) +
                      insight.mos_spearman.size() *
                          sizeof(std::pair<EngagementMetric, double>) +
                      insight.outage_alert_days.size() * sizeof(Date);
  for (const EngagementCurve& curve : insight.engagement) {
    floor += curve.points.size() * sizeof(CurvePoint);
  }
  const QueryService::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.insight_cache.entries, 1u);
  EXPECT_GE(stats.insight_cache.bytes, floor);
}

// ---- Fingerprint unit tests ------------------------------------------

TEST(Fingerprint, StableOrderSensitiveAndZeroCanonical) {
  core::Fingerprint a;
  a.mix(std::uint64_t{1}).mix(std::uint64_t{2});
  core::Fingerprint b;
  b.mix(std::uint64_t{2}).mix(std::uint64_t{1});
  EXPECT_NE(a.digest(), b.digest());  // order-sensitive

  core::Fingerprint c;
  c.mix(std::uint64_t{1}).mix(std::uint64_t{2});
  EXPECT_EQ(a.digest(), c.digest());  // deterministic across instances

  core::Fingerprint pos;
  pos.mix(0.0);
  core::Fingerprint neg;
  neg.mix(-0.0);
  EXPECT_EQ(pos.digest(), neg.digest());  // -0.0 == +0.0 must hash equal

  core::Fingerprint s1;
  s1.mix(std::string_view{"ab"});
  core::Fingerprint s2;
  s2.mix(std::string_view{"ba"});
  EXPECT_NE(s1.digest(), s2.digest());
}

// ---- Tier 1: the versioned insight cache ------------------------------

TEST(InsightCache, HitIsBitIdenticalToRecomputation) {
  const Corpus corpus = make_corpus(4242);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    QueryService cached =
        make_service(corpus, service_config(threads, 64, true));
    QueryService uncached =
        make_service(corpus, service_config(threads, 0, true));
    const std::vector<Query> queries = battery();
    std::vector<Insight> first;
    first.reserve(queries.size());
    for (const Query& q : queries) first.push_back(cached.run(q));
    const QueryService::ServiceStats cold = cached.stats();
    EXPECT_EQ(cold.insight_cache.hits, 0u);
    EXPECT_EQ(cold.insight_cache.misses, queries.size());
    EXPECT_EQ(cold.insight_cache.entries, queries.size());
    EXPECT_GT(cold.insight_cache.bytes, 0u);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      // Warm run: served from cache, bit-identical to the cold compute
      // and to a service that never caches.
      expect_identical(cached.run(queries[i]), first[i]);
      expect_identical(uncached.run(queries[i]), first[i]);
    }
    const QueryService::ServiceStats warm = cached.stats();
    EXPECT_EQ(warm.insight_cache.hits, queries.size());
    EXPECT_EQ(warm.insight_cache.misses, queries.size());
    const QueryService::ServiceStats bypass = uncached.stats();
    EXPECT_EQ(bypass.insight_cache.hits, 0u);
    EXPECT_EQ(bypass.insight_cache.misses, 0u);
    EXPECT_EQ(bypass.insight_cache.capacity, 0u);
  }
}

TEST(InsightCache, VersionBumpMakesPreMutationEntriesUnreachable) {
  Corpus corpus = make_corpus(99);
  QueryService svc = make_service(corpus, service_config(2, 32, true));
  const Query q = battery().front();

  const Insight before = svc.run(q);
  expect_identical(svc.run(q), before);  // hit at the same version
  QueryService::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.insight_cache.hits, 1u);
  EXPECT_EQ(stats.insight_cache.misses, 1u);

  // Mutate: the next run must recompute against the grown corpus, not
  // serve the cached pre-bump insight.
  const auto extra = boundary_calls(555, 4);
  svc.ingest_calls(extra);
  const Insight after = svc.run(q);
  EXPECT_GT(after.corpus_version, before.corpus_version);
  EXPECT_GT(after.sessions, before.sessions);
  stats = svc.stats();
  EXPECT_EQ(stats.insight_cache.hits, 1u);
  EXPECT_EQ(stats.insight_cache.misses, 2u);

  // And the new version is itself cacheable.
  expect_identical(svc.run(q), after);
  EXPECT_EQ(svc.stats().insight_cache.hits, 2u);

  // Retraining is a mutation too (predicted tallies change).
  svc.train_predictor();
  const Insight retrained = svc.run(q);
  EXPECT_GT(retrained.corpus_version, after.corpus_version);
  EXPECT_EQ(svc.stats().insight_cache.misses, 3u);
}

TEST(InsightCache, LruCapacityBoundsEntriesAndEvictsOldest) {
  const Corpus corpus = make_corpus(7);
  QueryService svc = make_service(corpus, service_config(1, 2, true));
  const std::vector<Query> queries = battery();
  const Query a = queries[0];
  const Query b = queries[1];
  const Query c = queries[4];

  (void)svc.run(a);           // miss; cache = {a}
  (void)svc.run(b);           // miss; cache = {b, a}
  (void)svc.run(a);           // hit; cache = {a, b}
  (void)svc.run(c);           // miss; evicts b (oldest)
  QueryService::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.insight_cache.hits, 1u);
  EXPECT_EQ(stats.insight_cache.misses, 3u);
  EXPECT_EQ(stats.insight_cache.evictions, 1u);
  EXPECT_EQ(stats.insight_cache.entries, 2u);
  EXPECT_EQ(stats.insight_cache.capacity, 2u);

  (void)svc.run(a);           // a survived (promoted by the earlier hit)
  (void)svc.run(b);           // b was evicted: miss again, evicts c
  stats = svc.stats();
  EXPECT_EQ(stats.insight_cache.hits, 2u);
  EXPECT_EQ(stats.insight_cache.misses, 4u);
  EXPECT_EQ(stats.insight_cache.evictions, 2u);
  EXPECT_EQ(stats.insight_cache.entries, 2u);
}

TEST(InsightCache, InvalidQueriesAreNotCached) {
  const Corpus corpus = make_corpus(3);
  QueryService svc = make_service(corpus, service_config(1, 8, true));
  Query bad = battery().front();
  bad.bins = 0;
  EXPECT_EQ(svc.run(bad).error, QueryError::kZeroBins);
  EXPECT_EQ(svc.run(bad).error, QueryError::kZeroBins);
  const QueryService::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.insight_cache.entries, 0u);
  EXPECT_EQ(stats.insight_cache.hits, 0u);
  EXPECT_EQ(stats.insight_cache.misses, 0u);
}

// ---- Tier 2: summary-merge vs rescan ----------------------------------

TEST(ShardSummaries, SummaryAnsweredInsightsMatchRescansWithin1e9) {
  const Corpus corpus = make_corpus(2026);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    // Caches off everywhere: this test compares the compute paths.
    QueryService summarized =
        make_service(corpus, service_config(threads, 0, true));
    QueryService scanning =
        make_service(corpus, service_config(threads, 0, false));
    QueryService flat = make_service(
        corpus,
        service_config(threads, 0, false, ShardingPolicy::kSingleShard));
    for (const Query& q : battery()) {
      const Insight fast = summarized.run(q);
      expect_close(fast, scanning.run(q));
      expect_close(fast, flat.run(q));
    }
    const QueryService::ServiceStats fast_stats = summarized.stats();
    const QueryService::ServiceStats scan_stats = scanning.stats();
    // The battery's dashboard shapes actually exercised the summary path,
    // and the scan-only service never did.
    EXPECT_GT(fast_stats.fanout.shards_from_summary, 0u);
    EXPECT_GT(fast_stats.summary_bytes, 0u);
    EXPECT_EQ(scan_stats.fanout.shards_from_summary, 0u);
    EXPECT_GT(scan_stats.fanout.shards_scanned, 0u);
    // Mid-month and odd-bin shapes fell back to scans on the summarized
    // service too.
    EXPECT_GT(fast_stats.fanout.shards_scanned, 0u);
  }
}

TEST(ShardSummaries, MergeMatchesRescan) {
  // Direct unit-level check of the mergeable-summary algebra: folding a
  // record stream into two summaries and merging must agree with folding
  // the whole stream into one (integer counts exactly; floating-point
  // aggregates within the 1e-9 budget — merge re-associates the sums).
  std::vector<confsim::ParticipantRecord> records;
  for (const confsim::CallRecord& call : boundary_calls(31337, 12)) {
    for (const confsim::ParticipantRecord& rec : call.participants) {
      records.push_back(rec);
    }
  }
  ASSERT_GT(records.size(), 100u);

  const SummaryConfig cfg;
  ShardSummary whole{cfg};
  ShardSummary left{cfg};
  ShardSummary right{cfg};
  const std::size_t half = records.size() / 2;
  for (std::size_t i = 0; i < records.size(); ++i) {
    whole.fold(records[i]);
    (i < half ? left : right).fold(records[i]);
  }
  ShardSummary merged = left;
  merged.merge(right);

  // Tallies: counts exact, MOS sums within budget.
  const auto check_tally = [](const SummaryTally& a, const SummaryTally& b) {
    EXPECT_EQ(a.sessions, b.sessions);
    EXPECT_EQ(a.rated, b.rated);
    EXPECT_NEAR(a.observed_mos_sum, b.observed_mos_sum,
                1e-9 * std::max(1.0, std::fabs(b.observed_mos_sum)));
  };
  check_tally(merged.tally(std::nullopt), whole.tally(std::nullopt));
  for (int a = 0; a < netsim::kNumAccessTechnologies; ++a) {
    const auto access = static_cast<netsim::AccessTechnology>(a);
    check_tally(merged.tally(access), whole.tally(access));
  }

  // Rated samples concatenate in ingest order: bit-identical.
  ASSERT_EQ(merged.rated().size(), whole.rated().size());
  for (std::size_t i = 0; i < whole.rated().size(); ++i) {
    EXPECT_EQ(merged.rated()[i].mos, whole.rated()[i].mos);
    EXPECT_EQ(merged.rated()[i].engagement, whole.rated()[i].engagement);
  }

  // Curves: every (axis, engagement, access-or-all) combination.
  for (std::size_t axis = 0; axis < cfg.axes.size(); ++axis) {
    for (int e = 0; e < kNumEngagementMetrics; ++e) {
      const auto eng = static_cast<EngagementMetric>(e);
      std::vector<std::optional<netsim::AccessTechnology>> accesses{
          std::nullopt};
      for (int a = 0; a < netsim::kNumAccessTechnologies; ++a) {
        accesses.push_back(static_cast<netsim::AccessTechnology>(a));
      }
      for (const auto& access : accesses) {
        core::Binner1D from_whole{cfg.axes[axis].lo, cfg.axes[axis].hi,
                                  cfg.axes[axis].bins};
        core::Binner1D from_merged = from_whole;
        whole.add_curve_to(from_whole, axis, eng, access);
        merged.add_curve_to(from_merged, axis, eng, access);
        const auto wb = from_whole.bins();
        const auto mb = from_merged.bins();
        ASSERT_EQ(wb.size(), mb.size());
        for (std::size_t i = 0; i < wb.size(); ++i) {
          EXPECT_EQ(mb[i].count, wb[i].count);
          EXPECT_NEAR(mb[i].mean_y, wb[i].mean_y,
                      1e-9 * std::max(1.0, std::fabs(wb[i].mean_y)));
        }
      }
    }
  }

  // Grids.
  for (int e = 0; e < kNumEngagementMetrics; ++e) {
    core::Grid2D gw{0.0, cfg.grid.latency_hi_ms, cfg.grid.lat_bins,
                    0.0, cfg.grid.loss_hi_pct, cfg.grid.loss_bins};
    core::Grid2D gm = gw;
    ASSERT_TRUE(whole.add_grid_to(gw, static_cast<EngagementMetric>(e),
                                  cfg.grid));
    ASSERT_TRUE(merged.add_grid_to(gm, static_cast<EngagementMetric>(e),
                                   cfg.grid));
    for (std::size_t x = 0; x < gw.x_bins(); ++x) {
      for (std::size_t y = 0; y < gw.y_bins(); ++y) {
        EXPECT_EQ(gm.cell_count(x, y), gw.cell_count(x, y));
      }
    }
  }

  // Layout guards.
  EXPECT_FALSE(whole.axis_for(netsim::Metric::kLatency, 0.0, 300.0, 6));
  EXPECT_TRUE(whole.axis_for(netsim::Metric::kLatency, 0.0, 300.0, 10));
  SummaryConfig other_cfg;
  other_cfg.axes = {{netsim::Metric::kLatency, 0.0, 100.0, 4}};
  ShardSummary mismatched{other_cfg};
  EXPECT_THROW(mismatched.merge(whole), std::invalid_argument);
  ShardSummary disabled;
  EXPECT_FALSE(disabled.enabled());
  disabled.fold(records.front());  // no-op, must not crash
  EXPECT_EQ(disabled.sessions(), 0u);
}

TEST(ShardSummaries, ConfigureAfterIngestThrows) {
  // The engine-level contract: summaries cannot be bolted onto a corpus
  // they did not see from record zero.
  const auto calls = boundary_calls(1, 1);
  CorrelationEngine engine{ShardingPolicy::kMonthPlatform};
  engine.ingest(calls);
  EXPECT_THROW(engine.configure_summaries(SummaryConfig{}),
               std::logic_error);
}

// ---- Staleness under a live producer (the TSan workload) --------------

TEST(InsightCache, NoStaleInsightAfterVersionBump) {
  // A producer ingests fixed batches while readers hammer one cached
  // query. The cache keys on (fingerprint, version), so every insight a
  // reader observes must exactly describe some flushed prefix: sessions
  // must equal the prefix-sum at the version stamped into the insight.
  const auto calls = boundary_calls(8080, 16);
  constexpr std::size_t kBatch = 10;
  std::vector<std::size_t> prefix{0};  // prefix[v] = sessions at version v
  std::size_t participants = 0;
  for (std::size_t i = 0; i < calls.size(); ++i) {
    participants += calls[i].participants.size();
    if ((i + 1) % kBatch == 0 || i + 1 == calls.size()) {
      prefix.push_back(participants);
    }
  }

  QueryService svc{service_config(4, 16, true)};
  Query q = battery().front();

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  const auto reader = [&] {
    std::uint64_t last_version = 0;
    while (!done.load(std::memory_order_acquire)) {
      const Insight insight = svc.run(q);
      if (insight.corpus_version < last_version) ++violations;
      if (insight.corpus_version >= prefix.size() ||
          insight.sessions != prefix[insight.corpus_version]) {
        ++violations;
      }
      last_version = insight.corpus_version;
      // Yield between queries so the producer's exclusive lock
      // acquisitions are not starved on 1-core sanitizer hosts.
      std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }
  };
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) readers.emplace_back(reader);
  const std::span<const confsim::CallRecord> span{calls};
  for (std::size_t i = 0; i < span.size(); i += kBatch) {
    svc.ingest_calls(span.subspan(i, std::min(kBatch, span.size() - i)));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);

  // Post-race: the final cached answer matches a fresh (equally
  // untrained) service that ingested the same records in one shot.
  QueryService batch{service_config(4, 0, true)};
  batch.ingest_calls(calls);
  const Insight cached_final = svc.run(q);
  expect_identical(cached_final, batch.run(q));
  EXPECT_EQ(cached_final.sessions, prefix.back());
  // And re-running at the settled version is deterministically a hit.
  const std::uint64_t hits_before = svc.stats().insight_cache.hits;
  expect_identical(svc.run(q), cached_final);
  EXPECT_EQ(svc.stats().insight_cache.hits, hits_before + 1);
}

}  // namespace
}  // namespace usaas::service
