// Integration: the CorrelationEngine must RECOVER the planted behaviour
// shapes (Fig 1-4) from noisy, session-aggregated data — the engine never
// sees the behaviour parameters.
#include "usaas/correlation_engine.h"

#include <gtest/gtest.h>

#include "confsim/dataset.h"

namespace usaas::service {
namespace {

using confsim::CallDatasetGenerator;
using confsim::DatasetConfig;

CorrelationEngine engine_for_sweep(netsim::Metric metric, double lo, double hi,
                                   std::size_t calls = 6000) {
  DatasetConfig cfg;
  cfg.seed = 2022;
  cfg.num_calls = calls;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  cfg.sweep_metric = metric;
  cfg.sweep_lo = lo;
  cfg.sweep_hi = hi;
  CorrelationEngine engine;
  CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });
  return engine;
}

SweepSpec spec_for(netsim::Metric metric, double lo, double hi,
                   std::size_t bins = 10) {
  SweepSpec s;
  s.metric = metric;
  s.lo = lo;
  s.hi = hi;
  s.bins = bins;
  return s;
}

double first_bin(const EngagementCurve& c) {
  return c.points.front().engagement;
}

// ---- Fig 1 (left): latency ----

class LatencyRecovery : public ::testing::Test {
 protected:
  static const CorrelationEngine& engine() {
    static const CorrelationEngine instance =
        engine_for_sweep(netsim::Metric::kLatency, 0.0, 300.0);
    return instance;
  }
};

TEST_F(LatencyRecovery, PresenceFallsRoughly20Percent) {
  const auto curve = engine().engagement_curve(
      spec_for(netsim::Metric::kLatency, 0.0, 300.0),
      EngagementMetric::kPresence);
  ASSERT_GE(curve.points.size(), 8u);
  const double drop = curve.relative_drop_percent();
  EXPECT_GT(drop, 12.0);
  EXPECT_LT(drop, 32.0);
}

TEST_F(LatencyRecovery, MicFallsMoreThan25Percent) {
  const auto curve = engine().engagement_curve(
      spec_for(netsim::Metric::kLatency, 0.0, 300.0),
      EngagementMetric::kMicOn);
  EXPECT_GT(curve.relative_drop_percent(), 22.0);
}

TEST_F(LatencyRecovery, MicPlateausAfter150ms) {
  const auto curve = engine().engagement_curve(
      spec_for(netsim::Metric::kLatency, 0.0, 300.0, 10),
      EngagementMetric::kMicOn);
  ASSERT_EQ(curve.points.size(), 10u);
  // Slope over the first half vs the second half of the range.
  const double early =
      curve.points[0].engagement - curve.points[4].engagement;
  const double late =
      curve.points[5].engagement - curve.points[9].engagement;
  EXPECT_GT(early, 2.5 * late);
}

TEST_F(LatencyRecovery, CurvesAreWellPopulated) {
  const auto curve = engine().engagement_curve(
      spec_for(netsim::Metric::kLatency, 0.0, 300.0),
      EngagementMetric::kPresence);
  for (const auto& p : curve.points) {
    EXPECT_GT(p.sessions, 200u);
  }
}

// ---- Fig 1 (middle-left): loss ----

class LossRecovery : public ::testing::Test {
 protected:
  static const CorrelationEngine& engine() {
    static const CorrelationEngine instance =
        engine_for_sweep(netsim::Metric::kLoss, 0.0, 3.5);
    return instance;
  }
};

TEST_F(LossRecovery, EngagementMovesLessThan10PercentUpTo2) {
  for (const auto metric :
       {EngagementMetric::kPresence, EngagementMetric::kCamOn,
        EngagementMetric::kMicOn}) {
    const auto curve = engine().engagement_curve(
        spec_for(netsim::Metric::kLoss, 0.0, 2.0), metric);
    EXPECT_LT(curve.relative_drop_percent(), 10.0)
        << to_string(metric);
  }
}

TEST_F(LossRecovery, DropOffJumpsAbove3Percent) {
  const auto curve = engine().dropoff_curve(
      spec_for(netsim::Metric::kLoss, 0.0, 3.5, 7));
  ASSERT_GE(curve.size(), 6u);
  const double at_low = curve.front().engagement;   // drop rate, fraction
  const double at_high = curve.back().engagement;
  EXPECT_GT(at_high, at_low + 0.10);
}

// ---- Fig 1 (middle-right): jitter ----

TEST(JitterRecovery, CamOnDropsMoreThan15PercentBy10ms) {
  const auto engine = engine_for_sweep(netsim::Metric::kJitter, 0.0, 12.0);
  const auto curve = engine.engagement_curve(
      spec_for(netsim::Metric::kJitter, 0.0, 12.0, 6),
      EngagementMetric::kCamOn);
  ASSERT_GE(curve.points.size(), 5u);
  // Compare the first bin to the bin containing 10 ms.
  const double at0 = first_bin(curve);
  double at10 = at0;
  for (const auto& p : curve.points) {
    if (p.metric_value >= 9.0 && p.metric_value <= 11.0) at10 = p.engagement;
  }
  EXPECT_LT(at10, at0 * 0.85);
}

// ---- Fig 1 (right): bandwidth ----

TEST(BandwidthRecovery, FlatAbove1MbpsAndMicInsensitive) {
  // Bandwidth is a "more is better" metric: the damaged end of the curve
  // is the FIRST bin, so drops are measured front-vs-max here.
  const auto engine =
      engine_for_sweep(netsim::Metric::kBandwidth, 0.25, 4.0);
  auto front_drop_pct = [](const EngagementCurve& c) {
    double best = 0.0;
    for (const auto& p : c.points) best = std::max(best, p.engagement);
    return 100.0 * (best - c.points.front().engagement) / best;
  };
  const auto presence = engine.engagement_curve(
      spec_for(netsim::Metric::kBandwidth, 1.0, 4.0, 6),
      EngagementMetric::kPresence);
  // Within the 1-4 Mbps band everything is within ~6% of the best.
  EXPECT_LT(front_drop_pct(presence), 8.0);
  const auto mic = engine.engagement_curve(
      spec_for(netsim::Metric::kBandwidth, 0.25, 4.0, 8),
      EngagementMetric::kMicOn);
  EXPECT_LT(front_drop_pct(mic), 5.0);
  // Below 1 Mbps the camera suffers visibly.
  const auto cam = engine.engagement_curve(
      spec_for(netsim::Metric::kBandwidth, 0.25, 4.0, 8),
      EngagementMetric::kCamOn);
  EXPECT_GT(front_drop_pct(cam), 12.0);
}

// ---- Fig 2: compounding ----

TEST(CompoundingRecovery, WorstCellRoughlyHalvesPresence) {
  DatasetConfig cfg;
  cfg.seed = 7;
  cfg.num_calls = 9000;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  // Sweep latency while letting loss take its control+tail values is not
  // enough for a 2-D grid; instead sweep latency and widen the loss
  // control window to cover the full loss range.
  cfg.sweep_metric = netsim::Metric::kLatency;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 320.0;
  cfg.control_windows.loss_hi_pct = 3.4;
  CorrelationEngine engine;
  CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });

  const auto grid =
      engine.compounding_grid(EngagementMetric::kPresence, 320.0, 4, 3.4, 4);
  const auto best = grid.max_cell_mean();
  const auto worst = grid.min_cell_mean();
  ASSERT_TRUE(best && worst);
  const double dip = *worst / *best;
  EXPECT_LT(dip, 0.62);
  EXPECT_GT(dip, 0.30);
}

// ---- Fig 3: platform ----

TEST(PlatformRecovery, MobileDropsFasterWithLoss) {
  const auto engine = engine_for_sweep(netsim::Metric::kLoss, 0.0, 3.5, 12000);
  auto rel_drop = [&](confsim::Platform platform) {
    const auto curve = engine.engagement_curve(
        spec_for(netsim::Metric::kLoss, 0.0, 3.5, 7),
        EngagementMetric::kPresence,
        [platform](const confsim::ParticipantRecord& r) {
          return r.platform == platform;
        });
    return curve.relative_drop_percent();
  };
  const double android = rel_drop(confsim::Platform::kAndroid);
  const double windows = rel_drop(confsim::Platform::kWindowsPc);
  const double mac = rel_drop(confsim::Platform::kMacPc);
  EXPECT_GT(android, windows + 3.0);
  EXPECT_GT(windows, mac - 2.0);  // mac is least sensitive (allow noise)
}

// ---- Fig 4: engagement vs MOS ----

TEST(MosRecovery, EngagementCorrelatesWithMosAndPresenceStrongest) {
  // Population sampling (realistic joint conditions), large corpus so the
  // ~0.5% MOS sampling still yields enough rated sessions.
  DatasetConfig cfg;
  cfg.seed = 99;
  cfg.num_calls = 20000;
  cfg.sampling = confsim::ConditionSampling::kPopulation;
  CorrelationEngine engine;
  CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });

  const auto presence =
      engine.mos_correlation(EngagementMetric::kPresence);
  const auto cam = engine.mos_correlation(EngagementMetric::kCamOn);
  const auto mic = engine.mos_correlation(EngagementMetric::kMicOn);
  ASSERT_TRUE(presence && cam && mic);
  EXPECT_GT(presence->rated_sessions, 100u);
  // All engagement metrics correlate positively with MOS...
  EXPECT_GT(presence->spearman, 0.1);
  EXPECT_GT(cam->spearman, 0.02);
  EXPECT_GT(mic->spearman, 0.02);
  // ...and Presence shows the strongest correlation (Fig 4).
  EXPECT_GT(presence->spearman, cam->spearman);
  EXPECT_GT(presence->spearman, mic->spearman);
  // The decile curve rises: better engagement, better MOS.
  ASSERT_GE(presence->decile_curve.size(), 8u);
  EXPECT_GT(presence->decile_curve.back().engagement,
            presence->decile_curve.front().engagement);
}

TEST(MosRecovery, TooFewSamplesReturnsNullopt) {
  DatasetConfig cfg;
  cfg.seed = 1;
  cfg.num_calls = 50;  // ~250 sessions -> ~1 rated
  CorrelationEngine engine;
  CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });
  EXPECT_FALSE(
      engine.mos_correlation(EngagementMetric::kPresence, 50).has_value());
}

TEST(EngagementCurve, NormalizationMakesMax100) {
  EngagementCurve curve;
  curve.points = {{0.0, 80.0, 10}, {1.0, 40.0, 10}};
  const auto norm = curve.normalized();
  EXPECT_DOUBLE_EQ(norm.points[0].engagement, 100.0);
  EXPECT_DOUBLE_EQ(norm.points[1].engagement, 50.0);
  EXPECT_NEAR(norm.relative_drop_percent(), 50.0, 1e-9);
}

}  // namespace
}  // namespace usaas::service
