#include "core/peaks.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace usaas::core {
namespace {

DailySeries flat_series_with_spikes() {
  DailySeries s{Date(2022, 1, 1), Date(2022, 12, 31)};
  Rng rng{3};
  for (const auto& [date, _] : s.entries()) {
    s.set(date, 2.0 + rng.uniform(0.0, 2.0));
  }
  s.set(Date(2022, 3, 15), 80.0);
  s.set(Date(2022, 7, 4), 50.0);
  s.set(Date(2022, 11, 20), 30.0);
  return s;
}

TEST(Mad, KnownValue) {
  // median = 3, abs deviations {2,1,0,1,2} -> median 1 -> 1.4826.
  EXPECT_NEAR(mad({1.0, 2.0, 3.0, 4.0, 5.0}), 1.4826, 1e-9);
  EXPECT_THROW((void)mad({}), std::invalid_argument);
}

TEST(RobustPeaks, FindsPlantedSpikes) {
  const auto s = flat_series_with_spikes();
  const auto peaks = detect_peaks_robust(s, {});
  ASSERT_GE(peaks.size(), 3u);
  bool found_march = false;
  bool found_july = false;
  for (const auto& p : peaks) {
    if (p.date == Date(2022, 3, 15)) found_march = true;
    if (p.date == Date(2022, 7, 4)) found_july = true;
    EXPECT_GE(p.score, 3.0);
  }
  EXPECT_TRUE(found_march);
  EXPECT_TRUE(found_july);
}

TEST(RobustPeaks, QuietSeriesHasNoPeaks) {
  DailySeries s{Date(2022, 1, 1), Date(2022, 3, 1)};
  for (const auto& [date, _] : s.entries()) s.set(date, 1.0);
  EXPECT_TRUE(detect_peaks_robust(s, {}).empty());
}

TEST(RobustPeaks, MinValueFiltersSmallWiggles) {
  DailySeries s{Date(2022, 1, 1), Date(2022, 3, 1)};
  // On a flat zero baseline (MAD falls back to 1), z equals the value.
  s.set(Date(2022, 2, 1), 3.5);
  RobustPeakParams p;
  p.min_value = 4.0;  // above the spike: filtered despite z >= threshold
  EXPECT_TRUE(detect_peaks_robust(s, p).empty());
  p.min_value = 1.0;
  EXPECT_EQ(detect_peaks_robust(s, p).size(), 1u);
}

TEST(RobustPeaks, RejectsEvenWindow) {
  const auto s = flat_series_with_spikes();
  RobustPeakParams p;
  p.window = 30;
  EXPECT_THROW(detect_peaks_robust(s, p), std::invalid_argument);
}

TEST(TopKPeaks, OrderedByHeight) {
  const auto s = flat_series_with_spikes();
  const auto peaks = top_k_peaks(s, 3, 14);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].date, Date(2022, 3, 15));
  EXPECT_EQ(peaks[1].date, Date(2022, 7, 4));
  EXPECT_EQ(peaks[2].date, Date(2022, 11, 20));
  EXPECT_GT(peaks[0].value, peaks[1].value);
}

TEST(TopKPeaks, SeparationSuppressesNeighbours) {
  DailySeries s{Date(2022, 1, 1), Date(2022, 2, 1)};
  s.set(Date(2022, 1, 10), 100.0);
  s.set(Date(2022, 1, 12), 90.0);   // within 14 days of the first
  s.set(Date(2022, 1, 30), 50.0);
  const auto peaks = top_k_peaks(s, 3, 14);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].date, Date(2022, 1, 10));
  EXPECT_EQ(peaks[1].date, Date(2022, 1, 30));
}

TEST(TopKPeaks, PlateauPicksLeftEdge) {
  DailySeries s{Date(2022, 1, 1), Date(2022, 1, 10)};
  s.set(Date(2022, 1, 4), 10.0);
  s.set(Date(2022, 1, 5), 10.0);
  const auto peaks = top_k_peaks(s, 1, 1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].date, Date(2022, 1, 4));
}

TEST(TopKPeaks, KLargerThanCandidates) {
  DailySeries s{Date(2022, 1, 1), Date(2022, 1, 5)};
  s.set(Date(2022, 1, 3), 5.0);
  EXPECT_EQ(top_k_peaks(s, 10, 1).size(), 1u);
}

}  // namespace
}  // namespace usaas::core
