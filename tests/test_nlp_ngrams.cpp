#include <gtest/gtest.h>

#include "nlp/keywords.h"
#include "nlp/ngrams.h"
#include "nlp/wordcloud.h"

namespace usaas::nlp {
namespace {

TEST(NgramCounter, UnigramCounts) {
  NgramCounter counter{1};
  counter.add_document("outage outage today");
  counter.add_document("another outage");
  EXPECT_EQ(counter.count_of("outage"), 3u);
  EXPECT_EQ(counter.count_of("today"), 1u);
  EXPECT_EQ(counter.count_of("absent"), 0u);
  EXPECT_EQ(counter.total_documents(), 2u);
}

TEST(NgramCounter, BigramsSkipStopWords) {
  NgramCounter counter{2};
  counter.add_document("roaming is enabled now");  // "is" removed first
  EXPECT_EQ(counter.count_of("roaming enabled"), 1u);
  EXPECT_EQ(counter.count_of("is enabled"), 0u);
}

TEST(NgramCounter, WeightsDriveRanking) {
  NgramCounter counter{1};
  counter.add_document("alpha", 1.0);
  counter.add_document("beta", 100.0);
  const auto top = counter.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].ngram, "beta");
  EXPECT_DOUBLE_EQ(top[0].weight, 100.0);
}

TEST(NgramCounter, TopTiesDeterministic) {
  NgramCounter counter{1};
  counter.add_document("zebra apple");
  const auto top = counter.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].ngram, "apple");  // lexicographic tiebreak
}

TEST(NgramCounter, ShortDocumentsHandled) {
  NgramCounter counter{3};
  counter.add_document("only two");  // fewer content words than n
  EXPECT_EQ(counter.distinct(), 0u);
  EXPECT_EQ(counter.total_documents(), 1u);
}

TEST(NgramCounter, RejectsZeroN) {
  EXPECT_THROW(NgramCounter{0}, std::invalid_argument);
}

TEST(WordCloud, TopTermsAndRelativeSizes) {
  const std::vector<std::string> docs{
      "outage outage outage", "outage down", "down today", "sunny today"};
  const auto cloud = WordCloud::build(docs, 10);
  ASSERT_FALSE(cloud.empty());
  EXPECT_EQ(cloud.words()[0].word, "outage");
  EXPECT_DOUBLE_EQ(cloud.words()[0].relative_size, 1.0);
  const auto top2 = cloud.top_terms(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], "outage");
  EXPECT_EQ(top2[1], "down");
}

TEST(WordCloud, RankOf) {
  const std::vector<std::string> docs{"first first second"};
  const auto cloud = WordCloud::build(docs, 5);
  EXPECT_EQ(cloud.rank_of("first"), 0u);
  EXPECT_EQ(cloud.rank_of("second"), 1u);
  EXPECT_FALSE(cloud.rank_of("third").has_value());
}

TEST(WordCloud, MaxWordsRespected) {
  std::vector<std::string> docs;
  docs.push_back("a1 b2 c3 d4 e5 f6 g7 h8");
  const auto cloud = WordCloud::build(docs, 3);
  EXPECT_EQ(cloud.words().size(), 3u);
}

TEST(WordCloud, RenderTextContainsWords) {
  const std::vector<std::string> docs{"outage outage today"};
  const auto rendered = WordCloud::build(docs, 5).render_text();
  EXPECT_NE(rendered.find("outage"), std::string::npos);
  EXPECT_NE(rendered.find('#'), std::string::npos);
}

TEST(WordCloud, EmptyDocuments) {
  const std::vector<std::string> docs;
  const auto cloud = WordCloud::build(docs, 5);
  EXPECT_TRUE(cloud.empty());
  EXPECT_TRUE(cloud.top_terms(3).empty());
}

TEST(KeywordDictionary, MatchesUnigramsAndBigrams) {
  const auto& dict = KeywordDictionary::outage_dictionary();
  EXPECT_TRUE(dict.matches("total outage here"));
  EXPECT_TRUE(dict.matches("I have NO INTERNET right now"));
  EXPECT_FALSE(dict.matches("lovely sunset photo"));
}

TEST(KeywordDictionary, CountsOccurrences) {
  const auto& dict = KeywordDictionary::outage_dictionary();
  EXPECT_EQ(dict.count_occurrences("outage outage down"), 3u);
  EXPECT_EQ(dict.count_occurrences("no internet and no connection"), 2u);
  EXPECT_EQ(dict.count_occurrences("all good"), 0u);
}

TEST(KeywordDictionary, MatchedTermsDeduplicated) {
  const auto& dict = KeywordDictionary::outage_dictionary();
  const auto terms = dict.matched_terms("outage then another outage, down");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "outage");
  EXPECT_EQ(terms[1], "down");
}

TEST(KeywordDictionary, CustomDictionary) {
  const KeywordDictionary dict{"demo", {"Foo", "bar baz"}};
  EXPECT_EQ(dict.name(), "demo");
  EXPECT_TRUE(dict.matches("FOO everywhere"));
  EXPECT_TRUE(dict.matches("a bar baz b"));
  EXPECT_FALSE(dict.matches("bar qux baz"));  // bigram must be adjacent
}

}  // namespace
}  // namespace usaas::nlp
