#include "core/regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace usaas::core {
namespace {

TEST(SolveLinearSystem, KnownSolution) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
  const auto x = solve_linear_system({2.0, 1.0, 1.0, -1.0}, {5.0, 1.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_linear_system({0.0, 1.0, 1.0, 0.0}, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW(solve_linear_system({1.0, 2.0, 2.0, 4.0}, {1.0, 2.0}),
               std::runtime_error);
  EXPECT_THROW(solve_linear_system({1.0, 2.0, 3.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(SimpleFit, ExactLine) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const auto f = fit_simple(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_NEAR(f.predict(10.0), 21.0, 1e-12);
}

TEST(SimpleFit, ConstantXGivesFlatFit) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 5.0, 9.0};
  const auto f = fit_simple(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 5.0);
}

TEST(LinearModel, RecoversPlantedCoefficients) {
  Rng rng{77};
  const std::vector<double> truth{1.5, -2.0, 0.5};
  const double intercept = 4.0;
  std::vector<double> rows;
  std::vector<double> ys;
  for (int i = 0; i < 2000; ++i) {
    double y = intercept;
    for (const double c : truth) {
      const double x = rng.normal(0.0, 1.0);
      rows.push_back(x);
      y += c * x;
    }
    ys.push_back(y + rng.normal(0.0, 0.1));
  }
  const auto m = LinearModel::fit(rows, truth.size(), ys, 0.0);
  EXPECT_NEAR(m.intercept(), intercept, 0.02);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(m.coefficients()[i], truth[i], 0.02);
  }
}

TEST(LinearModel, RidgeShrinksCoefficients) {
  Rng rng{78};
  std::vector<double> rows;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.normal(0.0, 1.0);
    rows.push_back(x);
    ys.push_back(3.0 * x + rng.normal(0.0, 0.5));
  }
  const auto plain = LinearModel::fit(rows, 1, ys, 0.0);
  const auto ridged = LinearModel::fit(rows, 1, ys, 1000.0);
  EXPECT_LT(std::fabs(ridged.coefficients()[0]),
            std::fabs(plain.coefficients()[0]));
}

TEST(LinearModel, CollinearNeedsRidge) {
  // Two identical columns: singular without ridge, solvable with it.
  std::vector<double> rows;
  std::vector<double> ys;
  Rng rng{79};
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(0.0, 1.0);
    rows.push_back(x);
    rows.push_back(x);
    ys.push_back(2.0 * x);
  }
  EXPECT_THROW(LinearModel::fit(rows, 2, ys, 0.0), std::runtime_error);
  EXPECT_NO_THROW(LinearModel::fit(rows, 2, ys, 0.1));
}

TEST(LinearModel, ShapeValidation) {
  const std::vector<double> two{1.0, 2.0};
  const std::vector<double> three{1.0, 2.0, 3.0};
  const std::vector<double> one{1.0};
  EXPECT_THROW(LinearModel::fit(two, 0, one, 0.0), std::invalid_argument);
  EXPECT_THROW(LinearModel::fit(three, 2, one, 0.0), std::invalid_argument);
  EXPECT_THROW(LinearModel::fit(one, 1, one, -1.0), std::invalid_argument);
}

TEST(LinearModel, PredictValidatesFeatureCount) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  const auto m = LinearModel::fit(xs, 1, ys, 0.0);
  EXPECT_THROW((void)m.predict(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(RegressionMetrics, PerfectAndMeanPredictions) {
  const std::vector<double> actual{1.0, 2.0, 3.0, 4.0};
  const auto perfect = evaluate_predictions(actual, actual);
  EXPECT_DOUBLE_EQ(perfect.mae, 0.0);
  EXPECT_DOUBLE_EQ(perfect.rmse, 0.0);
  EXPECT_DOUBLE_EQ(perfect.r2, 1.0);

  const std::vector<double> mean_pred(4, 2.5);
  const auto mean_eval = evaluate_predictions(mean_pred, actual);
  EXPECT_NEAR(mean_eval.r2, 0.0, 1e-12);
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)evaluate_predictions(one, actual), std::invalid_argument);
}

}  // namespace
}  // namespace usaas::core
