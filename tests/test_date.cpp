#include "core/date.h"

#include <gtest/gtest.h>

namespace usaas::core {
namespace {

TEST(Date, EpochIsZero) {
  EXPECT_EQ(Date(1970, 1, 1).days_since_epoch(), 0);
}

TEST(Date, KnownDayCounts) {
  EXPECT_EQ(Date(1970, 1, 2).days_since_epoch(), 1);
  EXPECT_EQ(Date(2000, 1, 1).days_since_epoch(), 10957);
  EXPECT_EQ(Date(2022, 4, 22).days_since_epoch(), 19104);
}

TEST(Date, RejectsInvalidDates) {
  EXPECT_THROW(Date(2022, 2, 30), std::invalid_argument);
  EXPECT_THROW(Date(2022, 13, 1), std::invalid_argument);
  EXPECT_THROW(Date(2022, 0, 1), std::invalid_argument);
  EXPECT_THROW(Date(2022, 4, 31), std::invalid_argument);
  EXPECT_NO_THROW(Date(2020, 2, 29));   // leap year
  EXPECT_THROW(Date(2021, 2, 29), std::invalid_argument);
}

TEST(Date, LeapYearRules) {
  EXPECT_TRUE(Date::is_leap_year(2020));
  EXPECT_FALSE(Date::is_leap_year(2021));
  EXPECT_TRUE(Date::is_leap_year(2000));   // divisible by 400
  EXPECT_FALSE(Date::is_leap_year(1900));  // divisible by 100 only
}

TEST(Date, DaysInMonth) {
  EXPECT_EQ(Date::days_in_month(2022, 1), 31);
  EXPECT_EQ(Date::days_in_month(2022, 2), 28);
  EXPECT_EQ(Date::days_in_month(2020, 2), 29);
  EXPECT_EQ(Date::days_in_month(2022, 4), 30);
}

TEST(Date, KnownWeekdays) {
  EXPECT_EQ(Date(1970, 1, 1).weekday(), Weekday::kThursday);
  EXPECT_EQ(Date(2022, 1, 7).weekday(), Weekday::kFriday);
  EXPECT_EQ(Date(2021, 2, 9).weekday(), Weekday::kTuesday);
  EXPECT_EQ(Date(2023, 11, 28).weekday(), Weekday::kTuesday);  // HotNets '23
}

TEST(Date, WeekdayClassification) {
  EXPECT_TRUE(Date(2022, 1, 7).is_weekday());    // Friday
  EXPECT_FALSE(Date(2022, 1, 8).is_weekday());   // Saturday
  EXPECT_FALSE(Date(2022, 1, 9).is_weekday());   // Sunday
  EXPECT_TRUE(Date(2022, 1, 10).is_weekday());   // Monday
}

TEST(Date, PlusDaysCrossesMonthAndYear) {
  EXPECT_EQ(Date(2021, 12, 31).plus_days(1), Date(2022, 1, 1));
  EXPECT_EQ(Date(2022, 1, 1).plus_days(-1), Date(2021, 12, 31));
  EXPECT_EQ(Date(2020, 2, 28).plus_days(1), Date(2020, 2, 29));
}

TEST(Date, PlusMonthsClampsDay) {
  EXPECT_EQ(Date(2022, 1, 31).plus_months(1), Date(2022, 2, 28));
  EXPECT_EQ(Date(2020, 1, 31).plus_months(1), Date(2020, 2, 29));
  EXPECT_EQ(Date(2021, 11, 15).plus_months(2), Date(2022, 1, 15));
  EXPECT_EQ(Date(2022, 3, 15).plus_months(-3), Date(2021, 12, 15));
}

TEST(Date, MonthHelpers) {
  const Date d{2022, 4, 22};
  EXPECT_EQ(d.month_start(), Date(2022, 4, 1));
  EXPECT_EQ(d.days_in_month(), 30);
  EXPECT_EQ(d.month_string(), "2022-04");
  EXPECT_EQ(d.to_string(), "2022-04-22");
}

TEST(Date, DaysUntilSignedness) {
  EXPECT_EQ(Date(2021, 1, 1).days_until(Date(2021, 1, 31)), 30);
  EXPECT_EQ(Date(2021, 1, 31).days_until(Date(2021, 1, 1)), -30);
  EXPECT_EQ(Date(2021, 1, 1).days_until(Date(2022, 1, 1)), 365);
}

TEST(Date, MonthIndexFrom) {
  const Date ref{2021, 1, 1};
  EXPECT_EQ(Date(2021, 1, 15).month_index_from(ref), 0);
  EXPECT_EQ(Date(2021, 12, 1).month_index_from(ref), 11);
  EXPECT_EQ(Date(2022, 12, 31).month_index_from(ref), 23);
}

TEST(Date, MonthKeyIsMonthsSinceYearZero) {
  EXPECT_EQ(month_key(Date(2022, 1, 5)), 2022 * 12);
  EXPECT_EQ(month_key(Date(2022, 12, 31)), 2022 * 12 + 11);
  EXPECT_EQ(month_key(Date(1970, 1, 1)), 1970 * 12);
}

TEST(Date, MonthKeyBoundaries) {
  // Consecutive days across a month boundary differ by exactly 1; across a
  // year boundary too (Dec -> Jan). Same month, different day: equal.
  EXPECT_EQ(month_key(Date(2022, 2, 1)) - month_key(Date(2022, 1, 31)), 1);
  EXPECT_EQ(month_key(Date(2022, 1, 1)) - month_key(Date(2021, 12, 31)), 1);
  EXPECT_EQ(month_key(Date(2022, 7, 1)), month_key(Date(2022, 7, 31)));
  // Strictly monotone in (year, month): a full sweep never repeats or
  // reorders — the property shard pruning relies on.
  int prev = month_key(Date(2020, 12, 15));
  for (int year = 2021; year <= 2023; ++year) {
    for (int month = 1; month <= 12; ++month) {
      const int mk = month_key(Date(year, month, 1));
      EXPECT_EQ(mk, prev + 1);
      prev = mk;
    }
  }
}

TEST(Date, ForEachDayCoversInclusiveRange) {
  int count = 0;
  Date last_seen;
  for_each_day(Date(2022, 2, 26), Date(2022, 3, 2), [&](const Date& d) {
    ++count;
    last_seen = d;
  });
  EXPECT_EQ(count, 5);
  EXPECT_EQ(last_seen, Date(2022, 3, 2));
}

TEST(Date, BusinessHoursWindow) {
  EXPECT_FALSE(in_business_hours({8, 59}));
  EXPECT_TRUE(in_business_hours({9, 0}));
  EXPECT_TRUE(in_business_hours({19, 59}));
  EXPECT_FALSE(in_business_hours({20, 0}));
  EXPECT_FALSE(in_business_hours({23, 30}));
}

// Property: round trip through days_since_epoch is the identity across a
// wide sweep of dates, including month and leap boundaries.
class DateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTrip, EpochRoundTripIsIdentity) {
  const std::int64_t days = GetParam();
  const Date d = Date::from_days_since_epoch(days);
  EXPECT_EQ(d.days_since_epoch(), days);
  // plus_days(1) is exactly one day after.
  EXPECT_EQ(d.plus_days(1).days_since_epoch(), days + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DateRoundTrip,
                         ::testing::Range(-20000, 40000, 1234));

// Property: weekday advances cyclically.
TEST(Date, WeekdayCycles) {
  Date d{2021, 1, 1};
  int prev = static_cast<int>(d.weekday());
  for (int i = 0; i < 400; ++i) {
    d = d.plus_days(1);
    const int cur = static_cast<int>(d.weekday());
    EXPECT_EQ(cur, (prev + 1) % 7);
    prev = cur;
  }
}

}  // namespace
}  // namespace usaas::core
