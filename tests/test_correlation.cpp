#include "core/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"

namespace usaas::core {
namespace {

TEST(Correlation, PerfectLinearRelationships) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.0 * x + 1.0);
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg;
  for (const double x : xs) neg.push_back(-3.0 * x);
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Correlation, ConstantSignalIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Correlation, ShapeErrors) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW((void)pearson(a, b), std::invalid_argument);
  EXPECT_THROW((void)spearman(b, b), std::invalid_argument);  // size < 2
}

TEST(Correlation, SpearmanCapturesMonotoneNonlinear) {
  // y = x^3 is monotone but nonlinear: spearman = 1 exactly.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = -10; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(std::pow(i, 3));
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Correlation, KendallKnownSmallCase) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{1.0, 3.0, 2.0, 4.0};
  // 5 concordant, 1 discordant of 6 pairs -> tau = 4/6.
  EXPECT_NEAR(kendall_tau(xs, ys), 4.0 / 6.0, 1e-12);
}

TEST(Correlation, KendallPerfectAndReversed) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> rev{5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(kendall_tau(xs, xs), 1.0, 1e-12);
  EXPECT_NEAR(kendall_tau(xs, rev), -1.0, 1e-12);
}

TEST(Correlation, CovarianceMatchesDefinition) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  // cov = E[xy] - E[x]E[y] = (2 + 8 + 18)/3 - 2*4 = 28/3 - 8 = 4/3.
  EXPECT_NEAR(covariance(xs, ys), 4.0 / 3.0, 1e-12);
}

TEST(Correlation, IndependentSignalsNearZero) {
  Rng rng{55};
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.normal(0.0, 1.0));
    ys.push_back(rng.normal(0.0, 1.0));
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
  EXPECT_NEAR(spearman(xs, ys), 0.0, 0.03);
}

// Property: all three correlations are invariant under positive affine
// transforms of either variable (Spearman/Kendall under any monotone).
class CorrelationInvariance : public ::testing::TestWithParam<int> {};

TEST_P(CorrelationInvariance, AffineInvariance) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 31 + 5};
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.normal(0.0, 1.0);
    xs.push_back(x);
    ys.push_back(0.7 * x + rng.normal(0.0, 0.5));
  }
  std::vector<double> xs2;
  for (const double x : xs) xs2.push_back(3.0 * x + 11.0);
  EXPECT_NEAR(pearson(xs, ys), pearson(xs2, ys), 1e-9);
  EXPECT_NEAR(spearman(xs, ys), spearman(xs2, ys), 1e-9);
  EXPECT_NEAR(kendall_tau(xs, ys), kendall_tau(xs2, ys), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelationInvariance, ::testing::Range(0, 8));

}  // namespace
}  // namespace usaas::core
