// Integration: the §4 pipelines (Fig 5, Fig 6, Fig 7, roaming) over the
// full two-year simulated r/Starlink corpus. The corpus is built once and
// shared across tests.
#include <gtest/gtest.h>

#include "social/subreddit.h"
#include "usaas/early_detector.h"
#include "usaas/fulcrum.h"
#include "usaas/outage_detector.h"
#include "usaas/peak_annotator.h"

namespace usaas::service {
namespace {

using core::Date;

struct Corpus {
  std::vector<social::Post> posts;
  leo::EventTimeline events{leo::LaunchSchedule{}};
  leo::OutageModel outages{Date(2021, 1, 1), Date(2022, 12, 31), 42};
  std::vector<social::DayTruth> truths;
  Date first{2021, 1, 1};
  Date last{2022, 12, 31};
};

const Corpus& corpus() {
  static const Corpus instance = [] {
    Corpus c;
    leo::LaunchSchedule sched;
    social::RedditSim sim{
        social::SubredditConfig{},
        leo::SpeedModel{leo::ConstellationModel{sched},
                        leo::SubscriberModel{}},
        leo::OutageModel{c.first, c.last, 42}, leo::EventTimeline{sched}};
    c.posts = sim.simulate();
    c.truths = sim.day_truths();
    return c;
  }();
  return instance;
}

const nlp::SentimentAnalyzer& analyzer() {
  static const nlp::SentimentAnalyzer instance;
  return instance;
}

// ---- Fig 5(a): sentiment peaks ----

class Fig5 : public ::testing::Test {
 protected:
  static const std::vector<AnnotatedPeak>& peaks() {
    static const std::vector<AnnotatedPeak> instance = [] {
      const PeakAnnotator annotator{analyzer(), corpus().events};
      return annotator.annotate(corpus().posts, corpus().first, corpus().last);
    }();
    return instance;
  }
};

TEST_F(Fig5, TopThreePeaksAreThePaperDates) {
  ASSERT_EQ(peaks().size(), 3u);
  std::vector<Date> dates;
  for (const auto& p : peaks()) dates.push_back(p.date);
  EXPECT_NE(std::find(dates.begin(), dates.end(), Date(2021, 2, 9)),
            dates.end());
  EXPECT_NE(std::find(dates.begin(), dates.end(), Date(2021, 11, 24)),
            dates.end());
  EXPECT_NE(std::find(dates.begin(), dates.end(), Date(2022, 4, 22)),
            dates.end());
}

TEST_F(Fig5, PreorderPeakIsPositiveAndAnnotated) {
  for (const auto& p : peaks()) {
    if (p.date != Date(2021, 2, 9)) continue;
    EXPECT_TRUE(p.positive_dominant);
    ASSERT_TRUE(p.news.has_value());
    EXPECT_NE(p.news->headline.find("preorder"), std::string::npos);
    return;
  }
  FAIL() << "preorder peak missing";
}

TEST_F(Fig5, DelayPeakIsNegativeAndAnnotated) {
  for (const auto& p : peaks()) {
    if (p.date != Date(2021, 11, 24)) continue;
    EXPECT_FALSE(p.positive_dominant);
    ASSERT_TRUE(p.news.has_value());
    EXPECT_NE(p.news->headline.find("delay"), std::string::npos);
    return;
  }
  FAIL() << "delay peak missing";
}

TEST_F(Fig5, Apr22PeakIsNegativeUnannotatedAndThird) {
  ASSERT_EQ(peaks().size(), 3u);
  // Peaks are ordered by height; the Apr 22 one is the third highest.
  EXPECT_EQ(peaks()[2].date, Date(2022, 4, 22));
  EXPECT_FALSE(peaks()[2].positive_dominant);
  // The paper "could not find any relevant news on an outage for this
  // date" — neither can the pipeline.
  EXPECT_FALSE(peaks()[2].news.has_value());
}

// ---- Fig 5(b): the word cloud ----

TEST_F(Fig5, OutageInTop3CloudWordsOfApr22) {
  const auto& apr = peaks()[2];
  const auto rank = apr.cloud.rank_of("outage");
  ASSERT_TRUE(rank.has_value());
  EXPECT_LE(*rank, 2u);  // "the third most common word ... is outage"
}

// ---- Fig 6: outage keywords ----

class Fig6 : public ::testing::Test {
 protected:
  static const OutageDetector& detector() {
    static const OutageDetector instance{
        analyzer(), nlp::KeywordDictionary::outage_dictionary()};
    return instance;
  }
  static const core::DailySeries& series() {
    static const core::DailySeries instance = detector().keyword_series(
        corpus().posts, corpus().first, corpus().last);
    return instance;
  }
};

TEST_F(Fig6, LargestSpikesAreJan7AndAug30) {
  const auto top2 = core::top_k_peaks(series(), 2, 7);
  ASSERT_EQ(top2.size(), 2u);
  std::vector<Date> dates{top2[0].date, top2[1].date};
  EXPECT_NE(std::find(dates.begin(), dates.end(), Date(2022, 1, 7)),
            dates.end());
  EXPECT_NE(std::find(dates.begin(), dates.end(), Date(2022, 8, 30)),
            dates.end());
}

TEST_F(Fig6, NumerousShorterPeaksExist) {
  const auto detections =
      detector().detect(corpus().posts, corpus().first, corpus().last);
  std::size_t majors = 0;
  std::size_t transients = 0;
  for (const auto& d : detections) {
    if (d.major) {
      ++majors;
    } else {
      ++transients;
    }
  }
  EXPECT_GE(majors, 3u);
  EXPECT_GT(transients, 10u);  // "numerous shorter peaks"
}

TEST_F(Fig6, MajorOutagesAllDetected) {
  const auto detections =
      detector().detect(corpus().posts, corpus().first, corpus().last);
  const auto truth = corpus().outages.days_above(0.2);
  const auto quality = OutageDetector::evaluate(detections, truth, 1);
  EXPECT_EQ(quality.recall(), 1.0);
}

TEST_F(Fig6, TransientDetectionsCorrespondToRealOutages) {
  const auto detections =
      detector().detect(corpus().posts, corpus().first, corpus().last);
  // Against the full ground truth (any real outage day), precision is
  // decent: spikes mostly happen when something actually broke.
  const auto truth = corpus().outages.days_above(0.004);
  const auto quality = OutageDetector::evaluate(detections, truth, 1);
  EXPECT_GT(quality.precision(), 0.5);
}

TEST_F(Fig6, SentimentGateReducesFalsePositives) {
  // Ablation: the paper filters keyword counts to negative threads "to
  // avoid false positives". Without the gate, precision drops.
  OutageDetectorConfig no_gate;
  no_gate.require_negative_sentiment = false;
  const OutageDetector ungated{
      analyzer(), nlp::KeywordDictionary::outage_dictionary(), no_gate};
  const auto truth = corpus().outages.days_above(0.004);
  const auto gated_q = OutageDetector::evaluate(
      detector().detect(corpus().posts, corpus().first, corpus().last), truth,
      1);
  const auto ungated_q = OutageDetector::evaluate(
      ungated.detect(corpus().posts, corpus().first, corpus().last), truth, 1);
  EXPECT_GE(gated_q.precision(), ungated_q.precision());
}

// ---- Roaming early detection ----

TEST(EarlyDetection, RoamingFoundAtLeastTwoWeeksEarly) {
  const EarlyFeatureDetector detector;
  const auto lead = detector.lead_time_for(
      corpus().posts, "roaming", leo::EventTimeline::roaming_announcement_date());
  ASSERT_TRUE(lead.has_value());
  EXPECT_GE(lead->days_before_announcement, 10);
  EXPECT_LE(lead->days_before_announcement, 20);
}

TEST(EarlyDetection, DetectsNoPhantomTopicsBeforeCorpusStart) {
  const EarlyFeatureDetector detector;
  for (const auto& d : detector.detect(corpus().posts)) {
    EXPECT_GE(d.first_detected, corpus().first);
    EXPECT_LE(d.first_detected, corpus().last);
  }
}

// ---- Fig 7: the fulcrum ----

class Fig7 : public ::testing::Test {
 protected:
  static const std::vector<FulcrumMonth>& months() {
    static const std::vector<FulcrumMonth> instance = [] {
      const FulcrumTracker tracker{analyzer()};
      return tracker.analyze(corpus().posts);
    }();
    return instance;
  }
  static const FulcrumMonth& month(int y, int m) {
    for (const auto& fm : months()) {
      if (fm.year == y && fm.month == m) return fm;
    }
    throw std::runtime_error("month missing");
  }
};

TEST_F(Fig7, TwentyFourMonthsPresent) {
  EXPECT_EQ(months().size(), 24u);
}

TEST_F(Fig7, ReportVolumeComparableToPaper) {
  std::size_t total = 0;
  for (const auto& m : months()) total += m.reports;
  // The paper identified ~1750 usable reports over the same window.
  EXPECT_GT(total, 1000u);
  EXPECT_LT(total, 3000u);
}

TEST_F(Fig7, MediansRiseThenDipThenDecline) {
  EXPECT_GT(month(2021, 6).median_downlink_mbps,
            month(2021, 1).median_downlink_mbps * 1.2);
  EXPECT_LT(month(2021, 8).median_downlink_mbps,
            month(2021, 6).median_downlink_mbps * 0.95);
  EXPECT_LT(month(2022, 12).median_downlink_mbps,
            month(2021, 9).median_downlink_mbps * 0.75);
}

TEST_F(Fig7, SubsampledMediansAreStable) {
  for (const auto& m : months()) {
    if (m.reports < 20) continue;
    EXPECT_NEAR(m.median_95pct_sample / m.median_downlink_mbps, 1.0, 0.12)
        << m.year << "-" << m.month;
    EXPECT_NEAR(m.median_90pct_sample / m.median_downlink_mbps, 1.0, 0.15)
        << m.year << "-" << m.month;
  }
}

TEST_F(Fig7, FulcrumAnomalyDec21VsApr21) {
  // Speeds: Dec'21 > Apr'21. Pos: Dec'21 < Apr'21 ("drastically lower").
  const auto& apr = month(2021, 4);
  const auto& dec = month(2021, 12);
  EXPECT_GT(dec.median_downlink_mbps, apr.median_downlink_mbps);
  ASSERT_TRUE(apr.pos_score && dec.pos_score);
  EXPECT_LT(*dec.pos_score, *apr.pos_score - 0.1);
}

TEST_F(Fig7, InverseTrendMar22ToDec22) {
  // Speeds decline Mar'22 -> Dec'22 while Pos improves.
  const auto& mar = month(2022, 3);
  const auto& dec = month(2022, 12);
  EXPECT_LT(dec.median_downlink_mbps, mar.median_downlink_mbps);
  ASSERT_TRUE(mar.pos_score && dec.pos_score);
  EXPECT_GT(*dec.pos_score, *mar.pos_score);
}

TEST_F(Fig7, PosTracksSpeedInGoodTimes) {
  // Pos peaks around the mid-2021 speed peak.
  const auto& may = month(2021, 5);
  const auto& jan = month(2021, 1);
  ASSERT_TRUE(may.pos_score && jan.pos_score);
  EXPECT_GT(*may.pos_score, *jan.pos_score + 0.15);
}

TEST_F(Fig7, ExtractionStatsReported) {
  const FulcrumTracker tracker{analyzer()};
  (void)tracker.analyze(corpus().posts);
  const auto& stats = tracker.extraction_stats();
  EXPECT_GT(stats.attempted, 1000u);
  EXPECT_GT(stats.success_rate(), 0.7);
  EXPECT_LT(stats.success_rate(), 1.0);
}

TEST_F(Fig7, ExpectationSeriesLagsMedians) {
  const FulcrumTracker tracker{analyzer()};
  const auto expectation = tracker.expectation_series(
      corpus().posts, corpus().first, corpus().last);
  // After the Feb '22 crash the adapted expectation exceeds the actual
  // median for weeks (the fulcrum has not shifted yet).
  double truth_median = 0.0;
  for (const auto& t : corpus().truths) {
    if (t.date == Date(2022, 3, 10)) truth_median = t.median_speed;
  }
  ASSERT_GT(truth_median, 0.0);
  EXPECT_GT(expectation.at(Date(2022, 3, 10)), truth_median);
}

}  // namespace
}  // namespace usaas::service
