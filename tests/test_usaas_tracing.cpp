// Request-tracing tests: the seqlock TraceRing under concurrent writers
// and readers (the TSan workload for this PR), tail-based retention
// (interesting traces always kept, fast admitted reservoir-sampled), the
// ledger reconciliation contract under sampling=all (every admitted /
// degraded / shed / expired submission leaves exactly one TraceRecord
// with the matching outcome), journal back-links for breaker and
// cost-bias moves, /debug/timeseries-vs-journal agreement, golden JSON
// for all three /debug renderers, and the USAAS_TELEMETRY=off contract
// (a disabled registry registers nothing and mints no IDs).
//
// Registered under the `sanitize` ctest label with USAAS_PARALLEL_FORCE=1.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "confsim/call.h"
#include "core/date.h"
#include "core/scheduler_clock.h"
#include "core/telemetry/debug_exposition.h"
#include "core/telemetry/event_journal.h"
#include "core/telemetry/history.h"
#include "core/telemetry/metrics.h"
#include "core/telemetry/request_trace.h"
#include "usaas/query_scheduler.h"
#include "usaas/query_service.h"

namespace usaas::service {
namespace {

namespace tel = core::telemetry;
using core::Date;

// ---- Corpus helpers (same shape as test_usaas_scheduler.cpp) -----------

confsim::CallRecord sample_call(std::uint64_t id, const Date& day) {
  confsim::CallRecord call;
  call.call_id = id;
  call.start.date = day;
  call.start.time = {9, 0};
  confsim::ParticipantRecord rec;
  rec.user_id = id * 10;
  rec.platform = confsim::Platform::kWindowsPc;
  rec.meeting_size = 2;
  rec.access = netsim::AccessTechnology::kFiber;
  const auto agg = [](double v) { return netsim::MetricAggregate{v, v, v}; };
  rec.network.latency_ms = agg(40.0 + static_cast<double>(id % 50));
  rec.network.loss_pct = agg(0.5);
  rec.network.jitter_ms = agg(3.0);
  rec.network.bandwidth_mbps = agg(25.0);
  rec.network.duration_seconds = 1800.0;
  rec.network.sample_count = 360;
  rec.presence_pct = 90.0;
  rec.cam_on_pct = 50.0;
  rec.mic_on_pct = 30.0;
  call.participants.push_back(rec);
  return call;
}

std::vector<confsim::CallRecord> quarter_calls(std::uint64_t base_id) {
  std::vector<confsim::CallRecord> calls;
  std::uint64_t id = base_id;
  for (int month = 1; month <= 3; ++month) {
    for (int day : {1, 10, 20, 28}) {
      calls.push_back(sample_call(id++, Date(2022, month, day)));
    }
  }
  return calls;
}

Query whole_months_query() {
  Query q;
  q.first = Date(2022, 1, 1);
  q.last = Date(2022, 3, 31);  // month-aligned: summary-answerable
  q.bins = 4;
  return q;
}

Query cut_months_query() {
  Query q;
  q.first = Date(2022, 1, 15);  // both boundary months are cut: rescans
  q.last = Date(2022, 3, 20);
  q.bins = 4;
  return q;
}

struct Fixture {
  tel::Registry reg{true};
  QueryService svc;
  explicit Fixture(tel::TraceSampling sampling = tel::TraceSampling::kAll)
      : svc{make_config(&reg, sampling)} {
    svc.ingest_calls(quarter_calls(0));
  }
  static QueryServiceConfig make_config(tel::Registry* reg,
                                        tel::TraceSampling sampling) {
    QueryServiceConfig cfg;
    cfg.sharding = ShardingPolicy::kMonthPlatform;
    cfg.threads = 1;
    cfg.telemetry = reg;
    cfg.trace.sampling = sampling;
    cfg.trace.tail_entries = 64;
    return cfg;
  }
};

tel::TraceRecord make_record(std::uint64_t id, tel::TraceOutcome outcome,
                             tel::TracePath path, double run_seconds = 0.0) {
  tel::TraceRecord rec{};
  rec.trace_id = id;
  rec.outcome = static_cast<std::uint8_t>(outcome);
  rec.served_by = static_cast<std::uint8_t>(path);
  rec.run_seconds = run_seconds;
  rec.set_tenant("t");
  return rec;
}

// ---- TraceRing ---------------------------------------------------------

TEST(TraceRing, PushSnapshotOverwriteAndDisabled) {
  tel::TraceRing ring{3};
  EXPECT_EQ(ring.capacity(), 4u);  // rounded up to a power of two

  for (std::uint64_t i = 0; i < 3; ++i) {
    tel::TraceRecord rec{};
    rec.order = i;
    ring.push(rec);
  }
  EXPECT_EQ(ring.snapshot().size(), 3u);

  for (std::uint64_t i = 3; i < 10; ++i) {
    tel::TraceRecord rec{};
    rec.order = i;
    ring.push(rec);
  }
  EXPECT_EQ(ring.pushed(), 10u);
  std::set<std::uint64_t> orders;
  for (const tel::TraceRecord& rec : ring.snapshot()) {
    orders.insert(rec.order);
  }
  // Exactly the last capacity() pushes survive an overwrite lap.
  EXPECT_EQ(orders, (std::set<std::uint64_t>{6, 7, 8, 9}));

  tel::TraceRing off;  // capacity 0: a valid disabled ring
  off.push(tel::TraceRecord{});
  EXPECT_EQ(off.capacity(), 0u);
  EXPECT_TRUE(off.snapshot().empty());
}

TEST(TraceRing, TenantNameIsTruncatedAndNulPadded) {
  tel::TraceRecord rec{};
  const std::string long_name(64, 'x');
  rec.set_tenant(long_name);
  EXPECT_EQ(rec.tenant_view().size(), tel::TraceRecord::kTenantBytes - 1);
  rec.set_tenant("short");
  EXPECT_EQ(rec.tenant_view(), "short");  // re-stamping clears the tail
}

// The TSan workload: writers hammer one ring while readers snapshot it.
// Every field of a record is derived from one value, so a torn read —
// half one record, half another — is detectable as an internal
// inconsistency in the snapshot copy.
TEST(TraceRing, ConcurrentWritersAndReadersNeverObserveTornRecords) {
  tel::TraceRing ring{64};
  // Laps the 64-slot ring 250 times, so writer claim collisions (a
  // lapping writer meeting a mid-write owner) actually happen under
  // TSan's slowed-down stores — this workload is what caught the
  // stale-seq spin livelock in write_slot.
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 4000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (const tel::TraceRecord& rec : ring.snapshot()) {
          const std::uint64_t v = rec.trace_id;
          if (rec.corpus_version != v || rec.staleness != v ||
              rec.wait_seconds != static_cast<double>(v)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Back-to-back snapshots starve the writers on a 1-CPU host
        // (seqlock readers retry through every mid-write slot) — same
        // reason the corpus RW-lock suites sleep between reads.
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(w) * 1000000 + i + 1;
        tel::TraceRecord rec{};
        rec.trace_id = v;
        rec.corpus_version = v;
        rec.staleness = v;
        rec.wait_seconds = static_cast<double>(v);
        ring.push(rec);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(ring.pushed(), kWriters * kPerWriter);
  // Quiesced: a final snapshot sees a full, consistent ring.
  EXPECT_EQ(ring.snapshot().size(), ring.capacity());
}

// ---- RequestTracer -----------------------------------------------------

TEST(RequestTracer, MintsDeterministicNonzeroIds) {
  const tel::TracerConfig cfg;
  tel::RequestTracer a{cfg, true};
  tel::RequestTracer b{cfg, true};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = a.mint_id();
    EXPECT_NE(id, 0u);
    EXPECT_EQ(id, b.mint_id());  // replayable across instances
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in the prefix
}

TEST(RequestTracer, DisabledTracerIsFree) {
  tel::RequestTracer off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.mint_id(), 0u);
  off.record(make_record(1, tel::TraceOutcome::kShed, tel::TracePath::kNone));
  EXPECT_EQ(off.recorded(), 0u);
  EXPECT_TRUE(off.snapshot().empty());
}

TEST(RequestTracer, TailSamplingKeepsInterestingReservoirSamplesTheRest) {
  tel::TracerConfig cfg;
  cfg.tail_entries = 8;
  cfg.reservoir_entries = 4;
  cfg.sampling = tel::TraceSampling::kTail;
  cfg.slow_seconds = 0.050;
  tel::RequestTracer tracer{cfg, true};

  // interesting(): everything except a fast admitted serve.
  EXPECT_FALSE(tracer.interesting(make_record(
      1, tel::TraceOutcome::kAdmitted, tel::TracePath::kCache, 0.001)));
  EXPECT_TRUE(tracer.interesting(make_record(
      2, tel::TraceOutcome::kShed, tel::TracePath::kNone)));
  EXPECT_TRUE(tracer.interesting(make_record(
      3, tel::TraceOutcome::kExpired, tel::TracePath::kExpired)));
  EXPECT_TRUE(tracer.interesting(make_record(
      4, tel::TraceOutcome::kDegraded, tel::TracePath::kCache)));
  EXPECT_TRUE(tracer.interesting(make_record(
      5, tel::TraceOutcome::kAdmitted, tel::TracePath::kInvalid)));
  EXPECT_TRUE(tracer.interesting(make_record(
      6, tel::TraceOutcome::kAdmitted, tel::TracePath::kScan, 0.051)));
  tel::TraceRecord unpayable = make_record(7, tel::TraceOutcome::kShed,
                                           tel::TracePath::kNone);
  unpayable.flags = tel::TraceRecord::kFlagUnpayable;
  EXPECT_TRUE(tracer.interesting(unpayable));

  // 100 fast admitted serves: none tail-kept, all reservoir-considered.
  for (std::uint64_t i = 1; i <= 100; ++i) {
    tracer.record(make_record(i, tel::TraceOutcome::kAdmitted,
                              tel::TracePath::kCache, 0.001));
  }
  EXPECT_EQ(tracer.recorded(), 100u);
  EXPECT_EQ(tracer.tail_kept(), 0u);
  EXPECT_EQ(tracer.reservoir_seen(), 100u);
  EXPECT_GE(tracer.reservoir_kept(), 4u);  // ring filled before sampling
  EXPECT_LE(tracer.snapshot().size(), 4u);

  // One shed and one slow admitted: both always kept, slow flag stamped.
  tracer.record(make_record(200, tel::TraceOutcome::kShed,
                            tel::TracePath::kNone));
  tracer.record(make_record(201, tel::TraceOutcome::kAdmitted,
                            tel::TracePath::kScan, 0.080));
  EXPECT_EQ(tracer.tail_kept(), 2u);
  bool saw_shed = false, saw_slow = false;
  for (const tel::TraceRecord& rec : tracer.snapshot()) {
    if (rec.trace_id == 200) saw_shed = true;
    if (rec.trace_id == 201) {
      saw_slow = true;
      EXPECT_NE(rec.flags & tel::TraceRecord::kFlagSlow, 0);
    }
  }
  EXPECT_TRUE(saw_shed);
  EXPECT_TRUE(saw_slow);

  // Deterministic replay: a second tracer fed the same sequence keeps
  // exactly the same ledger.
  tel::RequestTracer replay{cfg, true};
  for (std::uint64_t i = 1; i <= 100; ++i) {
    replay.record(make_record(i, tel::TraceOutcome::kAdmitted,
                              tel::TracePath::kCache, 0.001));
  }
  EXPECT_EQ(replay.reservoir_kept(), tracer.reservoir_kept());
}

TEST(RequestTracer, AllSamplingKeepsEveryTraceInCompletionOrder) {
  tel::TracerConfig cfg;
  cfg.tail_entries = 64;
  cfg.sampling = tel::TraceSampling::kAll;
  tel::RequestTracer tracer{cfg, true};
  for (std::uint64_t i = 1; i <= 50; ++i) {
    tracer.record(make_record(i, tel::TraceOutcome::kAdmitted,
                              tel::TracePath::kCache, 0.0));
  }
  EXPECT_EQ(tracer.recorded(), 50u);
  EXPECT_EQ(tracer.tail_kept(), 50u);
  EXPECT_EQ(tracer.reservoir_seen(), 0u);
  const std::vector<tel::TraceRecord> traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 50u);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].order, i + 1);  // oldest completion first
  }
}

// ---- Scheduler integration: the retention contract ---------------------

// ISSUE acceptance: under sampling=all, every request the scheduler
// ledger counted — admitted, degraded, shed AND expired — has exactly one
// TraceRecord whose outcome matches the ledger row.
TEST(SchedulerTracing, EveryOutcomeHasExactlyOneTraceUnderAllSampling) {
  Fixture fx{tel::TraceSampling::kAll};
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.default_qos = {0.5, 1.0};  // slow refill: saturation is reachable
  cfg.max_versions_behind = 2;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  // Admitted: the burst pays for one fresh summary-merge run.
  const ScheduledResult admitted = sched.submit("dash", whole_months_query());
  ASSERT_EQ(admitted.outcome, AdmissionOutcome::kAdmitted);
  EXPECT_NE(admitted.trace_id, 0u);

  // Degraded: corpus moves on, tokens are gone, the stale cache answers.
  fx.svc.ingest_calls(quarter_calls(500));
  const ScheduledResult degraded = sched.submit("dash", whole_months_query());
  ASSERT_EQ(degraded.outcome, AdmissionOutcome::kDegraded);

  // Shed: a two-boundary-cut rescan costs more than the whole burst —
  // unpayable outright, and nothing cached to degrade to.
  const ScheduledResult shed = sched.submit("dash", cut_months_query());
  ASSERT_EQ(shed.outcome, AdmissionOutcome::kShed);

  // Expired: a 50 ms budget drains entirely inside the token wait.
  const ScheduledResult expired =
      sched.submit("dash", whole_months_query(), 0.05);
  ASSERT_EQ(expired.outcome, AdmissionOutcome::kExpired);

  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_TRUE(stats.reconciles());

  tel::RequestTracer& tracer = fx.svc.tracer();
  EXPECT_EQ(tracer.recorded(), stats.submitted);
  EXPECT_EQ(tracer.tail_kept(), stats.submitted);  // kAll: nothing sampled

  const std::vector<tel::TraceRecord> traces = tracer.snapshot();
  ASSERT_EQ(traces.size(), 4u);
  std::set<std::uint64_t> ids;
  std::uint64_t by_outcome[4] = {0, 0, 0, 0};
  for (const tel::TraceRecord& rec : traces) {
    ids.insert(rec.trace_id);
    ASSERT_LT(rec.outcome, 4);
    ++by_outcome[rec.outcome];
    EXPECT_EQ(rec.tenant_view(), "dash");
  }
  EXPECT_EQ(ids.size(), 4u);  // exactly one trace per submission
  EXPECT_EQ(ids, (std::set<std::uint64_t>{admitted.trace_id,
                                          degraded.trace_id, shed.trace_id,
                                          expired.trace_id}));
  EXPECT_EQ(by_outcome[static_cast<int>(tel::TraceOutcome::kAdmitted)],
            stats.admitted);
  EXPECT_EQ(by_outcome[static_cast<int>(tel::TraceOutcome::kDegraded)],
            stats.degraded);
  EXPECT_EQ(by_outcome[static_cast<int>(tel::TraceOutcome::kShed)],
            stats.shed);
  EXPECT_EQ(by_outcome[static_cast<int>(tel::TraceOutcome::kExpired)],
            stats.expired);

  // Per-trace shape, by outcome.
  for (const tel::TraceRecord& rec : traces) {
    const auto outcome = static_cast<tel::TraceOutcome>(rec.outcome);
    const auto path = static_cast<tel::TracePath>(rec.served_by);
    switch (outcome) {
      case tel::TraceOutcome::kAdmitted:
        // Month-aligned window: the time bins merge summaries; the
        // post-grouping signals may still scan, which reports as mixed.
        EXPECT_TRUE(path == tel::TracePath::kSummaryMerge ||
                    path == tel::TracePath::kMixed)
            << static_cast<int>(rec.served_by);
        EXPECT_GT(rec.shards_from_summary, 0u);
        break;
      case tel::TraceOutcome::kDegraded:
        EXPECT_EQ(path, tel::TracePath::kCache);
        EXPECT_EQ(rec.staleness, 1u);
        // The cached answer's execution report describes the ORIGINAL
        // run; none of those timings may leak into this request's trace.
        EXPECT_EQ(rec.run_seconds, 0.0);
        EXPECT_EQ(rec.shards_from_summary, 0u);
        EXPECT_NE(rec.flags & tel::TraceRecord::kFlagQueued, 0);
        break;
      case tel::TraceOutcome::kShed:
        EXPECT_EQ(path, tel::TracePath::kNone);
        EXPECT_NE(rec.flags & tel::TraceRecord::kFlagUnpayable, 0);
        break;
      case tel::TraceOutcome::kExpired:
        EXPECT_EQ(path, tel::TracePath::kExpired);
        break;
    }
  }

  // The /debug/traces renderer exposes the same exact ledger.
  const std::string json = tel::debug_traces_json(tracer);
  EXPECT_NE(json.find("\"recorded\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"sampling\": \"all\""), std::string::npos);
}

TEST(SchedulerTracing, TraceIdStampsExecutionAndSlowLog) {
  Fixture fx{tel::TraceSampling::kAll};
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  const ScheduledResult fresh = sched.submit("analyst", cut_months_query());
  ASSERT_EQ(fresh.outcome, AdmissionOutcome::kAdmitted);
  ASSERT_NE(fresh.trace_id, 0u);
  // The answer links back to its trace...
  EXPECT_EQ(fresh.insight.execution.trace_id, fresh.trace_id);
  // ...and so does the slow-log entry for this fingerprint.
  bool found = false;
  for (const tel::SlowQueryEntry& entry : fx.svc.slow_queries()) {
    if (entry.trace_id == fresh.trace_id) found = true;
  }
  EXPECT_TRUE(found);

  // A direct (scheduler-less) run is untraced: trace_id stays 0.
  const Insight direct = fx.svc.run(whole_months_query());
  EXPECT_EQ(direct.error, QueryError::kNone);
  EXPECT_EQ(direct.execution.trace_id, 0u);
}

// ---- Journal + timeseries agreement ------------------------------------

TEST(SchedulerTracing, BreakerTransitionsAreJournaledAndMatchTimeseries) {
  Fixture fx{tel::TraceSampling::kAll};
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.default_qos = {0.0, 1.0};  // burst only: saturation is immediate
  cfg.max_versions_behind = 0;   // degrade off: saturation sheds
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown_seconds = 1.0;
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};
  tel::TelemetryHistory& history = fx.svc.history();
  ASSERT_TRUE(history.enabled());

  // t=0: healthy admit; tick records the closed (0) breaker gauge.
  ASSERT_EQ(sched.submit("hot", whole_months_query()).outcome,
            AdmissionOutcome::kAdmitted);
  history.force_tick(clock.now());

  // t=0.1: two unpayable sheds trip the breaker closed -> open.
  clock.advance(0.1);
  ASSERT_EQ(sched.submit("hot", whole_months_query()).outcome,
            AdmissionOutcome::kShed);
  ASSERT_EQ(sched.submit("hot", whole_months_query()).outcome,
            AdmissionOutcome::kShed);
  history.force_tick(clock.now());

  // t=1.6: cooldown elapsed — the probe half-opens, then fails and
  // reopens (still unpayable), all within one submission.
  clock.advance(1.5);
  ASSERT_EQ(sched.submit("hot", whole_months_query()).outcome,
            AdmissionOutcome::kShed);
  history.force_tick(clock.now());

  // The journal holds the full transition chain, causally back-linked.
  std::vector<tel::JournalEvent> transitions;
  for (const tel::JournalEvent& ev : fx.svc.journal().snapshot()) {
    if (ev.kind == tel::JournalEventKind::kBreakerTransition &&
        ev.tenant == "hot") {
      transitions.push_back(ev);
    }
  }
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].a, 0.0);  // closed -> open
  EXPECT_EQ(transitions[0].b, 1.0);
  EXPECT_EQ(transitions[1].a, 1.0);  // open -> half-open
  EXPECT_EQ(transitions[1].b, 2.0);
  EXPECT_EQ(transitions[2].a, 2.0);  // half-open -> open (probe failed)
  EXPECT_EQ(transitions[2].b, 1.0);
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    EXPECT_NE(transitions[i].trace_id, 0u);  // the straw is identified
    if (i > 0) {
      EXPECT_GE(transitions[i].at_seconds, transitions[i - 1].at_seconds);
      EXPECT_EQ(transitions[i].a, transitions[i - 1].b);  // chain continuity
    }
  }

  // ISSUE acceptance: the /debug/timeseries breaker history must agree
  // with the journal — replaying the transitions up to each tick stamp
  // reproduces the gauge series exactly.
  const tel::TelemetryHistory::Snapshot snap = history.snapshot();
  const tel::TelemetryHistory::Series* series = nullptr;
  for (const tel::TelemetryHistory::Series& s : snap.series) {
    if (s.key == "usaas_admission_breaker_state{tenant=\"hot\"}") {
      series = &s;
    }
  }
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->values.size(), snap.at_seconds.size());
  ASSERT_EQ(snap.at_seconds.size(), 3u);
  for (std::size_t i = 0; i < snap.at_seconds.size(); ++i) {
    double replayed = 0.0;  // born closed
    for (const tel::JournalEvent& ev : transitions) {
      if (ev.at_seconds <= snap.at_seconds[i]) replayed = ev.b;
    }
    EXPECT_EQ(series->values[i], replayed) << "tick " << i;
  }
  EXPECT_EQ(series->values.back(), 1.0);  // ends open
}

TEST(SchedulerTracing, CostBiasMovesAreJournaled) {
  Fixture fx{tel::TraceSampling::kAll};
  core::VirtualClock clock;
  SchedulerConfig cfg;
  cfg.default_qos = {0.1, 2.0};
  cfg.max_versions_behind = 2;
  cfg.degrade_feedback_threshold = 1;  // first stale serve bumps the bias
  cfg.clock = &clock;
  QueryScheduler sched{fx.svc, cfg};

  // Drain the burst with two fresh admits, then bump the corpus.
  ASSERT_EQ(sched.submit("batch", whole_months_query()).outcome,
            AdmissionOutcome::kAdmitted);
  ASSERT_EQ(sched.submit("batch", whole_months_query()).outcome,
            AdmissionOutcome::kAdmitted);
  fx.svc.ingest_calls(quarter_calls(500));

  // Saturated: the stale serve trips the feedback loop — bias bump.
  ASSERT_EQ(sched.submit("batch", whole_months_query()).outcome,
            AdmissionOutcome::kDegraded);

  // Refilled: a fresh admit decays the bias back toward 1.
  clock.advance(30.0);
  ASSERT_EQ(sched.submit("batch", whole_months_query()).outcome,
            AdmissionOutcome::kAdmitted);

  const std::vector<tel::JournalEvent> events = fx.svc.journal().snapshot();
  const tel::JournalEvent* bump = nullptr;
  const tel::JournalEvent* decay = nullptr;
  for (const tel::JournalEvent& ev : events) {
    if (ev.kind == tel::JournalEventKind::kCostBiasBump) bump = &ev;
    if (ev.kind == tel::JournalEventKind::kCostBiasDecay) decay = &ev;
  }
  ASSERT_NE(bump, nullptr);
  EXPECT_EQ(bump->tenant, "batch");
  EXPECT_NE(bump->trace_id, 0u);
  EXPECT_DOUBLE_EQ(bump->a, 1.0);
  EXPECT_DOUBLE_EQ(bump->b, cfg.degrade_feedback_factor);
  ASSERT_NE(decay, nullptr);
  EXPECT_DOUBLE_EQ(decay->a, cfg.degrade_feedback_factor);
  EXPECT_DOUBLE_EQ(decay->b,
                   cfg.degrade_feedback_factor * cfg.cost_bias_decay);
  EXPECT_GE(decay->order, bump->order);
}

TEST(EventJournal, RingOverwritesOldestAndCountsDrops) {
  tel::EventJournal journal{2, true};
  for (int i = 1; i <= 5; ++i) {
    journal.record(tel::JournalEventKind::kBackpressure, "", 0,
                   static_cast<double>(i), i, 10.0);
  }
  EXPECT_EQ(journal.recorded(), 5u);
  EXPECT_EQ(journal.dropped(), 3u);
  const std::vector<tel::JournalEvent> events = journal.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].order, 4u);  // oldest retained first
  EXPECT_EQ(events[1].order, 5u);

  tel::EventJournal off;
  off.record(tel::JournalEventKind::kBackpressure, "", 0, 0.0, 0, 0);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.recorded(), 0u);
}

// ---- Kill switch -------------------------------------------------------

TEST(KillSwitch, DisabledRegistryRegistersNothingAndMintsNoIds) {
  tel::Registry reg{false};
  QueryServiceConfig cfg =
      Fixture::make_config(&reg, tel::TraceSampling::kAll);
  QueryService svc{cfg};
  svc.ingest_calls(quarter_calls(0));

  // Zero registration: the kill switch registers nothing, it does not
  // merely hide values.
  EXPECT_EQ(reg.metric_count(), 0u);
  EXPECT_FALSE(svc.tracer().enabled());
  EXPECT_FALSE(svc.journal().enabled());
  EXPECT_FALSE(svc.history().enabled());
  EXPECT_EQ(svc.tracer().mint_id(), 0u);

  // The serving path still works, untraced end to end.
  core::VirtualClock clock;
  SchedulerConfig sched_cfg;
  sched_cfg.clock = &clock;
  sched_cfg.telemetry = &reg;
  QueryScheduler sched{svc, sched_cfg};
  const ScheduledResult r = sched.submit("dash", whole_months_query());
  EXPECT_EQ(r.outcome, AdmissionOutcome::kAdmitted);
  EXPECT_EQ(r.trace_id, 0u);
  EXPECT_EQ(r.insight.execution.trace_id, 0u);
  EXPECT_TRUE(sched.stats().reconciles());
  EXPECT_EQ(svc.tracer().recorded(), 0u);
  EXPECT_EQ(svc.journal().recorded(), 0u);
  EXPECT_EQ(reg.metric_count(), 0u);  // still nothing, even after traffic

  // The /debug renderers answer honestly instead of erroring.
  EXPECT_NE(tel::debug_traces_json(svc.tracer()).find("\"enabled\": false"),
            std::string::npos);
  EXPECT_NE(tel::debug_events_json(svc.journal()).find("\"enabled\": false"),
            std::string::npos);
  EXPECT_NE(
      tel::debug_timeseries_json(svc.history()).find("\"enabled\": false"),
      std::string::npos);
  // History without ticks: no clock was ever read, no series exist.
  EXPECT_EQ(svc.history().ticks(), 0u);
}

// ---- Golden JSON for the /debug renderers ------------------------------

TEST(DebugExposition, TracesJsonGolden) {
  tel::TracerConfig cfg;
  cfg.tail_entries = 4;
  cfg.sampling = tel::TraceSampling::kAll;
  tel::RequestTracer tracer{cfg, true};

  tel::TraceRecord rec{};
  rec.trace_id = 0xabcdef0123456789ull;
  rec.corpus_version = 7;
  rec.staleness = 2;
  rec.wait_seconds = 0.25;
  rec.cache_probe_seconds = 0.5;
  rec.cost_tokens = 3.0;
  rec.shards_from_summary = 2;
  rec.shards_scanned = 1;
  rec.outcome = static_cast<std::uint8_t>(tel::TraceOutcome::kDegraded);
  rec.served_by = static_cast<std::uint8_t>(tel::TracePath::kCache);
  rec.flags = tel::TraceRecord::kFlagQueued;
  rec.set_tenant("dash");
  tracer.record(rec);

  const std::string expected =
      "{\n"
      "  \"enabled\": true,\n"
      "  \"sampling\": \"all\",\n"
      "  \"recorded\": 1,\n"
      "  \"tail_kept\": 1,\n"
      "  \"reservoir_seen\": 0,\n"
      "  \"reservoir_kept\": 0,\n"
      "  \"traces\": [\n"
      "    {\"trace_id\": \"abcdef0123456789\", \"order\": 1, "
      "\"tenant\": \"dash\", \"outcome\": \"degraded\", "
      "\"served_by\": \"cache\", \"corpus_version\": 7, \"staleness\": 2, "
      "\"wait_seconds\": 0.25, \"run_seconds\": 0, "
      "\"validate_seconds\": 0, \"cache_probe_seconds\": 0.5, "
      "\"implicit_seconds\": 0, \"social_seconds\": 0, "
      "\"cost_tokens\": 3, \"retry_after_seconds\": 0, "
      "\"shards_from_summary\": 2, \"shards_scanned\": 1, "
      "\"post_shards_from_summary\": 0, \"post_shards_scanned\": 0, "
      "\"slow\": false, \"queued\": true, "
      "\"breaker_short_circuit\": false, \"unpayable\": false}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(tel::debug_traces_json(tracer), expected);
}

TEST(DebugExposition, EventsJsonGolden) {
  tel::EventJournal journal{4, true};
  journal.record(tel::JournalEventKind::kBreakerTransition, "t", 1, 1.5,
                 0.0, 1.0);
  journal.record(tel::JournalEventKind::kCostBiasBump, "t", 2, 2.0, 1.0,
                 1.5);
  journal.record(tel::JournalEventKind::kBackpressure, "", 0, 3.0, 64.0,
                 64.0);

  const std::string expected =
      "{\n"
      "  \"enabled\": true,\n"
      "  \"recorded\": 3,\n"
      "  \"dropped\": 0,\n"
      "  \"events\": [\n"
      "    {\"order\": 1, \"kind\": \"breaker-transition\", "
      "\"tenant\": \"t\", \"trace_id\": \"0000000000000001\", "
      "\"at_seconds\": 1.5, \"from\": \"closed\", \"to\": \"open\"},\n"
      "    {\"order\": 2, \"kind\": \"cost-bias-bump\", "
      "\"tenant\": \"t\", \"trace_id\": \"0000000000000002\", "
      "\"at_seconds\": 2, \"old_bias\": 1, \"new_bias\": 1.5},\n"
      "    {\"order\": 3, \"kind\": \"backpressure\", "
      "\"tenant\": \"\", \"trace_id\": \"0000000000000000\", "
      "\"at_seconds\": 3, \"depth\": 64, \"limit\": 64}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(tel::debug_events_json(journal), expected);
}

TEST(DebugExposition, TimeseriesJsonGolden) {
  tel::Registry reg{true};
  tel::HistoryConfig cfg;
  cfg.interval_seconds = 10.0;
  cfg.slots = 4;
  tel::TelemetryHistory history{&reg, cfg, true};

  tel::Counter requests =
      reg.counter("req_total", "", {{"tenant", "t"}});
  requests.add(3);
  history.force_tick(0.0);
  requests.add(2);
  // A series born mid-flight is back-filled with null for missed ticks.
  tel::Gauge depth = reg.gauge("depth");
  depth.set(7.0);
  history.force_tick(10.0);

  const std::string expected =
      "{\n"
      "  \"enabled\": true,\n"
      "  \"interval_seconds\": 10,\n"
      "  \"slots\": 4,\n"
      "  \"ticks\": 2,\n"
      "  \"at_seconds\": [0, 10],\n"
      "  \"series\": {\n"
      "    \"depth\": {\"kind\": \"gauge\", \"values\": [null, 7]},\n"
      "    \"req_total{tenant=\\\"t\\\"}\": {\"kind\": \"counter\", "
      "\"values\": [3, 2]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(tel::debug_timeseries_json(history), expected);
}

// ---- Label hygiene -----------------------------------------------------

TEST(Sanitize, LabelValuesAreBoundedPrintableAndNonEmpty) {
  EXPECT_EQ(tel::sanitize_label_value("dash-board_01"), "dash-board_01");
  EXPECT_EQ(tel::sanitize_label_value(""), "_");
  // Control bytes (header/exposition injection vectors) are neutralized.
  EXPECT_EQ(tel::sanitize_label_value("a\nb"), "a_b");
  EXPECT_EQ(tel::sanitize_label_value("a\rb\tc"), "a_b_c");
  EXPECT_EQ(tel::sanitize_label_value(std::string_view{"a\0b", 3}), "a_b");
  EXPECT_EQ(tel::sanitize_label_value("a\x7f"
                                      "b"),
            "a_b");
  // Length is clamped to the label budget.
  const std::string long_name(200, 'x');
  EXPECT_EQ(tel::sanitize_label_value(long_name).size(),
            tel::kMaxLabelValueBytes);
  // Printable specials survive (escaping is the exposition layer's job).
  EXPECT_EQ(tel::sanitize_label_value("a\"b\\c"), "a\"b\\c");
}

}  // namespace
}  // namespace usaas::service
