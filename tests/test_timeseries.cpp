#include "core/timeseries.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace usaas::core {
namespace {

TEST(DailySeries, ConstructionAndRange) {
  const DailySeries s{Date(2022, 1, 1), Date(2022, 1, 31)};
  EXPECT_EQ(s.size(), 31u);
  EXPECT_TRUE(s.contains(Date(2022, 1, 15)));
  EXPECT_FALSE(s.contains(Date(2022, 2, 1)));
  EXPECT_THROW((DailySeries{Date(2022, 2, 1), Date(2022, 1, 1)}),
               std::invalid_argument);
}

TEST(DailySeries, SetAddAt) {
  DailySeries s{Date(2022, 1, 1), Date(2022, 1, 10)};
  s.set(Date(2022, 1, 5), 3.0);
  s.add(Date(2022, 1, 5), 2.0);
  EXPECT_DOUBLE_EQ(s.at(Date(2022, 1, 5)), 5.0);
  EXPECT_DOUBLE_EQ(s.at(Date(2022, 1, 6)), 0.0);
  EXPECT_THROW((void)s.at(Date(2021, 12, 31)), std::out_of_range);
}

TEST(DailySeries, EntriesAlignWithDates) {
  DailySeries s{Date(2022, 3, 30), Date(2022, 4, 2)};
  s.set(Date(2022, 4, 1), 9.0);
  const auto e = s.entries();
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e[2].date, Date(2022, 4, 1));
  EXPECT_DOUBLE_EQ(e[2].value, 9.0);
}

TEST(DailySeries, RollingMeanSmoothsSpike) {
  DailySeries s{Date(2022, 1, 1), Date(2022, 1, 9)};
  s.set(Date(2022, 1, 5), 9.0);
  const auto smoothed = s.rolling_mean(3);
  EXPECT_DOUBLE_EQ(smoothed.at(Date(2022, 1, 5)), 3.0);
  EXPECT_DOUBLE_EQ(smoothed.at(Date(2022, 1, 4)), 3.0);
  EXPECT_DOUBLE_EQ(smoothed.at(Date(2022, 1, 3)), 0.0);
  EXPECT_THROW(s.rolling_mean(4), std::invalid_argument);
  EXPECT_THROW(s.rolling_mean(0), std::invalid_argument);
}

TEST(DailySeries, EwmaConvergesToConstant) {
  DailySeries s{Date(2022, 1, 1), Date(2022, 4, 10)};
  for (const auto& [date, _] : s.entries()) s.set(date, 10.0);
  const auto e = s.ewma(0.2);
  EXPECT_NEAR(e.at(Date(2022, 4, 10)), 10.0, 1e-6);
  EXPECT_THROW(s.ewma(0.0), std::invalid_argument);
  EXPECT_THROW(s.ewma(1.5), std::invalid_argument);
}

TEST(DailySeries, EwmaLagsStepChange) {
  DailySeries s{Date(2022, 1, 1), Date(2022, 1, 20)};
  for (int i = 10; i < 20; ++i) s.set(Date(2022, 1, 1).plus_days(i), 100.0);
  const auto e = s.ewma(0.3);
  // Right after the step the EWMA is still well below the new level.
  EXPECT_LT(e.at(Date(2022, 1, 12)), 70.0);
  EXPECT_GT(e.at(Date(2022, 1, 20)), 90.0);
}

TEST(DailySeries, MapAndPlus) {
  DailySeries a{Date(2022, 1, 1), Date(2022, 1, 3)};
  a.set(Date(2022, 1, 2), 2.0);
  const auto doubled = a.map([](double v) { return v * 2.0; });
  EXPECT_DOUBLE_EQ(doubled.at(Date(2022, 1, 2)), 4.0);
  const auto sum = a + doubled;
  EXPECT_DOUBLE_EQ(sum.at(Date(2022, 1, 2)), 6.0);
  EXPECT_DOUBLE_EQ(sum.total(), 6.0);
  DailySeries other{Date(2022, 1, 1), Date(2022, 1, 4)};
  EXPECT_THROW(a + other, std::invalid_argument);
}

TEST(MonthlyAggregator, MediansChronological) {
  MonthlyAggregator agg;
  agg.add(Date(2021, 2, 10), 10.0);
  agg.add(Date(2021, 1, 5), 1.0);
  agg.add(Date(2021, 1, 20), 3.0);
  agg.add(Date(2021, 1, 25), 2.0);
  const auto meds = agg.medians();
  ASSERT_EQ(meds.size(), 2u);
  EXPECT_EQ(meds[0].label(), "2021-01");
  EXPECT_DOUBLE_EQ(meds[0].value, 2.0);
  EXPECT_EQ(meds[0].count, 3u);
  EXPECT_EQ(meds[1].label(), "2021-02");
  EXPECT_DOUBLE_EQ(meds[1].value, 10.0);
}

TEST(MonthlyAggregator, MeansDifferFromMedians) {
  MonthlyAggregator agg;
  agg.add(Date(2021, 1, 1), 1.0);
  agg.add(Date(2021, 1, 2), 1.0);
  agg.add(Date(2021, 1, 3), 100.0);
  EXPECT_DOUBLE_EQ(agg.medians()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(agg.means()[0].value, 34.0);
}

TEST(MonthlyAggregator, SubsampledMediansStableForLargeMonths) {
  // Fig 7's stability check: with enough samples per month the 90%/95%
  // subsample medians track the full median closely.
  MonthlyAggregator agg;
  Rng rng{7};
  for (int day = 1; day <= 28; ++day) {
    for (int k = 0; k < 40; ++k) {
      agg.add(Date(2022, 5, day), rng.lognormal(4.0, 0.4));
    }
  }
  const double full = agg.medians()[0].value;
  const double sub95 = agg.subsampled_medians(0.95, 1)[0].value;
  const double sub90 = agg.subsampled_medians(0.90, 2)[0].value;
  EXPECT_NEAR(sub95 / full, 1.0, 0.05);
  EXPECT_NEAR(sub90 / full, 1.0, 0.05);
  EXPECT_THROW(agg.subsampled_medians(0.0, 3), std::invalid_argument);
}

TEST(MonthlyAggregator, MonthSamplesAccessor) {
  MonthlyAggregator agg;
  agg.add(Date(2021, 6, 1), 5.0);
  EXPECT_EQ(agg.month_samples(2021, 6).size(), 1u);
  EXPECT_THROW((void)agg.month_samples(2021, 7), std::out_of_range);
}

}  // namespace
}  // namespace usaas::core
