// The fault-injection harness itself, and the streaming front-end's
// behavior under injected faults: deterministic decision streams, env
// configuration, retry-with-backoff on flush failure, corrupt-record
// quarantine, slow-flush tolerance, and graceful degradation (queries keep
// answering from the last good snapshot while the stream is stuck).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/fault_injector.h"
#include "usaas/query_service.h"
#include "usaas/stream_ingestor.h"

namespace usaas::core {
namespace {

TEST(FaultInjector, SameSeedSameDecisionStream) {
  FaultInjector::Config cfg;
  cfg.seed = 99;
  cfg.flush_failure_p = 0.4;
  cfg.corrupt_record_p = 0.3;
  FaultInjector a{cfg};
  FaultInjector b{cfg};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.fail_this_flush(), b.fail_this_flush()) << "decision " << i;
    EXPECT_EQ(a.corrupt_this_record(), b.corrupt_this_record())
        << "decision " << i;
  }
  EXPECT_EQ(a.flush_failures_injected(), b.flush_failures_injected());
  EXPECT_EQ(a.corruptions_injected(), b.corruptions_injected());
  EXPECT_GT(a.flush_failures_injected(), 0u);
  EXPECT_LT(a.flush_failures_injected(), 200u);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector::Config cfg;
  cfg.flush_failure_p = 0.5;
  cfg.seed = 1;
  FaultInjector a{cfg};
  cfg.seed = 2;
  FaultInjector b{cfg};
  int differences = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.fail_this_flush() != b.fail_this_flush()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultInjector, FailFirstFlushesIsExactThenHeals) {
  FaultInjector::Config cfg;
  cfg.fail_first_flushes = 5;
  FaultInjector inj{cfg};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(inj.fail_this_flush()) << "attempt " << i;
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(inj.fail_this_flush());  // flush_failure_p is 0: healed
  }
  EXPECT_EQ(inj.flush_failures_injected(), 5u);
}

TEST(FaultInjector, SlowFlushDelayRespectsProbability) {
  FaultInjector::Config cfg;
  cfg.slow_flush_p = 1.0;
  cfg.slow_flush_delay = std::chrono::milliseconds{7};
  FaultInjector always{cfg};
  EXPECT_EQ(always.flush_delay(), std::chrono::milliseconds{7});
  EXPECT_EQ(always.slow_flushes_injected(), 1u);

  cfg.slow_flush_p = 0.0;
  FaultInjector never{cfg};
  EXPECT_EQ(never.flush_delay(), std::chrono::milliseconds{0});
  EXPECT_EQ(never.slow_flushes_injected(), 0u);
}

class FaultEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* var :
         {"USAAS_FAULT_SEED", "USAAS_FAULT_FAIL_FIRST_FLUSHES",
          "USAAS_FAULT_FLUSH_FAIL_P", "USAAS_FAULT_CORRUPT_P",
          "USAAS_FAULT_SLOW_FLUSH_P", "USAAS_FAULT_SLOW_FLUSH_MS"}) {
      unsetenv(var);
    }
  }
};

TEST_F(FaultEnvTest, NoEnvMeansNoInjector) {
  EXPECT_FALSE(FaultInjector::config_from_env().has_value());
}

TEST_F(FaultEnvTest, SeedAloneDoesNotArm) {
  setenv("USAAS_FAULT_SEED", "7", 1);
  EXPECT_FALSE(FaultInjector::config_from_env().has_value());
}

TEST_F(FaultEnvTest, FaultKnobsParseFromEnv) {
  setenv("USAAS_FAULT_SEED", "123", 1);
  setenv("USAAS_FAULT_FAIL_FIRST_FLUSHES", "4", 1);
  setenv("USAAS_FAULT_FLUSH_FAIL_P", "0.25", 1);
  setenv("USAAS_FAULT_CORRUPT_P", "0.5", 1);
  setenv("USAAS_FAULT_SLOW_FLUSH_P", "0.75", 1);
  setenv("USAAS_FAULT_SLOW_FLUSH_MS", "12", 1);
  const auto cfg = FaultInjector::config_from_env();
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->seed, 123u);
  EXPECT_EQ(cfg->fail_first_flushes, 4u);
  EXPECT_DOUBLE_EQ(cfg->flush_failure_p, 0.25);
  EXPECT_DOUBLE_EQ(cfg->corrupt_record_p, 0.5);
  EXPECT_DOUBLE_EQ(cfg->slow_flush_p, 0.75);
  EXPECT_EQ(cfg->slow_flush_delay, std::chrono::milliseconds{12});
}

}  // namespace
}  // namespace usaas::core

namespace usaas::service {
namespace {

using core::Date;

confsim::CallRecord sample_call(std::uint64_t id) {
  confsim::CallRecord call;
  call.call_id = id;
  call.start.date = Date(2022, 3, static_cast<int>(1 + id % 28));
  call.start.time = {9, 0};
  confsim::ParticipantRecord rec;
  rec.user_id = id * 10;
  rec.platform = confsim::Platform::kWindowsPc;
  rec.meeting_size = 2;
  rec.access = netsim::AccessTechnology::kFiber;
  const auto agg = [](double v) {
    return netsim::MetricAggregate{v, v, v};
  };
  rec.network.latency_ms = agg(40.0 + static_cast<double>(id % 50));
  rec.network.loss_pct = agg(0.5);
  rec.network.jitter_ms = agg(3.0);
  rec.network.bandwidth_mbps = agg(25.0);
  rec.network.duration_seconds = 1800.0;
  rec.network.sample_count = 360;
  rec.presence_pct = 90.0;
  rec.cam_on_pct = 50.0;
  rec.mic_on_pct = 30.0;
  call.participants.push_back(rec);
  return call;
}

Query window_query() {
  Query q;
  q.first = Date(2022, 1, 1);
  q.last = Date(2022, 12, 31);
  q.metric_lo = 0.0;
  q.metric_hi = 300.0;
  q.bins = 4;
  return q;
}

TEST(FaultInjection, FlushFailureIsRetriedWithBackoffThenSucceeds) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  core::FaultInjector::Config fcfg;
  fcfg.fail_first_flushes = 2;
  core::FaultInjector faults{fcfg};
  StreamIngestorConfig cfg;
  cfg.call_flush_watermark = 3;
  cfg.max_flush_attempts = 4;  // 2 injected failures fit inside one round
  cfg.retry_backoff = std::chrono::milliseconds{1};
  StreamIngestor ingestor{svc, cfg, &faults};
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ingestor.push(sample_call(i)), PushOutcome::kAccepted);
  }
  // The watermark flush failed twice, backed off twice, then delivered.
  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(stats.health.flush_failures, 2u);
  EXPECT_EQ(stats.health.flush_retries, 2u);
  EXPECT_EQ(stats.backoff_waits, 2u);
  EXPECT_EQ(stats.health.flushes, 1u);
  EXPECT_EQ(stats.health.flushed, 3u);
  EXPECT_EQ(stats.health.staged, 0u);
  EXPECT_FALSE(stats.health.degraded);
  EXPECT_EQ(faults.flush_failures_injected(), 2u);
  EXPECT_EQ(svc.ingested_sessions(), 3u);
  // The failure counters surface in the service stats too.
  const QueryService::ServiceStats sstats = svc.stats();
  EXPECT_EQ(sstats.stream.flush_failures, 2u);
  EXPECT_EQ(sstats.stream.flush_retries, 2u);
}

// Regression: the retry backoff used to double via a left shift of the
// raw tick count. Past 63 attempts the shift is UB outright, and even a
// clamped shift overflows std::int64 when retry_backoff is large — the
// overflowed (negative) backoff silently skipped both the sleep and the
// usaas_stream_backoff_seconds sample while still counting backoff_waits.
// Drive a flush round through the ≥ 63-attempt boundary with a huge retry
// floor: every one of the 63 waits must be observed, positive, and capped
// at max_backoff.
TEST(FaultInjection, BackoffStaysCappedAndObservedPastSixtyThreeAttempts) {
  core::telemetry::Registry reg{true};
  QueryServiceConfig scfg;
  scfg.threads = 1;
  scfg.telemetry = &reg;
  QueryService svc{scfg};
  core::FaultInjector::Config fcfg;
  fcfg.fail_first_flushes = 63;  // heals on attempt 64
  core::FaultInjector faults{fcfg};
  StreamIngestorConfig cfg;
  cfg.call_flush_watermark = 1;
  cfg.max_flush_attempts = 64;
  cfg.retry_backoff = std::chrono::milliseconds{std::int64_t{1} << 45};
  cfg.max_backoff = std::chrono::milliseconds{1};
  StreamIngestor ingestor{svc, cfg, &faults};
  EXPECT_EQ(ingestor.push(sample_call(1)), PushOutcome::kAccepted);

  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(stats.health.flush_failures, 63u);
  EXPECT_EQ(stats.backoff_waits, 63u);
  EXPECT_EQ(stats.health.flushes, 1u);
  EXPECT_EQ(svc.ingested_sessions(), 1u);
  const core::telemetry::HistogramSnapshot waits =
      reg.histogram("usaas_stream_backoff_seconds").snapshot();
  EXPECT_EQ(waits.count, 63u);  // no wait went missing
  EXPECT_GT(waits.max, 0.0);
  EXPECT_LE(waits.max, 0.001 + 1e-9);  // capped at max_backoff
}

TEST(FaultInjection, ExhaustedRetriesDegradeButQueriesServeLastSnapshot) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  // First flush round succeeds (no faults yet armed via first-N), later
  // flushes always fail: the service must keep answering queries from the
  // last good snapshot while the stream reports degradation.
  core::FaultInjector::Config fcfg;
  fcfg.fail_first_flushes = 1u << 20;
  core::FaultInjector healthy_then_stuck{fcfg};
  StreamIngestorConfig cfg;
  cfg.call_flush_watermark = 4;
  cfg.max_flush_attempts = 2;
  cfg.retry_backoff = std::chrono::milliseconds{0};
  cfg.backpressure = BackpressurePolicy::kReject;

  // Phase 1: no injector — a healthy flush establishes the snapshot.
  StreamIngestor ingestor{svc, cfg, nullptr};
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(ingestor.push(sample_call(i)), PushOutcome::kAccepted);
  }
  const Insight good = svc.run(window_query());
  ASSERT_EQ(good.sessions, 4u);
  const std::uint64_t good_version = good.corpus_version;

  // Phase 2: the store "goes down" — every flush fails. Pushes stage,
  // the watermark flush exhausts its retries, the stream degrades.
  StreamIngestor stuck{svc, cfg, &healthy_then_stuck};
  for (std::uint64_t i = 4; i < 8; ++i) {
    ASSERT_EQ(stuck.push(sample_call(i)), PushOutcome::kAccepted);
  }
  EXPECT_FALSE(stuck.flush());
  const QueryService::ServiceStats stats = svc.stats();
  EXPECT_TRUE(stats.stream.degraded);
  EXPECT_EQ(stats.stream.staged, 4u);
  EXPECT_EQ(stats.staleness_records(), 4u);
  EXPECT_GT(stats.stream.flush_failures, 0u);

  // Queries still answer — from the last good snapshot, same version.
  const Insight during_outage = svc.run(window_query());
  EXPECT_EQ(during_outage.sessions, 4u);
  EXPECT_EQ(during_outage.corpus_version, good_version);

  // Phase 3: recovery. A fault-free flush drains the staged records and
  // the snapshot advances.
  StreamIngestor recovered{svc, cfg, nullptr};
  for (std::uint64_t i = 4; i < 8; ++i) {
    ASSERT_EQ(recovered.push(sample_call(i)), PushOutcome::kAccepted);
  }
  ASSERT_TRUE(recovered.flush());
  const Insight after = svc.run(window_query());
  EXPECT_EQ(after.sessions, 8u);
  EXPECT_GT(after.corpus_version, good_version);
}

TEST(FaultInjection, CorruptRecordsAreQuarantinedNotIngested) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  core::FaultInjector::Config fcfg;
  fcfg.corrupt_record_p = 1.0;  // every record is mangled in flight
  core::FaultInjector faults{fcfg};
  StreamIngestor ingestor{svc, StreamIngestorConfig{}, &faults};
  constexpr std::uint64_t kRecords = 12;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(ingestor.push(sample_call(i)), PushOutcome::kQuarantined);
  }
  social::Post post;
  post.id = 1;
  post.date = Date(2022, 5, 1);
  post.title = "fine";
  post.body = "perfectly ordinary feedback";
  EXPECT_EQ(ingestor.push(post), PushOutcome::kQuarantined);
  ingestor.flush();

  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(stats.health.quarantined, kRecords + 1);
  EXPECT_EQ(stats.health.accepted, 0u);
  EXPECT_EQ(faults.corruptions_injected(), kRecords + 1);
  // The corruption cycler hits more than one poison shape.
  std::size_t reasons_seen = 0;
  for (const auto count : stats.quarantined_by_reason) {
    if (count > 0) ++reasons_seen;
  }
  EXPECT_GE(reasons_seen, 2u);
  // Nothing corrupt reached the shard stores.
  EXPECT_EQ(svc.ingested_sessions(), 0u);
  EXPECT_EQ(svc.ingested_posts(), 0u);
}

TEST(FaultInjection, PartialCorruptionStillDeliversTheCleanRecords) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  core::FaultInjector::Config fcfg;
  fcfg.seed = 17;
  fcfg.corrupt_record_p = 0.3;
  core::FaultInjector faults{fcfg};
  StreamIngestor ingestor{svc, StreamIngestorConfig{}, &faults};
  constexpr std::uint64_t kRecords = 100;
  std::size_t accepted = 0;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    if (ingestor.push(sample_call(i)) == PushOutcome::kAccepted) ++accepted;
  }
  ASSERT_TRUE(ingestor.flush());
  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(accepted + stats.health.quarantined, kRecords);
  EXPECT_EQ(stats.health.quarantined, faults.corruptions_injected());
  EXPECT_GT(stats.health.quarantined, 0u);
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(svc.ingested_sessions(), accepted);
}

TEST(FaultInjection, SlowFlushesDelayButDoNotFail) {
  QueryService svc{{ShardingPolicy::kMonthPlatform, 1}};
  core::FaultInjector::Config fcfg;
  fcfg.slow_flush_p = 1.0;
  fcfg.slow_flush_delay = std::chrono::milliseconds{2};
  core::FaultInjector faults{fcfg};
  StreamIngestorConfig cfg;
  cfg.call_flush_watermark = 2;
  StreamIngestor ingestor{svc, cfg, &faults};
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ingestor.push(sample_call(i)), PushOutcome::kAccepted);
  }
  const StreamIngestor::Stats stats = ingestor.stats();
  EXPECT_EQ(stats.health.flushes, 3u);
  EXPECT_EQ(stats.health.flush_failures, 0u);
  EXPECT_EQ(stats.health.flushed, 6u);
  EXPECT_FALSE(stats.health.degraded);
  EXPECT_EQ(faults.slow_flushes_injected(), 3u);
  EXPECT_EQ(svc.ingested_sessions(), 6u);
}

}  // namespace
}  // namespace usaas::service
