// Packet-level validation of the analytic residual-loss model: the Fig 1/2
// engagement results rest on netsim::residual_loss; these tests check that
// a real packet-by-packet FEC + retransmission simulation over a bursty
// channel behaves the way the closed form assumes.
#include "netsim/media_session.h"

#include <gtest/gtest.h>

namespace usaas::netsim {
namespace {

using core::Milliseconds;
using core::Rng;

MediaSessionResult run_session(double loss, double rtt_ms,
                               const MediaSessionConfig& cfg, int reps = 10,
                               std::uint64_t seed = 1) {
  Rng rng{seed};
  MediaSessionResult acc;
  for (int i = 0; i < reps; ++i) {
    const auto r =
        simulate_media_session(600.0, loss, Milliseconds{rtt_ms}, cfg, rng);
    acc.packets_sent += r.packets_sent;
    acc.lost_raw += r.lost_raw;
    acc.recovered_fec += r.recovered_fec;
    acc.recovered_retransmit += r.recovered_retransmit;
    acc.lost_residual += r.lost_residual;
  }
  return acc;
}

TEST(MediaSession, AccountingIsConsistent) {
  const MediaSessionConfig cfg;
  const auto r = run_session(0.03, 60.0, cfg, 3);
  EXPECT_EQ(r.lost_raw,
            r.recovered_fec + r.recovered_retransmit + r.lost_residual);
  EXPECT_LE(r.lost_residual, r.lost_raw);
  EXPECT_GT(r.packets_sent, 0u);
}

TEST(MediaSession, ZeroLossIsClean) {
  const MediaSessionConfig cfg;
  const auto r = run_session(0.0, 60.0, cfg, 1);
  EXPECT_EQ(r.lost_raw, 0u);
  EXPECT_EQ(r.lost_residual, 0u);
}

TEST(MediaSession, RawLossRateMatchesChannelTarget) {
  const MediaSessionConfig cfg;
  const auto r = run_session(0.02, 60.0, cfg, 20);
  EXPECT_NEAR(r.raw_loss_rate(), 0.02, 0.004);
}

TEST(MediaSession, MitigationOffPassesRawThrough) {
  MediaSessionConfig cfg;
  cfg.mitigation.enabled = false;
  const auto r = run_session(0.03, 60.0, cfg, 3);
  EXPECT_EQ(r.lost_residual, r.lost_raw);
  EXPECT_EQ(r.recovered_fec, 0u);
}

TEST(MediaSession, ResidualMonotoneInRawLoss) {
  const MediaSessionConfig cfg;
  double prev = -1.0;
  for (const double loss : {0.005, 0.01, 0.02, 0.03, 0.05}) {
    const double residual = run_session(loss, 120.0, cfg).residual_loss_rate();
    EXPECT_GE(residual, prev);
    prev = residual;
  }
}

TEST(MediaSession, HighRttDisablesRetransmission) {
  // The Fig 2 compounding mechanism, verified at packet level.
  const MediaSessionConfig cfg;
  const auto low = run_session(0.03, 60.0, cfg);
  const auto high = run_session(0.03, 600.0, cfg);
  EXPECT_GT(high.residual_loss_rate(), 2.0 * low.residual_loss_rate());
  EXPECT_EQ(high.recovered_retransmit, 0u);
  EXPECT_GT(low.recovered_retransmit, 0u);
}

TEST(MediaSession, InterleavingHelpsAgainstBursts) {
  MediaSessionConfig deep;
  deep.interleave_depth = 8;
  MediaSessionConfig none;
  none.interleave_depth = 1;
  // No retransmission (high RTT) isolates the FEC effect.
  const double with_interleave =
      run_session(0.04, 600.0, deep).residual_loss_rate();
  const double without =
      run_session(0.04, 600.0, none).residual_loss_rate();
  EXPECT_LT(with_interleave, without);
}

TEST(MediaSession, AnalyticModelIsConservativeEnvelope) {
  // The behaviour model must never *understate* damage relative to packet
  // reality: the analytic residual tracks the simulation from above
  // (within sampling tolerance) across the (loss, rtt) grid.
  const MediaSessionConfig cfg;
  for (const double loss : {0.005, 0.01, 0.02, 0.03, 0.05}) {
    for (const double rtt : {40.0, 120.0, 600.0}) {
      const double simulated =
          run_session(loss, rtt, cfg).residual_loss_rate();
      const double analytic =
          residual_loss(loss, Milliseconds{rtt}, cfg.mitigation);
      EXPECT_LE(simulated, analytic * 1.6 + 0.0005)
          << "loss " << loss << " rtt " << rtt;
    }
  }
}

TEST(MediaSession, AnalyticAndSimulatedAgreeAtHighRtt) {
  // With retransmission out of the picture the two FEC models should sit
  // within a small factor of each other.
  const MediaSessionConfig cfg;
  for (const double loss : {0.01, 0.02, 0.03, 0.05}) {
    const double simulated =
        run_session(loss, 600.0, cfg, 20).residual_loss_rate();
    const double analytic =
        residual_loss(loss, Milliseconds{600.0}, cfg.mitigation);
    EXPECT_GT(simulated, analytic * 0.25) << "loss " << loss;
    EXPECT_LT(simulated, analytic * 1.6 + 0.0005) << "loss " << loss;
  }
}

TEST(MediaSession, Validation) {
  const MediaSessionConfig cfg;
  Rng rng{2};
  EXPECT_THROW(
      (void)simulate_media_session(0.0, 0.01, Milliseconds{40.0}, cfg, rng),
      std::invalid_argument);
  MediaSessionConfig bad;
  bad.fec_group_size = 0;
  EXPECT_THROW(
      (void)simulate_media_session(10.0, 0.01, Milliseconds{40.0}, bad, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace usaas::netsim
