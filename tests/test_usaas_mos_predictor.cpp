#include "usaas/mos_predictor.h"

#include <gtest/gtest.h>

#include "confsim/dataset.h"

namespace usaas::service {
namespace {

std::vector<confsim::ParticipantRecord> sessions_from(std::size_t calls,
                                                      std::uint64_t seed) {
  // Swept conditions spread the experienced quality widely, giving the
  // regression real variance to explain (population sampling concentrates
  // almost all sessions at "good", where MOS is mostly rater noise).
  confsim::DatasetConfig cfg;
  cfg.seed = seed;
  cfg.num_calls = calls;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  cfg.sweep_metric = netsim::Metric::kLatency;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 300.0;
  cfg.control_windows.loss_hi_pct = 3.0;
  std::vector<confsim::ParticipantRecord> out;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) {
        for (const auto& p : call.participants) out.push_back(p);
      });
  return out;
}

class MosPredictorTest : public ::testing::Test {
 protected:
  static const std::vector<confsim::ParticipantRecord>& sessions() {
    static const auto instance = sessions_from(20000, 31337);
    return instance;
  }
};

TEST_F(MosPredictorTest, TrainsAndPredictsInRange) {
  MosPredictor predictor;
  predictor.train(sessions());
  for (std::size_t i = 0; i < 100; ++i) {
    const double p = predictor.predict(sessions()[i * 37]);
    EXPECT_GE(p, 1.0);
    EXPECT_LE(p, 5.0);
  }
}

TEST_F(MosPredictorTest, PredictWithoutTrainingThrows) {
  const MosPredictor predictor;
  EXPECT_THROW((void)predictor.predict(sessions().front()), std::logic_error);
}

TEST_F(MosPredictorTest, TooFewRatedSessionsThrows) {
  MosPredictor predictor;
  const auto tiny = sessions_from(30, 1);
  EXPECT_THROW(predictor.train(tiny), std::runtime_error);
}

TEST_F(MosPredictorTest, FullModelBeatsMeanBaseline) {
  const MosPredictor predictor;
  const auto ev = predictor.evaluate(sessions());
  EXPECT_GT(ev.train_sessions, 100u);
  EXPECT_GT(ev.test_sessions, 40u);
  EXPECT_LT(ev.full.mae, ev.mean_baseline.mae);
  EXPECT_GT(ev.full.r2, 0.05);
}

TEST_F(MosPredictorTest, EngagementAloneCarriesSignal) {
  // The paper's thesis: user actions are a usable MOS proxy.
  const MosPredictor predictor;
  const auto ev = predictor.evaluate(sessions());
  EXPECT_LT(ev.engagement_only.mae, ev.mean_baseline.mae);
}

TEST_F(MosPredictorTest, FullModelAtLeastAsGoodAsEitherHalf) {
  const MosPredictor predictor;
  const auto ev = predictor.evaluate(sessions());
  EXPECT_LE(ev.full.mae, ev.network_only.mae + 0.02);
  EXPECT_LE(ev.full.mae, ev.engagement_only.mae + 0.02);
}

TEST_F(MosPredictorTest, FeatureVectorLayout) {
  const auto f = MosPredictor::features(sessions().front());
  ASSERT_EQ(f.size(), MosPredictor::kNumFeatures);
  EXPECT_DOUBLE_EQ(f[0], sessions().front().presence_pct);
  EXPECT_DOUBLE_EQ(f[3],
                   sessions().front().network.latency_ms.mean);
}

TEST_F(MosPredictorTest, EvaluationDeterministicForSplitSeed) {
  MosPredictorConfig cfg;
  cfg.split_seed = 5;
  const MosPredictor a{cfg};
  const MosPredictor b{cfg};
  const auto ea = a.evaluate(sessions());
  const auto eb = b.evaluate(sessions());
  EXPECT_DOUBLE_EQ(ea.full.mae, eb.full.mae);
  EXPECT_EQ(ea.test_sessions, eb.test_sessions);
}

}  // namespace
}  // namespace usaas::service
