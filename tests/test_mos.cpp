#include "confsim/mos.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace usaas::confsim {
namespace {

TEST(MosModel, ExpectedRatingMonotoneDecreasing) {
  const MosModel model;
  double prev = 10.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double r = model.expected_rating(x);
    EXPECT_LT(r, prev);
    prev = r;
  }
  EXPECT_NEAR(model.expected_rating(0.0), 4.7, 1e-9);
}

TEST(MosModel, RatingsClampedAndQuantized) {
  MosModelParams params;
  params.quantize = true;
  const MosModel model{params};
  core::Rng rng{1};
  for (int i = 0; i < 2000; ++i) {
    const double impairment = rng.uniform(0.0, 1.0);
    const auto mos = model.rate(impairment, rng.normal(0.0, 0.3), rng);
    EXPECT_GE(mos.score(), 1.0);
    EXPECT_LE(mos.score(), 5.0);
    EXPECT_DOUBLE_EQ(mos.score(), std::round(mos.score()));
  }
}

TEST(MosModel, ContinuousWhenQuantizationOff) {
  MosModelParams params;
  params.quantize = false;
  params.rating_noise = 0.0;
  const MosModel model{params};
  core::Rng rng{2};
  const auto r = model.rate(0.37, 0.0, rng);
  EXPECT_NEAR(r.score(), model.expected_rating(0.37), 1e-9);
}

TEST(MosModel, MeanRatingTracksImpairment) {
  const MosModel model;
  core::Rng rng{3};
  auto mean_rating = [&](double impairment) {
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      acc += model.rate(impairment, 0.0, rng).score();
    }
    return acc / n;
  };
  const double good = mean_rating(0.05);
  const double bad = mean_rating(0.6);
  EXPECT_GT(good, 4.0);
  EXPECT_LT(bad, 3.0);
}

TEST(MosModel, SamplingRateRespected) {
  MosModelParams params;
  params.sampling_rate = 0.01;
  params.response_rate = 0.5;
  const MosModel model{params};
  core::Rng rng{4};
  int collected = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (model.maybe_collect(0.2, 0.0, rng)) ++collected;
  }
  // Effective rate = sampling * response = 0.5%.
  EXPECT_NEAR(static_cast<double>(collected) / n, 0.005, 0.001);
}

TEST(MosModel, DefaultRateInPaperRange) {
  // "between 0.1% and 1% of sessions" (§3.1).
  const MosModel model;
  const double effective =
      model.params().sampling_rate * model.params().response_rate;
  EXPECT_GE(effective, 0.001);
  EXPECT_LE(effective, 0.01);
}

TEST(MosModel, UserBiasShiftsRatings) {
  MosModelParams params;
  params.rating_noise = 0.0;
  params.quantize = false;
  const MosModel model{params};
  core::Rng rng{5};
  const double neutral = model.rate(0.3, 0.0, rng).score();
  const double grumpy = model.rate(0.3, -0.5, rng).score();
  const double cheerful = model.rate(0.3, 0.5, rng).score();
  EXPECT_LT(grumpy, neutral);
  EXPECT_GT(cheerful, neutral);
}

TEST(MosModel, ParameterValidation) {
  MosModelParams bad;
  bad.sampling_rate = 1.5;
  EXPECT_THROW(MosModel{bad}, std::invalid_argument);
  bad.sampling_rate = 0.01;
  bad.gamma = 0.0;
  EXPECT_THROW(MosModel{bad}, std::invalid_argument);
}

TEST(MosModel, DrawUserBiasCentered) {
  const MosModel model;
  core::Rng rng{6};
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += model.draw_user_bias(rng);
  EXPECT_NEAR(acc / n, 0.0, 0.01);
}

}  // namespace
}  // namespace usaas::confsim
