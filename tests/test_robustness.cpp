// Robustness / fuzz tests: the user-facing substrates must survive
// arbitrary garbage — social text and OCR output are adversarially messy
// in the wild, and a production USaaS ingests them unvetted.
#include <gtest/gtest.h>

#include <string>

#include "core/rng.h"
#include "nlp/keywords.h"
#include "nlp/post_scorer.h"
#include "nlp/sentiment.h"
#include "nlp/summarizer.h"
#include "nlp/tokenizer.h"
#include "nlp/wordcloud.h"
#include "ocr/extract.h"
#include "ocr/noisy_ocr.h"

namespace usaas {
namespace {

std::string random_bytes(core::Rng& rng, std::size_t max_len) {
  const auto len = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.uniform_int(1, 255)));
  }
  return out;
}

std::string random_printable(core::Rng& rng, std::size_t max_len) {
  const auto len = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  static constexpr char kAlphabet[] =
      " \n\tabcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789.,:;!?'\"-()/%";
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.uniform_int(
        0, static_cast<std::int64_t>(sizeof(kAlphabet)) - 2)]);
  }
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, SentimentNeverBreaksSimplex) {
  core::Rng rng{static_cast<std::uint64_t>(GetParam()) * 101 + 1};
  const nlp::SentimentAnalyzer analyzer;
  for (int i = 0; i < 300; ++i) {
    const std::string text =
        i % 2 == 0 ? random_bytes(rng, 400) : random_printable(rng, 400);
    const auto s = analyzer.score(text);
    ASSERT_GE(s.positive, 0.0);
    ASSERT_GE(s.negative, 0.0);
    ASSERT_GE(s.neutral, 0.0);
    ASSERT_NEAR(s.positive + s.negative + s.neutral, 1.0, 1e-9);
  }
}

TEST_P(FuzzSeeds, TokenizerNeverProducesEmptyTokens) {
  core::Rng rng{static_cast<std::uint64_t>(GetParam()) * 103 + 2};
  nlp::TokenScratch scratch;
  for (int i = 0; i < 300; ++i) {
    const std::string text = random_bytes(rng, 500);
    for (const auto& token : nlp::tokenize_into(text, scratch)) {
      ASSERT_FALSE(token.text.empty());
    }
  }
}

TEST_P(FuzzSeeds, FusedScorerMatchesTwoPhaseOnGarbage) {
  core::Rng rng{static_cast<std::uint64_t>(GetParam()) * 137 + 8};
  const nlp::PostScorer scorer;
  ASSERT_TRUE(scorer.fused());
  const nlp::SentimentAnalyzer analyzer;
  const auto& dict = nlp::KeywordDictionary::outage_dictionary();
  nlp::TokenScratch scratch;
  for (int i = 0; i < 300; ++i) {
    const std::string text =
        i % 2 == 0 ? random_bytes(rng, 400) : random_printable(rng, 400);
    const auto fused = scorer.score(text);
    const auto tokens = nlp::tokenize_into(text, scratch);
    const auto s = analyzer.score(tokens, text);
    ASSERT_EQ(fused.sentiment.positive, s.positive);
    ASSERT_EQ(fused.sentiment.negative, s.negative);
    ASSERT_EQ(fused.sentiment.neutral, s.neutral);
    ASSERT_EQ(fused.keyword_hits,
              dict.count_occurrences(tokens, scratch.bigram));
    ASSERT_NEAR(fused.sentiment.positive + fused.sentiment.negative +
                    fused.sentiment.neutral,
                1.0, 1e-9);
  }
}

TEST_P(FuzzSeeds, ExtractorNeverThrowsOnGarbage) {
  core::Rng rng{static_cast<std::uint64_t>(GetParam()) * 107 + 3};
  const ocr::ReportExtractor extractor;
  ocr::ExtractionStats stats;
  for (int i = 0; i < 300; ++i) {
    const std::string text =
        i % 2 == 0 ? random_bytes(rng, 600) : random_printable(rng, 600);
    const auto report = extractor.extract(text, &stats);
    if (report) {
      // Whatever it found must at least be plausible.
      ASSERT_GE(report->download_mbps, ocr::ReportExtractor::kMinPlausibleDown);
      ASSERT_LE(report->download_mbps, ocr::ReportExtractor::kMaxPlausibleDown);
    }
  }
  EXPECT_EQ(stats.attempted, 300u);
}

TEST_P(FuzzSeeds, NoisyOcrAtExtremeRatesStillTerminates) {
  core::Rng rng{static_cast<std::uint64_t>(GetParam()) * 109 + 4};
  ocr::OcrNoiseParams violent;
  violent.confusion_rate = 0.9;
  violent.drop_rate = 0.5;
  violent.line_loss_rate = 0.5;
  const ocr::NoisyOcr channel{violent};
  for (int i = 0; i < 100; ++i) {
    const std::string text = random_printable(rng, 400);
    const std::string read = channel.read(text, rng);
    ASSERT_LE(read.size(), text.size());
  }
}

TEST_P(FuzzSeeds, KeywordCountingHandlesArbitraryText) {
  core::Rng rng{static_cast<std::uint64_t>(GetParam()) * 113 + 5};
  const auto& dict = nlp::KeywordDictionary::outage_dictionary();
  for (int i = 0; i < 300; ++i) {
    const std::string text = random_bytes(rng, 500);
    const auto hits = dict.count_occurrences(text);
    ASSERT_EQ(dict.matches(text), hits > 0);
  }
}

TEST_P(FuzzSeeds, SummarizerHandlesArbitraryDocuments) {
  core::Rng rng{static_cast<std::uint64_t>(GetParam()) * 127 + 6};
  const nlp::Summarizer summarizer;
  std::vector<std::string> docs;
  for (int i = 0; i < 20; ++i) docs.push_back(random_printable(rng, 300));
  const auto summary = summarizer.summarize(docs);
  EXPECT_LE(summary.size(), 3u);
}

TEST_P(FuzzSeeds, WordCloudOnGarbageIsWellFormed) {
  core::Rng rng{static_cast<std::uint64_t>(GetParam()) * 131 + 7};
  std::vector<std::string> docs;
  for (int i = 0; i < 20; ++i) docs.push_back(random_bytes(rng, 300));
  const auto cloud = nlp::WordCloud::build(docs, 10);
  for (const auto& w : cloud.words()) {
    ASSERT_FALSE(w.word.empty());
    ASSERT_GT(w.relative_size, 0.0);
    ASSERT_LE(w.relative_size, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 6));

}  // namespace
}  // namespace usaas
