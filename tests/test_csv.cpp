#include "core/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace usaas::core {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvTable t{{"a", "b"}};
  t.add_row({"1", "2"});
  t.add_numeric_row({3.5, 4.25});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.to_string(), "a,b\n1,2\n3.5,4.25\n");
}

TEST(Csv, ArityChecked) {
  CsvTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(CsvTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(CsvTable::escape("plain"), "plain");
  EXPECT_EQ(CsvTable::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvTable::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvTable::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, EscapedCellsRoundTripInOutput) {
  CsvTable t{{"text"}};
  t.add_row({"hello, \"world\""});
  EXPECT_EQ(t.to_string(), "text\n\"hello, \"\"world\"\"\"\n");
}

TEST(Csv, WriteFile) {
  const std::string path = "/tmp/usaas_csv_test.csv";
  CsvTable t{{"x", "y"}};
  t.add_numeric_row({1.0, 2.0});
  t.write_file(path);
  std::ifstream in{path};
  std::string content{std::istreambuf_iterator<char>{in},
                      std::istreambuf_iterator<char>{}};
  EXPECT_EQ(content, "x,y\n1,2\n");
  std::remove(path.c_str());
}

TEST(Csv, WriteFileFailsOnBadPath) {
  CsvTable t{{"x"}};
  EXPECT_THROW(t.write_file("/nonexistent-dir/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace usaas::core
