#include <gtest/gtest.h>

#include "core/rng.h"
#include "netsim/conditions.h"
#include "netsim/loss.h"
#include "netsim/path_model.h"
#include "netsim/profiles.h"
#include "netsim/telemetry.h"

namespace usaas::netsim {
namespace {

using core::Milliseconds;
using core::Rng;

TEST(Conditions, MetricAccessors) {
  NetworkConditions c;
  c.latency = Milliseconds{50.0};
  c.loss = core::Percent{1.5};
  c.jitter = Milliseconds{4.0};
  c.bandwidth = core::Mbps{3.2};
  EXPECT_DOUBLE_EQ(metric_value(c, Metric::kLatency), 50.0);
  EXPECT_DOUBLE_EQ(metric_value(c, Metric::kLoss), 1.5);
  EXPECT_DOUBLE_EQ(metric_value(c, Metric::kJitter), 4.0);
  EXPECT_DOUBLE_EQ(metric_value(c, Metric::kBandwidth), 3.2);
}

TEST(Conditions, OthersInControlFiltersCorrectly) {
  NetworkConditions c;
  c.latency = Milliseconds{250.0};  // swept metric, out of control window
  c.loss = core::Percent{0.1};
  c.jitter = Milliseconds{2.0};
  c.bandwidth = core::Mbps{3.5};
  EXPECT_TRUE(others_in_control(c, Metric::kLatency));
  // When sweeping loss instead, the high latency disqualifies the session.
  EXPECT_FALSE(others_in_control(c, Metric::kLoss));
}

TEST(Profiles, AllTechnologiesProduceValidConditions) {
  Rng rng{1};
  for (const auto t :
       {AccessTechnology::kFiber, AccessTechnology::kCable,
        AccessTechnology::kDsl, AccessTechnology::kWifiCongested,
        AccessTechnology::kLte, AccessTechnology::kGeoSatellite,
        AccessTechnology::kLeoSatellite}) {
    const auto p = profile_for(t);
    for (int i = 0; i < 200; ++i) {
      const auto c = sample_session_baseline(p, rng);
      EXPECT_GT(c.latency.ms(), 0.0);
      EXPECT_GE(c.loss.percent(), 0.0);
      EXPECT_LE(c.loss.percent(), 100.0);
      EXPECT_GE(c.jitter.ms(), 0.0);
      EXPECT_GE(c.bandwidth.mbps(), p.bw_floor_mbps);
      EXPECT_LE(c.bandwidth.mbps(), p.bw_ceil_mbps);
    }
  }
}

TEST(Profiles, GeoSatelliteHasHighestLatency) {
  Rng rng{2};
  auto mean_latency = [&](AccessTechnology t) {
    double acc = 0.0;
    for (int i = 0; i < 2000; ++i) {
      acc += sample_session_baseline(profile_for(t), rng).latency.ms();
    }
    return acc / 2000.0;
  };
  const double fiber = mean_latency(AccessTechnology::kFiber);
  const double geo = mean_latency(AccessTechnology::kGeoSatellite);
  EXPECT_GT(geo, 10.0 * fiber);
}

TEST(Profiles, MixtureWeightsSumToOne) {
  double total = 0.0;
  for (const auto& m : default_access_mixture()) total += m.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Profiles, SweepClampsControlledMetrics) {
  Rng rng{3};
  const ControlWindows w;
  for (int i = 0; i < 500; ++i) {
    const auto c = sample_sweep(Metric::kLatency, 0.0, 300.0, w, rng);
    EXPECT_GE(c.latency.ms(), 0.0);
    EXPECT_LE(c.latency.ms(), 300.0);
    EXPECT_TRUE(others_in_control(c, Metric::kLatency, w));
  }
  EXPECT_THROW((void)sample_sweep(Metric::kLoss, 2.0, 1.0, w, rng),
               std::invalid_argument);
}

TEST(GilbertElliott, StationaryLossMatchesTarget) {
  Rng rng{4};
  auto ge = GilbertElliott::for_target_loss(0.02, 4.0);
  EXPECT_NEAR(ge.stationary_loss(), 0.02, 1e-9);
  int lost = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) lost += ge.packet_lost(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.02, 0.003);
}

TEST(GilbertElliott, ProducesBursts) {
  Rng rng{5};
  auto ge = GilbertElliott::for_target_loss(0.05, 8.0);
  // Count runs of consecutive losses; bursty channels have long runs.
  int longest = 0;
  int current = 0;
  for (int i = 0; i < 200000; ++i) {
    if (ge.packet_lost(rng)) {
      ++current;
      longest = std::max(longest, current);
    } else {
      current = 0;
    }
  }
  EXPECT_GE(longest, 8);
}

TEST(GilbertElliott, Validation) {
  EXPECT_THROW(GilbertElliott(1.5, 0.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GilbertElliott(0.1, 0.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)GilbertElliott::for_target_loss(1.0, 4.0),
               std::invalid_argument);
  EXPECT_THROW((void)GilbertElliott::for_target_loss(0.1, 0.5),
               std::invalid_argument);
}

TEST(LossMitigation, ResidualMonotoneInRawLoss) {
  const Milliseconds rtt{40.0};
  double prev = 0.0;
  for (double raw = 0.0; raw <= 0.2; raw += 0.005) {
    const double r = residual_loss(raw, rtt);
    EXPECT_GE(r, prev - 1e-12);
    EXPECT_LE(r, raw + 1e-12);
    prev = r;
  }
}

TEST(LossMitigation, SuppressesLowLossStrongly) {
  // The paper's Fig 1 (middle-left) story: 2% raw loss is nearly invisible
  // after the app-layer safeguards.
  const double residual = residual_loss(0.02, Milliseconds{40.0});
  EXPECT_LT(residual, 0.004);
  EXPECT_GT(residual_loss(0.05, Milliseconds{40.0}), residual);
}

TEST(LossMitigation, HighRttDisablesRetransmission) {
  // The Fig 2 compounding mechanism: at 600 ms RTT the retransmit round
  // no longer fits in the de-jitter budget.
  const double low_rtt = residual_loss(0.03, Milliseconds{60.0});
  const double high_rtt = residual_loss(0.03, Milliseconds{600.0});
  EXPECT_GT(high_rtt, 2.0 * low_rtt);
}

TEST(LossMitigation, DisabledPassesRawThrough) {
  MitigationConfig off;
  off.enabled = false;
  EXPECT_DOUBLE_EQ(residual_loss(0.03, Milliseconds{40.0}, off), 0.03);
}

TEST(LossImpairment, ThresholdShape) {
  EXPECT_DOUBLE_EQ(loss_impairment(0.0), 0.0);
  EXPECT_DOUBLE_EQ(loss_impairment(0.001), 0.0);  // concealment hides it
  EXPECT_GT(loss_impairment(0.01), 0.0);
  EXPECT_DOUBLE_EQ(loss_impairment(0.10), 1.0);
  EXPECT_LE(loss_impairment(0.03), 1.0);
}

TEST(PathModel, SamplesStayPositiveAndFiniteish) {
  NetworkConditions base;
  base.latency = Milliseconds{30.0};
  base.loss = core::Percent{0.5};
  base.jitter = Milliseconds{3.0};
  base.bandwidth = core::Mbps{3.0};
  const auto path = simulate_path(base, {}, 2000, Rng{6});
  ASSERT_EQ(path.size(), 2000u);
  for (const auto& c : path) {
    EXPECT_GT(c.latency.ms(), 0.0);
    EXPECT_GE(c.loss.percent(), 0.0);
    EXPECT_LE(c.loss.percent(), 100.0);
    EXPECT_GT(c.bandwidth.mbps(), 0.0);
  }
}

TEST(PathModel, MeanTracksBaseline) {
  NetworkConditions base;
  base.latency = Milliseconds{50.0};
  base.loss = core::Percent{0.2};
  base.jitter = Milliseconds{2.0};
  base.bandwidth = core::Mbps{3.5};
  PathModelConfig cfg;
  cfg.episode_start_prob = 0.0;  // isolate the AR(1) behaviour
  const auto path = simulate_path(base, cfg, 20000, Rng{7});
  double acc = 0.0;
  for (const auto& c : path) acc += c.latency.ms();
  EXPECT_NEAR(acc / static_cast<double>(path.size()), 50.0, 5.0);
}

TEST(PathModel, EpisodesRaiseLatency) {
  NetworkConditions base;
  base.latency = Milliseconds{30.0};
  base.loss = core::Percent{0.1};
  base.jitter = Milliseconds{2.0};
  base.bandwidth = core::Mbps{3.0};
  PathModelConfig calm;
  calm.episode_start_prob = 0.0;
  PathModelConfig stormy;
  stormy.episode_start_prob = 0.2;
  stormy.episode_end_prob = 0.05;
  auto mean_lat = [&](const PathModelConfig& cfg) {
    const auto path = simulate_path(base, cfg, 5000, Rng{8});
    double acc = 0.0;
    for (const auto& c : path) acc += c.latency.ms();
    return acc / static_cast<double>(path.size());
  };
  EXPECT_GT(mean_lat(stormy), mean_lat(calm) * 1.3);
}

TEST(PathModel, ConfigValidation) {
  NetworkConditions base;
  PathModelConfig bad;
  bad.persistence = 1.0;
  EXPECT_THROW(PathModel(base, bad, Rng{9}), std::invalid_argument);
  bad.persistence = 0.5;
  bad.noise_scale = -0.1;
  EXPECT_THROW(PathModel(base, bad, Rng{9}), std::invalid_argument);
}

TEST(Telemetry, AggregatesMatchDirectStats) {
  Rng rng{10};
  TelemetryCollector collector;
  std::vector<double> latencies;
  for (int i = 0; i < 360; ++i) {  // a 30-minute session at 5 s cadence
    NetworkConditions c;
    c.latency = Milliseconds{rng.uniform(10.0, 90.0)};
    c.loss = core::Percent{rng.uniform(0.0, 1.0)};
    c.jitter = Milliseconds{rng.uniform(0.0, 8.0)};
    c.bandwidth = core::Mbps{rng.uniform(1.0, 4.0)};
    collector.record(c);
    latencies.push_back(c.latency.ms());
  }
  const auto s = collector.finalize();
  EXPECT_EQ(s.sample_count, 360u);
  EXPECT_DOUBLE_EQ(s.duration_seconds, 1800.0);
  EXPECT_NEAR(s.latency_ms.mean, core::mean(latencies), 1e-9);
  EXPECT_NEAR(s.latency_ms.median, core::median(latencies), 1e-9);
  EXPECT_NEAR(s.latency_ms.p95, core::p95(latencies), 1e-9);
}

TEST(Telemetry, BandwidthTailIsLowSide) {
  TelemetryCollector collector;
  for (int i = 1; i <= 100; ++i) {
    NetworkConditions c;
    c.latency = Milliseconds{10.0};
    c.bandwidth = core::Mbps{static_cast<double>(i)};
    collector.record(c);
  }
  const auto s = collector.finalize();
  // P5 of 1..100 is ~5.95, far below the mean.
  EXPECT_LT(s.bandwidth_mbps.p95, s.bandwidth_mbps.mean);
}

TEST(Telemetry, EmptyFinalizeThrows) {
  const TelemetryCollector collector;
  EXPECT_THROW((void)collector.finalize(), std::logic_error);
}

TEST(Telemetry, MeanConditionsRoundTrip) {
  TelemetryCollector collector;
  NetworkConditions c;
  c.latency = Milliseconds{42.0};
  c.loss = core::Percent{1.0};
  c.jitter = Milliseconds{3.0};
  c.bandwidth = core::Mbps{2.0};
  collector.record(c);
  const auto s = collector.finalize();
  const auto mean_c = s.mean_conditions();
  EXPECT_DOUBLE_EQ(mean_c.latency.ms(), 42.0);
  EXPECT_DOUBLE_EQ(mean_c.loss.percent(), 1.0);
  EXPECT_DOUBLE_EQ(mean_c.bandwidth.mbps(), 2.0);
}

}  // namespace
}  // namespace usaas::netsim
