#include "nlp/summarizer.h"

#include "nlp/tokenizer.h"

#include <gtest/gtest.h>

namespace usaas::nlp {
namespace {

TEST(SplitSentences, BasicBoundaries) {
  const auto s = Summarizer::split_sentences(
      "First sentence. Second one! Third? trailing fragment");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], "First sentence.");
  EXPECT_EQ(s[1], "Second one!");
  EXPECT_EQ(s[2], "Third?");
  EXPECT_EQ(s[3], "trailing fragment");
}

TEST(SplitSentences, EmptyAndWhitespace) {
  EXPECT_TRUE(Summarizer::split_sentences("").empty());
  EXPECT_TRUE(Summarizer::split_sentences("   ").size() <= 1);
}

TEST(Summarizer, PicksTheDominantTopic) {
  const std::vector<std::string> docs{
      "Total outage here, service completely down since morning.",
      "Another outage report, internet down across the whole region.",
      "Outage confirmed, everything down, neighbors offline too.",
      "Nice sunset photo from the backyard.",
  };
  const Summarizer summarizer;
  const auto summary = summarizer.summarize(docs);
  ASSERT_FALSE(summary.empty());
  // The top sentence is about the outage, not the sunset.
  EXPECT_NE(to_lower(summary.front().text).find("outage"),
            std::string::npos);
}

TEST(Summarizer, RedundancySuppressed) {
  SummarizerConfig cfg;
  cfg.max_sentences = 2;
  const Summarizer summarizer{cfg};
  const std::vector<std::string> docs{
      "The outage broke service tonight.",
      "The outage broke service tonight.",
      "The outage broke service tonight.",
      "Speeds were excellent all week in the mountains.",
  };
  const auto summary = summarizer.summarize(docs);
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_NE(summary[0].text, summary[1].text);
}

TEST(Summarizer, RespectsMaxSentences) {
  SummarizerConfig cfg;
  cfg.max_sentences = 1;
  const Summarizer summarizer{cfg};
  const std::vector<std::string> docs{
      "Alpha topic sentence with several content words.",
      "Beta topic sentence with different content words."};
  EXPECT_EQ(summarizer.summarize(docs).size(), 1u);
}

TEST(Summarizer, FragmentsNeverPicked) {
  const Summarizer summarizer;
  const std::vector<std::string> docs{"Ok.", "Yes!", "No?",
                                      "A proper sentence about the network "
                                      "outage and its painful downtime."};
  const auto summary = summarizer.summarize(docs);
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_NE(summary[0].text.find("proper sentence"), std::string::npos);
}

TEST(Summarizer, EmptyCorpus) {
  const Summarizer summarizer;
  EXPECT_TRUE(summarizer.summarize({}).empty());
  EXPECT_TRUE(summarizer.summarize_to_text({}).empty());
}

TEST(Summarizer, Deterministic) {
  const std::vector<std::string> docs{
      "Outage reports everywhere tonight, service down.",
      "Speeds fine here, no problems at all.",
      "Dish survived the storm, neat little device."};
  const Summarizer summarizer;
  EXPECT_EQ(summarizer.summarize_to_text(docs),
            summarizer.summarize_to_text(docs));
}

TEST(Summarizer, DocumentIndexTracked) {
  const std::vector<std::string> docs{
      "Short filler.",
      "The important outage sentence about downtime and failures tonight."};
  const auto summary = Summarizer{}.summarize(docs);
  ASSERT_FALSE(summary.empty());
  EXPECT_EQ(summary.front().document, 1u);
}

}  // namespace
}  // namespace usaas::nlp
