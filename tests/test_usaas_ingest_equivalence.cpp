// Ingest-equivalence property tests for the two-pass counted batch
// pipeline: batch ingest must be indistinguishable from one-record-at-a-
// time ingest — bit-identical query results — for every ShardingPolicy,
// at every thread count, including batches whose calls/posts straddle
// month and year boundaries, and for empty batches.
//
// Registered under the `sanitize` ctest label: with -DUSAAS_SANITIZE=thread
// this is the ThreadSanitizer workload for the two-pass parallel writes
// (pass 1's per-chunk counting and pass 2's scatter into shared shard
// buffers). The suite runs with USAAS_PARALLEL_FORCE=1 so fan-out is real
// even on single-core CI hosts.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "confsim/call.h"
#include "core/rng.h"
#include "social/post.h"
#include "usaas/query_service.h"

namespace usaas::service {
namespace {

using core::Date;

// ---- A hand-built corpus that stresses shard-boundary routing --------
// Calls cluster on the days around month and year boundaries (the exact
// records the old merge path could misroute), plus a spread through 2022.

std::vector<confsim::CallRecord> boundary_calls(std::uint64_t seed,
                                                std::size_t calls_per_day) {
  const Date days[] = {
      {2021, 12, 30}, {2021, 12, 31}, {2022, 1, 1},  {2022, 1, 2},
      {2022, 1, 31},  {2022, 2, 1},   {2022, 2, 28}, {2022, 3, 1},
      {2022, 3, 15},  {2022, 6, 30},  {2022, 7, 1},  {2022, 12, 31},
      {2023, 1, 1},
  };
  constexpr confsim::Platform kPlatforms[] = {
      confsim::Platform::kWindowsPc, confsim::Platform::kMacPc,
      confsim::Platform::kIos, confsim::Platform::kAndroid};
  constexpr netsim::AccessTechnology kAccess[] = {
      netsim::AccessTechnology::kFiber, netsim::AccessTechnology::kCable,
      netsim::AccessTechnology::kLeoSatellite};
  core::Rng rng{seed};
  std::vector<confsim::CallRecord> calls;
  std::uint64_t call_id = 0;
  for (const Date& day : days) {
    for (std::size_t c = 0; c < calls_per_day; ++c) {
      confsim::CallRecord call;
      call.call_id = call_id++;
      call.start.date = day;
      call.start.time = {10, 30};
      const int participants = 3 + static_cast<int>(rng.uniform_int(0, 2));
      for (int p = 0; p < participants; ++p) {
        confsim::ParticipantRecord rec;
        rec.user_id = call.call_id * 8 + static_cast<std::uint64_t>(p);
        rec.platform = kPlatforms[rng.uniform_int(0, 3)];
        rec.meeting_size = participants;
        rec.access = kAccess[rng.uniform_int(0, 2)];
        const double latency = 20.0 + rng.uniform(0.0, 250.0);
        const auto agg = [](double v) {
          return netsim::MetricAggregate{v, v * 0.95, v * 1.7};
        };
        rec.network.latency_ms = agg(latency);
        rec.network.loss_pct = agg(rng.uniform(0.0, 3.0));
        rec.network.jitter_ms = agg(rng.uniform(0.0, 15.0));
        rec.network.bandwidth_mbps = agg(1.0 + rng.uniform(0.0, 50.0));
        rec.network.duration_seconds = 1800.0;
        rec.network.sample_count = 360;
        rec.presence_pct = std::max(0.0, 95.0 - latency / 8.0);
        rec.cam_on_pct = std::max(0.0, 60.0 - latency / 6.0);
        rec.mic_on_pct = std::max(0.0, 35.0 - latency / 10.0);
        rec.dropped_early = rng.bernoulli(0.05);
        if (rng.bernoulli(0.15)) {
          rec.mos = core::clamp_mos(core::Mos{4.5 - latency / 120.0});
        }
        call.participants.push_back(rec);
      }
      calls.push_back(std::move(call));
    }
  }
  return calls;
}

std::vector<social::Post> boundary_posts(std::uint64_t seed,
                                         std::size_t posts_per_day) {
  static const char* kBodies[] = {
      "service went down tonight, complete outage, everything offline",
      "the connection has been great lately, fast and reliable",
      "pretty average week, speeds are okay, nothing special",
      "lost connection during calls, not working, is the network down",
  };
  const Date days[] = {
      {2021, 12, 31}, {2022, 1, 1},  {2022, 1, 31}, {2022, 2, 1},
      {2022, 2, 28},  {2022, 3, 1},  {2022, 8, 15}, {2022, 12, 31},
      {2023, 1, 1},
  };
  core::Rng rng{seed};
  std::vector<social::Post> posts;
  std::uint64_t id = 0;
  for (const Date& day : days) {
    for (std::size_t i = 0; i < posts_per_day; ++i) {
      social::Post post;
      post.id = id++;
      post.date = day;
      post.author_id = rng.uniform_int(1, 500);
      post.title = "experience report";
      post.body = kBodies[rng.uniform_int(0, 3)];
      post.upvotes = static_cast<int>(rng.uniform_int(0, 50));
      post.num_comments = static_cast<int>(rng.uniform_int(0, 10));
      posts.push_back(std::move(post));
    }
  }
  return posts;
}

std::vector<Query> battery() {
  std::vector<Query> queries;
  Query base;
  base.first = Date(2021, 12, 1);
  base.last = Date(2023, 1, 31);
  base.metric = netsim::Metric::kLatency;
  base.metric_lo = 0.0;
  base.metric_hi = 300.0;
  base.bins = 6;
  queries.push_back(base);  // everything

  Query year_straddle = base;  // window crossing the 2021->2022 boundary
  year_straddle.first = Date(2021, 12, 15);
  year_straddle.last = Date(2022, 1, 15);
  queries.push_back(year_straddle);

  Query month_straddle = base;  // Jan 31 / Feb 1 on both edges
  month_straddle.first = Date(2022, 1, 31);
  month_straddle.last = Date(2022, 2, 1);
  queries.push_back(month_straddle);

  Query single_day = base;  // exactly one boundary day
  single_day.first = Date(2022, 12, 31);
  single_day.last = Date(2022, 12, 31);
  queries.push_back(single_day);

  Query platform = year_straddle;  // boundary window + shard-column prune
  platform.platform = confsim::Platform::kAndroid;
  queries.push_back(platform);

  Query access = base;  // per-record predicate on top of pruning
  access.access = netsim::AccessTechnology::kLeoSatellite;
  queries.push_back(access);

  Query empty_window = base;  // a window with no records at all
  empty_window.first = Date(2024, 5, 1);
  empty_window.last = Date(2024, 5, 31);
  queries.push_back(empty_window);

  return queries;
}

// Batch vs one-by-one use the same shard layout, so equivalence is
// bit-exact — no tolerance anywhere.
void expect_identical(const Insight& a, const Insight& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.rated_sessions, b.rated_sessions);
  EXPECT_EQ(a.posts, b.posts);
  EXPECT_EQ(a.outage_mention_days, b.outage_mention_days);
  EXPECT_EQ(a.outage_alert_days, b.outage_alert_days);
  EXPECT_DOUBLE_EQ(a.strong_positive_share, b.strong_positive_share);
  ASSERT_EQ(a.engagement.size(), b.engagement.size());
  for (std::size_t c = 0; c < a.engagement.size(); ++c) {
    ASSERT_EQ(a.engagement[c].points.size(), b.engagement[c].points.size());
    for (std::size_t p = 0; p < a.engagement[c].points.size(); ++p) {
      EXPECT_EQ(a.engagement[c].points[p].sessions,
                b.engagement[c].points[p].sessions);
      EXPECT_DOUBLE_EQ(a.engagement[c].points[p].engagement,
                       b.engagement[c].points[p].engagement);
    }
  }
  ASSERT_EQ(a.mos_spearman.size(), b.mos_spearman.size());
  for (std::size_t i = 0; i < a.mos_spearman.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.mos_spearman[i].second, b.mos_spearman[i].second);
  }
  ASSERT_EQ(a.observed_mean_mos.has_value(), b.observed_mean_mos.has_value());
  if (a.observed_mean_mos) {
    EXPECT_DOUBLE_EQ(*a.observed_mean_mos, *b.observed_mean_mos);
  }
  ASSERT_EQ(a.predicted_mean_mos.has_value(),
            b.predicted_mean_mos.has_value());
  if (a.predicted_mean_mos) {
    EXPECT_DOUBLE_EQ(*a.predicted_mean_mos, *b.predicted_mean_mos);
  }
}

struct Corpus {
  std::vector<confsim::CallRecord> calls;
  std::vector<social::Post> posts;
};

Corpus make_corpus(std::uint64_t seed) {
  return {boundary_calls(seed, 12), boundary_posts(seed ^ 0x5eed, 6)};
}

QueryService batch_service(const Corpus& corpus, QueryServiceConfig config) {
  QueryService svc{config};
  svc.ingest_calls(corpus.calls);
  svc.ingest_posts(corpus.posts);
  svc.train_predictor();
  return svc;
}

QueryService one_by_one_service(const Corpus& corpus,
                                QueryServiceConfig config) {
  QueryService svc{config};
  const std::span<const confsim::CallRecord> calls{corpus.calls};
  for (std::size_t i = 0; i < calls.size(); ++i) {
    svc.ingest_calls(calls.subspan(i, 1));
  }
  const std::span<const social::Post> posts{corpus.posts};
  for (std::size_t i = 0; i < posts.size(); ++i) {
    svc.ingest_posts(posts.subspan(i, 1));
  }
  svc.train_predictor();
  return svc;
}

TEST(IngestEquivalence, BatchMatchesOneByOneAcrossPoliciesAndThreads) {
  const Corpus corpus = make_corpus(1234);
  for (const ShardingPolicy policy :
       {ShardingPolicy::kSingleShard, ShardingPolicy::kMonthPlatform}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      SCOPED_TRACE(testing::Message()
                   << "policy "
                   << (policy == ShardingPolicy::kSingleShard ? "single"
                                                              : "month")
                   << ", threads " << threads);
      const QueryService batched = batch_service(corpus, {policy, threads});
      const QueryService serial = one_by_one_service(corpus, {policy, 1});
      ASSERT_EQ(batched.ingested_sessions(), serial.ingested_sessions());
      ASSERT_EQ(batched.ingested_posts(), serial.ingested_posts());
      ASSERT_EQ(batched.session_shards(), serial.session_shards());
      ASSERT_EQ(batched.post_shards(), serial.post_shards());
      for (const Query& q : battery()) {
        expect_identical(batched.run(q), serial.run(q));
      }
    }
  }
}

TEST(IngestEquivalence, SplitBatchesMatchOneBigBatch) {
  // Repeated ingestion in uneven slices (including a slice of one call)
  // appends to existing shards exactly like a single batch would.
  const Corpus corpus = make_corpus(77);
  const QueryService whole =
      batch_service(corpus, {ShardingPolicy::kMonthPlatform, 4});
  QueryService sliced{{ShardingPolicy::kMonthPlatform, 4}};
  const std::span<const confsim::CallRecord> calls{corpus.calls};
  const std::size_t cut1 = calls.size() / 3;
  sliced.ingest_calls(calls.subspan(0, cut1));
  sliced.ingest_calls(calls.subspan(cut1, 1));
  sliced.ingest_calls(calls.subspan(cut1 + 1));
  const std::span<const social::Post> posts{corpus.posts};
  sliced.ingest_posts(posts.subspan(0, posts.size() / 2));
  sliced.ingest_posts(posts.subspan(posts.size() / 2));
  sliced.train_predictor();
  ASSERT_EQ(whole.ingested_sessions(), sliced.ingested_sessions());
  ASSERT_EQ(whole.session_shards(), sliced.session_shards());
  for (const Query& q : battery()) {
    expect_identical(whole.run(q), sliced.run(q));
  }
}

TEST(IngestEquivalence, EmptyBatchIsANoOp) {
  const Corpus corpus = make_corpus(9);
  for (const ShardingPolicy policy :
       {ShardingPolicy::kSingleShard, ShardingPolicy::kMonthPlatform}) {
    QueryService with_empties{{policy, 2}};
    with_empties.ingest_calls({});  // before any data
    with_empties.ingest_posts({});
    with_empties.ingest_calls(corpus.calls);
    with_empties.ingest_calls({});  // between batches
    with_empties.ingest_posts(corpus.posts);
    with_empties.ingest_posts({});
    with_empties.train_predictor();
    EXPECT_EQ(with_empties.ingested_sessions(),
              [&] {
                std::size_t n = 0;
                for (const auto& c : corpus.calls) n += c.participants.size();
                return n;
              }());
    EXPECT_EQ(with_empties.ingested_posts(), corpus.posts.size());
    const QueryService clean = batch_service(corpus, {policy, 2});
    for (const Query& q : battery()) {
      expect_identical(with_empties.run(q), clean.run(q));
    }
  }
  // A service that only ever saw empty batches answers queries without
  // crashing and reports nothing.
  QueryService empty{{ShardingPolicy::kMonthPlatform, 2}};
  empty.ingest_calls({});
  empty.ingest_posts({});
  EXPECT_FALSE(empty.train_predictor());
  const Insight insight = empty.run(battery().front());
  EXPECT_EQ(insight.sessions, 0u);
  EXPECT_EQ(insight.posts, 0u);
}

TEST(IngestEquivalence, BoundaryWindowCountsMatchBruteForce) {
  // The sharded engine's answer on windows that slice shards at month and
  // year boundaries equals a direct scan of the raw corpus.
  const Corpus corpus = make_corpus(4321);
  const QueryService svc =
      batch_service(corpus, {ShardingPolicy::kMonthPlatform, 8});
  for (const Query& q : battery()) {
    std::size_t expected_sessions = 0;
    for (const auto& call : corpus.calls) {
      if (call.start.date < q.first || q.last < call.start.date) continue;
      for (const auto& rec : call.participants) {
        if (q.platform && rec.platform != *q.platform) continue;
        if (q.access && rec.access != *q.access) continue;
        ++expected_sessions;
      }
    }
    std::size_t expected_posts = 0;
    for (const auto& post : corpus.posts) {
      if (post.date < q.first || q.last < post.date) continue;
      ++expected_posts;
    }
    const Insight insight = svc.run(q);
    EXPECT_EQ(insight.sessions, expected_sessions);
    EXPECT_EQ(insight.posts, expected_posts);
  }
}

// ---- Hot-shard splitting --------------------------------------------
// A corpus where one month holds ~90% of the posts: the destination-major
// scatter must split that shard's slot range across workers (the cost
// model's grain guarantees it at these sizes), and the stitched result —
// scored posts, per-shard summaries, every Insight — must still be
// bit-identical to the 1-thread run.

std::vector<social::Post> hot_month_posts(std::uint64_t seed,
                                          std::size_t count) {
  static const char* kBodies[] = {
      "total outage tonight, service went down, everything offline again",
      "no service no internet, lost connection, not working at all",
      "honestly the connection has been great, fast and reliable, love it",
      "speeds are okay this week, nothing special to report",
      "NOT GOOD!! constant drops, really very slow, extremely frustrating",
      "isn't working, don't buy, the users' routers keep searching",
  };
  const Date cold_days[] = {
      {2021, 12, 31}, {2022, 1, 15}, {2022, 2, 1}, {2022, 6, 30},
      {2022, 7, 1},   {2022, 12, 31},
  };
  core::Rng rng{seed};
  std::vector<social::Post> posts;
  posts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    social::Post post;
    post.id = i;
    // 90% of the batch lands in March 2022 — one month shard.
    if (rng.uniform_int(0, 9) != 0) {
      post.date = Date(2022, 3, static_cast<int>(rng.uniform_int(1, 31)));
    } else {
      post.date = cold_days[rng.uniform_int(0, 5)];
    }
    post.author_id = rng.uniform_int(1, 500);
    post.title = "experience report";
    post.body = kBodies[rng.uniform_int(0, 5)];
    post.upvotes = static_cast<int>(rng.uniform_int(0, 50));
    post.num_comments = static_cast<int>(rng.uniform_int(0, 10));
    posts.push_back(std::move(post));
  }
  return posts;
}

std::vector<Query> hot_shard_battery() {
  std::vector<Query> queries = battery();
  Query whole_march;  // covers the hot month whole -> summary path
  whole_march.first = Date(2022, 3, 1);
  whole_march.last = Date(2022, 3, 31);
  queries.push_back(whole_march);
  Query partial_march = whole_march;  // slices the hot shard -> scan path
  partial_march.first = Date(2022, 3, 5);
  partial_march.last = Date(2022, 3, 20);
  queries.push_back(partial_march);
  return queries;
}

TEST(IngestEquivalence, HotShardSplitMatchesSingleThreadAcrossPolicies) {
  const auto posts = hot_month_posts(0x407, 4000);
  for (const ShardingPolicy policy :
       {ShardingPolicy::kSingleShard, ShardingPolicy::kMonthPlatform}) {
    QueryServiceConfig ref_config;
    ref_config.sharding = policy;
    ref_config.threads = 1;
    QueryService reference{ref_config};
    reference.ingest_posts(posts);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE(testing::Message()
                   << "policy "
                   << (policy == ShardingPolicy::kSingleShard ? "single"
                                                              : "month")
                   << ", threads " << threads);
      QueryServiceConfig config = ref_config;
      config.threads = threads;
      QueryService parallel{config};
      parallel.ingest_posts(posts);
      ASSERT_EQ(parallel.ingested_posts(), reference.ingested_posts());
      ASSERT_EQ(parallel.post_shards(), reference.post_shards());
      for (const Query& q : hot_shard_battery()) {
        expect_identical(parallel.run(q), reference.run(q));
      }
    }
  }
}

TEST(IngestEquivalence, HotShardSummariesMatchSingleThreadExactly) {
  // The whole-month query is answered from the per-shard summaries
  // (strong counts + day_hits folded during the split scatter); those
  // must agree with the 1-thread fold to full precision — 1e-9 is the
  // contract floor, EXPECT_DOUBLE_EQ is what we actually hold.
  const auto posts = hot_month_posts(99, 4000);
  QueryServiceConfig base;
  base.sharding = ShardingPolicy::kMonthPlatform;
  base.threads = 1;
  QueryService reference{base};
  reference.ingest_posts(posts);
  Query whole_march;
  whole_march.first = Date(2022, 3, 1);
  whole_march.last = Date(2022, 3, 31);
  const Insight ref_insight = reference.run(whole_march);
  // Prove the summary path actually served the hot month.
  EXPECT_GT(ref_insight.execution.post_shards_from_summary, 0u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    QueryServiceConfig config = base;
    config.threads = threads;
    QueryService parallel{config};
    parallel.ingest_posts(posts);
    const Insight got = parallel.run(whole_march);
    EXPECT_GT(got.execution.post_shards_from_summary, 0u);
    expect_identical(got, ref_insight);
    EXPECT_NEAR(got.strong_positive_share, ref_insight.strong_positive_share,
                1e-9);
    // The scan path over the scattered records agrees with the summary
    // path — record order in the shard is thread-count-independent.
    QueryServiceConfig scan_config = config;
    scan_config.shard_summaries = false;
    scan_config.insight_cache_entries = 0;
    QueryService scanner{scan_config};
    scanner.ingest_posts(posts);
    expect_identical(scanner.run(whole_march), ref_insight);
  }
}

TEST(IngestEquivalence, IngestStatsTrackRecordsAndShards) {
  const Corpus corpus = make_corpus(5);
  QueryService svc{{ShardingPolicy::kMonthPlatform, 2}};
  svc.ingest_calls(corpus.calls);
  svc.ingest_posts(corpus.posts);
  const QueryService::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.sessions.records, svc.ingested_sessions());
  EXPECT_EQ(stats.sessions.batches, 1u);
  EXPECT_EQ(stats.sessions.shards_touched, svc.session_shards());
  EXPECT_GT(stats.sessions.bytes_moved, 0u);
  EXPECT_GE(stats.sessions.total_seconds, 0.0);
  EXPECT_EQ(stats.posts.records, svc.ingested_posts());
  EXPECT_EQ(stats.posts.shards_touched, svc.post_shards());
  EXPECT_EQ(stats.session_shards, svc.session_shards());
  EXPECT_FALSE(to_string(stats.sessions).empty());
}

}  // namespace
}  // namespace usaas::service
