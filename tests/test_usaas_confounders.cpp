// §6 "Are networks to blame always?" — the confounder decomposition.
#include "usaas/confounders.h"

#include <gtest/gtest.h>

#include "confsim/dataset.h"

namespace usaas::service {
namespace {

std::vector<confsim::ParticipantRecord> population_sessions() {
  confsim::DatasetConfig cfg;
  cfg.seed = 123;
  cfg.num_calls = 8000;
  cfg.sampling = confsim::ConditionSampling::kPopulation;
  std::vector<confsim::ParticipantRecord> out;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) {
        for (const auto& p : call.participants) out.push_back(p);
      });
  return out;
}

class ConfounderTest : public ::testing::Test {
 protected:
  static const std::vector<confsim::ParticipantRecord>& sessions() {
    static const auto instance = population_sessions();
    return instance;
  }
};

TEST_F(ConfounderTest, ReportCoversAllFactors) {
  const auto report =
      analyze_confounders(sessions(), EngagementMetric::kPresence);
  EXPECT_EQ(report.effects.size(), 4u);
  for (const auto& e : report.effects) {
    EXPECT_GE(e.eta_squared, 0.0);
    EXPECT_LE(e.eta_squared, 1.0);
    EXPECT_GE(e.groups, 2u);
  }
}

TEST_F(ConfounderTest, MeetingSizeDominatesMicOn) {
  // Big meetings are mostly muted: for Mic On the meeting-size confounder
  // explains more variance than any network factor — exactly the trap §6
  // warns about when reading engagement naively.
  const auto report =
      analyze_confounders(sessions(), EngagementMetric::kMicOn);
  EXPECT_GT(report.effect_of(Factor::kMeetingSize),
            report.effect_of(Factor::kLatencyQuartile));
  EXPECT_GT(report.effect_of(Factor::kMeetingSize),
            report.effect_of(Factor::kLossQuartile));
}

TEST_F(ConfounderTest, NetworkMattersForPresence) {
  // For Presence, the network factors carry real weight relative to
  // meeting size (presence falls only ~0.4 pp per extra participant).
  const auto report =
      analyze_confounders(sessions(), EngagementMetric::kPresence);
  EXPECT_GT(report.effect_of(Factor::kLatencyQuartile),
            report.effect_of(Factor::kMeetingSize));
}

TEST_F(ConfounderTest, LatencyEffectSurvivesStratification) {
  // The latency -> presence drop is not a meeting-size artifact: it
  // persists within each meeting-size stratum at similar magnitude.
  const auto effect = latency_effect_within_meeting_size(
      sessions(), EngagementMetric::kPresence);
  EXPECT_GT(effect.strata_used, 1u);
  EXPECT_GT(effect.raw_drop, 1.0);
  EXPECT_GT(effect.stratified_drop, 0.5 * effect.raw_drop);
  EXPECT_LT(effect.stratified_drop, 1.5 * effect.raw_drop);
}

TEST_F(ConfounderTest, RequiresEnoughSessions) {
  const std::vector<confsim::ParticipantRecord> tiny(
      sessions().begin(), sessions().begin() + 50);
  EXPECT_THROW(analyze_confounders(tiny, EngagementMetric::kPresence),
               std::invalid_argument);
  EXPECT_THROW(
      (void)latency_effect_within_meeting_size(tiny, EngagementMetric::kPresence),
      std::invalid_argument);
}

}  // namespace
}  // namespace usaas::service
