// Columnar-scan differential battery: the SoA column store + two-phase
// scan kernels must be *bit-identical* to the row scan they replaced —
// EXPECT_EQ on doubles, not EXPECT_NEAR.
//
// RowReference below is a frozen copy of the pre-columnar engine's scan
// path: vector-of-structs shards keyed exactly like the engine (packed
// (month_key, platform), std::map key order), the same shard pruning, the
// same per-record predicate order (dates -> platform -> access -> opaque
// filter -> confounder control), the same per-shard partials merged in
// key order. Every query result the engine produces from columns is
// compared against this reference across metrics x axes x access filters
// x date cuts, thread counts 1/2/8, both sharding policies, and summaries
// on/off.
//
// One documented exception: whole-population curves on a summary-
// configured axis merge per-access Welford buckets (~1e-12 relative, per
// the ShardSummary header contract) — those compare with a tight relative
// bound instead, and only when summaries are on.
//
// Registered under the `sanitize` ctest label: the 2/8-thread batteries
// are the TSan workload for the parallel selection/aggregation kernels
// and the destination-major column scatter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "confsim/call.h"
#include "core/correlation.h"
#include "core/date.h"
#include "core/histogram.h"
#include "core/thread_pool.h"
#include "netsim/conditions.h"
#include "netsim/profiles.h"
#include "usaas/correlation_engine.h"

namespace usaas::service {
namespace {

using core::Date;
using core::month_key;

// ---- Deterministic synthetic corpus ------------------------------------

std::uint64_t lcg_next(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 33;
}

double uniform(std::uint64_t& s, double lo, double hi) {
  return lo + (hi - lo) *
                  (static_cast<double>(lcg_next(s) % 1000000) / 999999.0);
}

netsim::MetricAggregate aggregate(double mean, double tail_scale) {
  return {mean, mean * 0.92, mean * tail_scale};
}

/// Jan-Apr 2022, all platforms and access technologies, ~30% of rows with
/// every metric inside the confounder control windows (so control_others
/// passes non-trivially), values straddling every sweep range boundary,
/// ~2% MOS-rated, ~10% early drops.
std::vector<confsim::CallRecord> synth_corpus() {
  std::vector<confsim::CallRecord> calls;
  std::uint64_t seed = 20220101;
  for (std::uint64_t id = 0; id < 1200; ++id) {
    confsim::CallRecord call;
    call.call_id = id;
    const int month = 1 + static_cast<int>(lcg_next(seed) % 4);
    const int day =
        1 + static_cast<int>(lcg_next(seed) %
                             static_cast<std::uint64_t>(
                                 Date::days_in_month(2022, month)));
    call.start.date = Date(2022, month, day);
    call.start.time = {static_cast<int>(lcg_next(seed) % 24), 0};
    const std::size_t participants = 3 + lcg_next(seed) % 3;
    for (std::size_t j = 0; j < participants; ++j) {
      confsim::ParticipantRecord rec;
      rec.user_id = id * 100 + j;
      rec.platform =
          static_cast<confsim::Platform>(lcg_next(seed) % confsim::kNumPlatforms);
      rec.meeting_size = static_cast<int>(participants);
      rec.access = static_cast<netsim::AccessTechnology>(
          lcg_next(seed) % netsim::kNumAccessTechnologies);
      const bool controlled = lcg_next(seed) % 10 < 3;
      const double lat =
          controlled ? uniform(seed, 0.0, 40.0) : uniform(seed, 0.0, 360.0);
      const double loss =
          controlled ? uniform(seed, 0.0, 0.2) : uniform(seed, 0.0, 12.0);
      const double jit =
          controlled ? uniform(seed, 0.0, 5.0) : uniform(seed, 0.0, 90.0);
      const double bw =
          controlled ? uniform(seed, 3.0, 4.0) : uniform(seed, 0.0, 230.0);
      rec.network.latency_ms = aggregate(lat, 1.75);
      rec.network.loss_pct = aggregate(loss, 1.75);
      rec.network.jitter_ms = aggregate(jit, 1.75);
      rec.network.bandwidth_mbps = aggregate(bw, 0.6);  // low-tail P5 slot
      rec.network.duration_seconds = uniform(seed, 300.0, 3600.0);
      rec.network.sample_count = 60 + lcg_next(seed) % 600;
      rec.presence_pct = uniform(seed, 0.0, 100.0);
      rec.cam_on_pct = uniform(seed, 0.0, 100.0);
      rec.mic_on_pct = uniform(seed, 0.0, 100.0);
      rec.dropped_early = lcg_next(seed) % 10 == 0;
      if (lcg_next(seed) % 50 == 0) {
        rec.mos = core::Mos{uniform(seed, 1.0, 5.0)};
      }
      call.participants.push_back(rec);
    }
    calls.push_back(call);
  }
  return calls;
}

const std::vector<confsim::CallRecord>& corpus() {
  static const std::vector<confsim::CallRecord> calls = synth_corpus();
  return calls;
}

// ---- Frozen row-scan reference -----------------------------------------

struct RowShard {
  int month_key{0};
  confsim::Platform platform{confsim::Platform::kWindowsPc};
  std::vector<Date> dates;
  std::vector<confsim::ParticipantRecord> records;
};

/// The pre-columnar scan path, verbatim: AoS shards, sequential appends
/// (batch slot order equals sequential ingest order by the engine's own
/// contract), row-wise predicates, partials merged in shard-key order.
class RowReference {
 public:
  explicit RowReference(ShardingPolicy sharding) : sharding_{sharding} {
    for (const confsim::CallRecord& call : corpus()) {
      for (const confsim::ParticipantRecord& p : call.participants) {
        RowShard& shard = shard_for(call.start.date, p.platform);
        shard.dates.push_back(call.start.date);
        shard.records.push_back(p);
      }
    }
  }

  struct Selected {
    const RowShard* shard{nullptr};
    bool check_dates{false};
    bool check_platform{false};
  };

  [[nodiscard]] std::vector<Selected> select(
      const ShardSelector& selector) const {
    std::vector<Selected> out;
    for (const auto& [key, shard] : shards_) {
      Selected sel;
      sel.shard = &shard;
      if (sharding_ == ShardingPolicy::kSingleShard) {
        sel.check_dates =
            selector.first.has_value() || selector.last.has_value();
        sel.check_platform = selector.platform.has_value();
      } else {
        if (selector.platform && shard.platform != *selector.platform) continue;
        if (selector.first && shard.month_key < month_key(*selector.first)) {
          continue;
        }
        if (selector.last && shard.month_key > month_key(*selector.last)) {
          continue;
        }
        const bool first_cuts =
            selector.first && month_key(*selector.first) == shard.month_key &&
            selector.first->day() > 1;
        const bool last_cuts =
            selector.last && month_key(*selector.last) == shard.month_key &&
            selector.last->day() <
                Date::days_in_month(selector.last->year(),
                                    selector.last->month());
        sel.check_dates = first_cuts || last_cuts;
      }
      out.push_back(sel);
    }
    return out;
  }

  [[nodiscard]] static bool matches(const Selected& sel, const Date& date,
                                    const confsim::ParticipantRecord& rec,
                                    const ShardSelector& selector) {
    if (sel.check_dates) {
      if (selector.first && date < *selector.first) return false;
      if (selector.last && *selector.last < date) return false;
    }
    if (sel.check_platform && rec.platform != *selector.platform) return false;
    if (selector.access && rec.access != *selector.access) return false;
    return true;
  }

  [[nodiscard]] static netsim::NetworkConditions conditions(
      const confsim::ParticipantRecord& rec, SessionAggregate agg) {
    return agg == SessionAggregate::kP95 ? rec.network.p95_conditions()
                                         : rec.network.mean_conditions();
  }

  [[nodiscard]] std::vector<CurvePoint> sweep(
      const SweepSpec& spec, const ParticipantFilter& filter,
      const ShardSelector& selector,
      const std::function<double(const confsim::ParticipantRecord&)>& y)
      const {
    const auto selected = select(selector);
    core::Binner1D total{spec.lo, spec.hi, spec.bins};
    for (const Selected& sel : selected) {
      core::Binner1D partial{spec.lo, spec.hi, spec.bins};
      for (std::size_t r = 0; r < sel.shard->records.size(); ++r) {
        const confsim::ParticipantRecord& rec = sel.shard->records[r];
        if (!matches(sel, sel.shard->dates[r], rec, selector)) continue;
        if (filter && !filter(rec)) continue;
        const netsim::NetworkConditions c = conditions(rec, spec.aggregate);
        if (spec.control_others &&
            !netsim::others_in_control(c, spec.metric, spec.control)) {
          continue;
        }
        partial.add(netsim::metric_value(c, spec.metric), y(rec));
      }
      total.merge(partial);
    }
    std::vector<CurvePoint> out;
    for (const core::Bin& b : total.bins()) {
      out.push_back({b.center(), b.mean_y, b.count});
    }
    return out;
  }

  [[nodiscard]] std::vector<CurvePoint> engagement_curve(
      const SweepSpec& spec, EngagementMetric engagement,
      const ParticipantFilter& filter, const ShardSelector& selector) const {
    return sweep(spec, filter, selector,
                 [engagement](const confsim::ParticipantRecord& rec) {
                   return engagement_value(rec, engagement);
                 });
  }

  [[nodiscard]] std::vector<CurvePoint> dropoff_curve(
      const SweepSpec& spec, const ParticipantFilter& filter,
      const ShardSelector& selector) const {
    return sweep(spec, filter, selector,
                 [](const confsim::ParticipantRecord& rec) {
                   return rec.dropped_early ? 1.0 : 0.0;
                 });
  }

  [[nodiscard]] core::Grid2D grid(EngagementMetric engagement,
                                  double latency_hi_ms, std::size_t lat_bins,
                                  double loss_hi_pct,
                                  std::size_t loss_bins) const {
    core::Grid2D total{0.0, latency_hi_ms, lat_bins,
                       0.0, loss_hi_pct, loss_bins};
    for (const auto& [key, shard] : shards_) {
      core::Grid2D partial{0.0, latency_hi_ms, lat_bins,
                           0.0, loss_hi_pct, loss_bins};
      for (const confsim::ParticipantRecord& rec : shard.records) {
        const netsim::NetworkConditions c = rec.network.mean_conditions();
        partial.add(c.latency.ms(), c.loss.percent(),
                    engagement_value(rec, engagement));
      }
      total.merge(partial);
    }
    return total;
  }

  [[nodiscard]] std::optional<CorrelationEngine::MosCorrelation>
  mos_correlation(EngagementMetric engagement, std::size_t min_samples) const {
    std::vector<double> eng;
    std::vector<double> mos;
    for (const auto& [key, shard] : shards_) {
      for (const confsim::ParticipantRecord& rec : shard.records) {
        if (!rec.mos) continue;
        eng.push_back(engagement_value(rec, engagement));
        mos.push_back(rec.mos->score());
      }
    }
    if (eng.size() < min_samples) return std::nullopt;
    CorrelationEngine::MosCorrelation out;
    out.rated_sessions = eng.size();
    out.pearson = core::pearson(eng, mos);
    out.spearman = core::spearman(eng, mos);
    std::vector<std::size_t> order(eng.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (eng[a] != eng[b]) return eng[a] < eng[b];
      return mos[a] < mos[b];
    });
    const std::size_t deciles = 10;
    for (std::size_t dec = 0; dec < deciles; ++dec) {
      const std::size_t lo = dec * order.size() / deciles;
      const std::size_t hi = (dec + 1) * order.size() / deciles;
      if (hi <= lo) continue;
      double eng_acc = 0.0;
      double mos_acc = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        eng_acc += eng[order[i]];
        mos_acc += mos[order[i]];
      }
      const auto n = static_cast<double>(hi - lo);
      out.decile_curve.push_back({eng_acc / n, mos_acc / n, hi - lo});
    }
    return out;
  }

  [[nodiscard]] CorrelationEngine::Tally tally(
      const ParticipantFilter& filter, const ShardSelector& selector,
      const std::function<double(const confsim::ParticipantRecord&)>&
          predictor) const {
    CorrelationEngine::Tally total;
    for (const Selected& sel : select(selector)) {
      CorrelationEngine::Tally part;
      for (std::size_t r = 0; r < sel.shard->records.size(); ++r) {
        const confsim::ParticipantRecord& rec = sel.shard->records[r];
        if (!matches(sel, sel.shard->dates[r], rec, selector)) continue;
        if (filter && !filter(rec)) continue;
        ++part.sessions;
        if (rec.mos) {
          part.observed_mos_sum += rec.mos->score();
          ++part.rated;
        }
        if (predictor) {
          part.predicted_mos_sum += predictor(rec);
          ++part.predicted;
        }
      }
      total.sessions += part.sessions;
      total.rated += part.rated;
      total.observed_mos_sum += part.observed_mos_sum;
      total.predicted_mos_sum += part.predicted_mos_sum;
      total.predicted += part.predicted;
    }
    return total;
  }

  [[nodiscard]] std::vector<confsim::ParticipantRecord> sessions() const {
    std::vector<confsim::ParticipantRecord> out;
    for (const auto& [key, shard] : shards_) {
      out.insert(out.end(), shard.records.begin(), shard.records.end());
    }
    return out;
  }

 private:
  RowShard& shard_for(const Date& date, confsim::Platform platform) {
    const int key = sharding_ == ShardingPolicy::kSingleShard
                        ? 0
                        : month_key(date) * confsim::kNumPlatforms +
                              static_cast<int>(platform);
    RowShard& shard = shards_[key];
    if (shard.dates.empty()) {
      shard.month_key =
          sharding_ == ShardingPolicy::kSingleShard ? 0 : month_key(date);
      shard.platform = platform;
    }
    return shard;
  }

  ShardingPolicy sharding_;
  std::map<int, RowShard> shards_;
};

const RowReference& reference(ShardingPolicy sharding) {
  static const RowReference flat{ShardingPolicy::kSingleShard};
  static const RowReference sharded{ShardingPolicy::kMonthPlatform};
  return sharding == ShardingPolicy::kSingleShard ? flat : sharded;
}

// ---- Comparators (EXPECT_EQ on doubles: bit-identity, not closeness) ---

void expect_points_eq(std::span<const CurvePoint> got,
                      std::span<const CurvePoint> want,
                      const std::string& what, bool exact = true) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].sessions, want[i].sessions) << what << " point " << i;
    EXPECT_EQ(got[i].metric_value, want[i].metric_value)
        << what << " point " << i;
    if (exact) {
      EXPECT_EQ(got[i].engagement, want[i].engagement)
          << what << " point " << i;
    } else {
      // Whole-population summary merge: exact counts, ~1e-12 means.
      EXPECT_NEAR(got[i].engagement, want[i].engagement,
                  1e-9 * (1.0 + std::abs(want[i].engagement)))
          << what << " point " << i;
    }
  }
}

void expect_grid_eq(const core::Grid2D& got, const core::Grid2D& want,
                    const std::string& what) {
  const auto got_cells = got.cells();
  const auto want_cells = want.cells();
  ASSERT_EQ(got_cells.size(), want_cells.size()) << what;
  for (std::size_t i = 0; i < got_cells.size(); ++i) {
    EXPECT_EQ(got_cells[i].x_center, want_cells[i].x_center) << what;
    EXPECT_EQ(got_cells[i].y_center, want_cells[i].y_center) << what;
    EXPECT_EQ(got_cells[i].count, want_cells[i].count) << what;
    EXPECT_EQ(got_cells[i].mean_value, want_cells[i].mean_value) << what;
  }
}

void expect_record_eq(const confsim::ParticipantRecord& got,
                      const confsim::ParticipantRecord& want,
                      const std::string& what) {
  EXPECT_EQ(got.user_id, want.user_id) << what;
  EXPECT_EQ(got.platform, want.platform) << what;
  EXPECT_EQ(got.meeting_size, want.meeting_size) << what;
  EXPECT_EQ(got.access, want.access) << what;
  const auto agg_eq = [&](const netsim::MetricAggregate& a,
                          const netsim::MetricAggregate& b) {
    EXPECT_EQ(a.mean, b.mean) << what;
    EXPECT_EQ(a.median, b.median) << what;
    EXPECT_EQ(a.p95, b.p95) << what;
  };
  agg_eq(got.network.latency_ms, want.network.latency_ms);
  agg_eq(got.network.loss_pct, want.network.loss_pct);
  agg_eq(got.network.jitter_ms, want.network.jitter_ms);
  agg_eq(got.network.bandwidth_mbps, want.network.bandwidth_mbps);
  EXPECT_EQ(got.network.duration_seconds, want.network.duration_seconds)
      << what;
  EXPECT_EQ(got.network.sample_count, want.network.sample_count) << what;
  EXPECT_EQ(got.presence_pct, want.presence_pct) << what;
  EXPECT_EQ(got.cam_on_pct, want.cam_on_pct) << what;
  EXPECT_EQ(got.mic_on_pct, want.mic_on_pct) << what;
  EXPECT_EQ(got.dropped_early, want.dropped_early) << what;
  ASSERT_EQ(got.mos.has_value(), want.mos.has_value()) << what;
  if (got.mos) {
    EXPECT_EQ(got.mos->score(), want.mos->score()) << what;
  }
}

// ---- Parameterized battery ---------------------------------------------

struct Config {
  ShardingPolicy sharding;
  std::size_t threads;
  bool summaries;
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  std::string name = info.param.sharding == ShardingPolicy::kSingleShard
                         ? "Flat"
                         : "Sharded";
  name += std::to_string(info.param.threads) + "t";
  name += info.param.summaries ? "Summaries" : "NoSummaries";
  return name;
}

class ColumnarDifferential : public ::testing::TestWithParam<Config> {
 protected:
  ColumnarDifferential()
      : engine_{GetParam().sharding}, ref_{reference(GetParam().sharding)} {
    if (GetParam().threads > 1) {
      pool_ = std::make_unique<core::ThreadPool>(GetParam().threads);
      engine_.set_thread_pool(pool_.get());
    }
    if (GetParam().summaries) engine_.configure_summaries(SummaryConfig{});
    engine_.ingest(std::span<const confsim::CallRecord>{corpus()});
  }

  std::unique_ptr<core::ThreadPool> pool_;
  CorrelationEngine engine_;
  const RowReference& ref_;
};

const ParticipantFilter kOpaqueFilter =
    [](const confsim::ParticipantRecord& rec) {
      return rec.meeting_size % 3 != 0 && rec.network.jitter_ms.mean < 60.0;
    };

const std::function<double(const confsim::ParticipantRecord&)> kPredictor =
    [](const confsim::ParticipantRecord& rec) {
      return 0.01 * rec.presence_pct + 0.002 * rec.network.latency_ms.mean +
             (rec.dropped_early ? -0.1 : 0.3);
    };

SweepSpec sweep_for(netsim::Metric metric, std::size_t bins,
                    bool control = false,
                    SessionAggregate agg = SessionAggregate::kMean) {
  SweepSpec spec;
  spec.metric = metric;
  switch (metric) {
    case netsim::Metric::kLatency: spec.lo = 0.0; spec.hi = 300.0; break;
    case netsim::Metric::kLoss: spec.lo = 0.0; spec.hi = 10.0; break;
    case netsim::Metric::kJitter: spec.lo = 0.0; spec.hi = 80.0; break;
    case netsim::Metric::kBandwidth: spec.lo = 0.0; spec.hi = 200.0; break;
  }
  spec.bins = bins;
  spec.control_others = control;
  spec.aggregate = agg;
  return spec;
}

constexpr netsim::Metric kMetrics[] = {
    netsim::Metric::kLatency, netsim::Metric::kLoss, netsim::Metric::kJitter,
    netsim::Metric::kBandwidth};
constexpr EngagementMetric kEngagements[] = {EngagementMetric::kPresence,
                                             EngagementMetric::kCamOn,
                                             EngagementMetric::kMicOn};

TEST_P(ColumnarDifferential, CurvesAcrossMetricsAndAxes) {
  for (const netsim::Metric m : kMetrics) {
    for (const EngagementMetric e : kEngagements) {
      // Non-default bin count: never summary-answerable, always the
      // two-phase columnar scan vs the row scan.
      const SweepSpec spec = sweep_for(m, 12);
      const EngagementCurve got = engine_.engagement_curve(spec, e);
      EXPECT_EQ(got.network_metric, m);
      EXPECT_EQ(got.engagement_metric, e);
      expect_points_eq(got.points, ref_.engagement_curve(spec, e, nullptr, {}),
                       std::string("curve ") + netsim::to_string(m));
    }
  }
}

TEST_P(ColumnarDifferential, P95AggregateCurves) {
  for (const netsim::Metric m : kMetrics) {
    const SweepSpec spec =
        sweep_for(m, 10, /*control=*/false, SessionAggregate::kP95);
    const EngagementCurve got =
        engine_.engagement_curve(spec, EngagementMetric::kPresence);
    expect_points_eq(
        got.points,
        ref_.engagement_curve(spec, EngagementMetric::kPresence, nullptr, {}),
        std::string("p95 curve ") + netsim::to_string(m));
  }
}

TEST_P(ColumnarDifferential, ConfounderControlledCurves) {
  for (const netsim::Metric m : kMetrics) {
    const SweepSpec spec = sweep_for(m, 10, /*control=*/true);
    const EngagementCurve got =
        engine_.engagement_curve(spec, EngagementMetric::kCamOn);
    expect_points_eq(
        got.points,
        ref_.engagement_curve(spec, EngagementMetric::kCamOn, nullptr, {}),
        std::string("controlled curve ") + netsim::to_string(m));
  }
}

TEST_P(ColumnarDifferential, AccessFilteredCurves) {
  // Default axis + access selector: the summary path answers this from
  // per-access buckets, which the contract makes bit-exact; off summaries
  // it is the branchless access-equality selection kernel.
  for (const netsim::AccessTechnology access :
       {netsim::AccessTechnology::kLeoSatellite,
        netsim::AccessTechnology::kWifiCongested}) {
    ShardSelector sel;
    sel.access = access;
    const SweepSpec spec = sweep_for(netsim::Metric::kLatency, 10);
    const EngagementCurve got =
        engine_.engagement_curve(spec, EngagementMetric::kPresence, nullptr,
                                 sel);
    expect_points_eq(got.points,
                     ref_.engagement_curve(spec, EngagementMetric::kPresence,
                                           nullptr, sel),
                     "access-filtered curve");
  }
}

TEST_P(ColumnarDifferential, DateCutAndPlatformSelectors) {
  const Date cut_first{2022, 1, 15};
  const Date cut_last{2022, 3, 20};
  for (const netsim::Metric m : kMetrics) {
    ShardSelector sel;
    sel.first = cut_first;
    sel.last = cut_last;
    // bins=12 forces the scan everywhere, so boundary *and* interior
    // shards take the columnar kernels under every config.
    const SweepSpec spec = sweep_for(m, 12);
    expect_points_eq(
        engine_.engagement_curve(spec, EngagementMetric::kMicOn, nullptr, sel)
            .points,
        ref_.engagement_curve(spec, EngagementMetric::kMicOn, nullptr, sel),
        std::string("date-cut curve ") + netsim::to_string(m));
  }
  ShardSelector combo;
  combo.first = cut_first;
  combo.last = cut_last;
  combo.platform = confsim::Platform::kAndroid;
  combo.access = netsim::AccessTechnology::kGeoSatellite;
  const SweepSpec spec = sweep_for(netsim::Metric::kLoss, 12);
  expect_points_eq(
      engine_.engagement_curve(spec, EngagementMetric::kPresence, nullptr,
                               combo)
          .points,
      ref_.engagement_curve(spec, EngagementMetric::kPresence, nullptr, combo),
      "combined selector curve");
  // Mid-month window on the default axis: boundary shards scan, interior
  // shards may answer from summaries (access-filtered: bit-exact).
  ShardSelector cut_access;
  cut_access.first = cut_first;
  cut_access.last = cut_last;
  cut_access.access = netsim::AccessTechnology::kFiber;
  const SweepSpec axis = sweep_for(netsim::Metric::kJitter, 10);
  expect_points_eq(
      engine_.engagement_curve(axis, EngagementMetric::kCamOn, nullptr,
                               cut_access)
          .points,
      ref_.engagement_curve(axis, EngagementMetric::kCamOn, nullptr,
                            cut_access),
      "date-cut access curve");
}

TEST_P(ColumnarDifferential, WholePopulationDefaultAxisCurve) {
  // The one shape that is only ~1e-12-identical with summaries on (the
  // whole-population curve merges per-access Welford buckets); without
  // summaries it must be bit-identical like everything else.
  const SweepSpec spec = sweep_for(netsim::Metric::kLatency, 10);
  const EngagementCurve got =
      engine_.engagement_curve(spec, EngagementMetric::kPresence);
  expect_points_eq(
      got.points,
      ref_.engagement_curve(spec, EngagementMetric::kPresence, nullptr, {}),
      "whole-population default-axis curve",
      /*exact=*/!GetParam().summaries);
}

TEST_P(ColumnarDifferential, OpaqueFilterForcesScan) {
  const SweepSpec spec = sweep_for(netsim::Metric::kBandwidth, 10);
  expect_points_eq(
      engine_.engagement_curve(spec, EngagementMetric::kPresence,
                               kOpaqueFilter, {})
          .points,
      ref_.engagement_curve(spec, EngagementMetric::kPresence, kOpaqueFilter,
                            {}),
      "opaque-filter curve");
  // Filter + control + date cut: all three refine stages in one query.
  ShardSelector sel;
  sel.first = Date{2022, 2, 10};
  const SweepSpec hard = sweep_for(netsim::Metric::kLatency, 12, true);
  expect_points_eq(
      engine_.engagement_curve(hard, EngagementMetric::kMicOn, kOpaqueFilter,
                               sel)
          .points,
      ref_.engagement_curve(hard, EngagementMetric::kMicOn, kOpaqueFilter,
                            sel),
      "filter+control+cut curve");
}

TEST_P(ColumnarDifferential, DropoffCurves) {
  const SweepSpec spec = sweep_for(netsim::Metric::kLoss, 12);
  expect_points_eq(engine_.dropoff_curve(spec),
                   ref_.dropoff_curve(spec, nullptr, {}), "dropoff");
  ShardSelector sel;
  sel.first = Date{2022, 1, 15};
  sel.last = Date{2022, 4, 20};
  const SweepSpec controlled = sweep_for(netsim::Metric::kJitter, 10, true);
  expect_points_eq(engine_.dropoff_curve(controlled, kOpaqueFilter, sel),
                   ref_.dropoff_curve(controlled, kOpaqueFilter, sel),
                   "dropoff filtered");
}

TEST_P(ColumnarDifferential, CompoundingGrids) {
  // The configured summary layout (exact by contract) and a bespoke one
  // (always the dense three-column scan kernel).
  expect_grid_eq(engine_.compounding_grid(EngagementMetric::kPresence, 320.0,
                                          8, 3.4, 8),
                 ref_.grid(EngagementMetric::kPresence, 320.0, 8, 3.4, 8),
                 "default-layout grid");
  expect_grid_eq(engine_.compounding_grid(EngagementMetric::kMicOn, 200.0, 5,
                                          5.0, 6),
                 ref_.grid(EngagementMetric::kMicOn, 200.0, 5, 5.0, 6),
                 "bespoke grid");
}

TEST_P(ColumnarDifferential, MosCorrelations) {
  for (const EngagementMetric e : kEngagements) {
    const auto got = engine_.mos_correlation(e, 50);
    const auto want = ref_.mos_correlation(e, 50);
    ASSERT_EQ(got.has_value(), want.has_value());
    ASSERT_TRUE(got.has_value());  // the corpus rates ~2% of sessions
    EXPECT_EQ(got->rated_sessions, want->rated_sessions);
    EXPECT_EQ(got->pearson, want->pearson);
    EXPECT_EQ(got->spearman, want->spearman);
    expect_points_eq(got->decile_curve, want->decile_curve, "decile curve");
  }
  // min_samples above the rated population: both sides must decline.
  EXPECT_FALSE(
      engine_.mos_correlation(EngagementMetric::kPresence, 1u << 20).has_value());
}

TEST_P(ColumnarDifferential, Tallies) {
  const auto eq = [](const CorrelationEngine::Tally& got,
                     const CorrelationEngine::Tally& want,
                     const std::string& what) {
    EXPECT_EQ(got.sessions, want.sessions) << what;
    EXPECT_EQ(got.rated, want.rated) << what;
    EXPECT_EQ(got.observed_mos_sum, want.observed_mos_sum) << what;
    EXPECT_EQ(got.predicted_mos_sum, want.predicted_mos_sum) << what;
    EXPECT_EQ(got.predicted, want.predicted) << what;
  };
  eq(engine_.tally(nullptr, {}), ref_.tally(nullptr, {}, nullptr), "plain");
  eq(engine_.tally(kOpaqueFilter, {}), ref_.tally(kOpaqueFilter, {}, nullptr),
     "filtered");
  ShardSelector sel;
  sel.first = Date{2022, 2, 5};
  sel.last = Date{2022, 4, 25};
  sel.access = netsim::AccessTechnology::kCable;
  eq(engine_.tally(nullptr, sel), ref_.tally(nullptr, sel, nullptr),
     "selector");
  // Cold predictor: predicted sums come from the scan path (records
  // materialized row by row off the columns).
  eq(engine_.tally(nullptr, sel, kPredictor),
     ref_.tally(nullptr, sel, kPredictor), "predictor cold");
  if (GetParam().summaries) {
    // Warm predictor: refresh folds predicted sums from the columns; the
    // summary answer must still match the row reference exactly.
    engine_.refresh_predicted_tallies(kPredictor);
    eq(engine_.tally(nullptr, {}, kPredictor),
       ref_.tally(nullptr, {}, kPredictor), "predictor warm");
    engine_.clear_predicted_tallies();
  }
}

TEST_P(ColumnarDifferential, MaterializedRowsRoundTrip) {
  // record(i) must reconstruct the exact original rows — including the
  // median aggregates no scan kernel reads and the MOS validity mask.
  const auto got = engine_.sessions();
  const auto want = ref_.sessions();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); i += 7) {  // stride: keep it fast
    expect_record_eq(got[i], want[i], "session " + std::to_string(i));
  }
  // Canonical rated order is policy-independent by contract; against the
  // kMonthPlatform reference it is the rated subsequence in key order.
  const auto rated = engine_.rated_sessions_canonical();
  std::vector<confsim::ParticipantRecord> rated_want;
  for (const auto& rec : reference(ShardingPolicy::kMonthPlatform).sessions()) {
    if (rec.mos) rated_want.push_back(rec);
  }
  ASSERT_EQ(rated.size(), rated_want.size());
  for (std::size_t i = 0; i < rated.size(); ++i) {
    expect_record_eq(rated[i], rated_want[i], "rated " + std::to_string(i));
  }
}

TEST_P(ColumnarDifferential, EmptyWindowSelectsNothing) {
  ShardSelector sel;
  sel.first = Date{2023, 6, 1};
  sel.last = Date{2023, 6, 30};
  const SweepSpec spec = sweep_for(netsim::Metric::kLatency, 12);
  EXPECT_TRUE(
      engine_.engagement_curve(spec, EngagementMetric::kPresence, nullptr, sel)
          .points.empty());
  EXPECT_EQ(engine_.tally(nullptr, sel).sessions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Battery, ColumnarDifferential,
    ::testing::Values(
        Config{ShardingPolicy::kSingleShard, 1, false},
        Config{ShardingPolicy::kSingleShard, 2, false},
        Config{ShardingPolicy::kSingleShard, 8, true},
        Config{ShardingPolicy::kMonthPlatform, 1, false},
        Config{ShardingPolicy::kMonthPlatform, 1, true},
        Config{ShardingPolicy::kMonthPlatform, 2, true},
        Config{ShardingPolicy::kMonthPlatform, 8, false},
        Config{ShardingPolicy::kMonthPlatform, 8, true}),
    config_name);

// ---- Ingest-path equivalence -------------------------------------------

TEST(ColumnarIngest, PerCallAndBatchPathsAgreeBitForBit) {
  // The per-record append and the permutation scatter must produce the
  // same columns: same rows, same order, same bytes.
  CorrelationEngine batch{ShardingPolicy::kMonthPlatform};
  core::ThreadPool pool{4};
  batch.set_thread_pool(&pool);
  batch.ingest(std::span<const confsim::CallRecord>{corpus()});
  CorrelationEngine per_call{ShardingPolicy::kMonthPlatform};
  for (const confsim::CallRecord& call : corpus()) per_call.ingest(call);

  ASSERT_EQ(batch.session_count(), per_call.session_count());
  const auto a = batch.sessions();
  const auto b = per_call.sessions();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 11) {
    expect_record_eq(a[i], b[i], "ingest-path session " + std::to_string(i));
  }
  const SweepSpec spec = sweep_for(netsim::Metric::kLatency, 12);
  expect_points_eq(
      batch.engagement_curve(spec, EngagementMetric::kPresence).points,
      per_call.engagement_curve(spec, EngagementMetric::kPresence).points,
      "ingest-path curve");
}

TEST(ColumnarIngest, RepeatedBatchesReuseScratchAndStayOrdered) {
  // Several batches through one engine: scratch reuse across batches must
  // not corrupt slot order or leak rows between shards.
  CorrelationEngine engine{ShardingPolicy::kMonthPlatform};
  core::ThreadPool pool{4};
  engine.set_thread_pool(&pool);
  const auto& calls = corpus();
  const std::size_t third = calls.size() / 3;
  engine.ingest(std::span<const confsim::CallRecord>{calls.data(), third});
  engine.ingest(
      std::span<const confsim::CallRecord>{calls.data() + third, third});
  engine.ingest(std::span<const confsim::CallRecord>{
      calls.data() + 2 * third, calls.size() - 2 * third});

  CorrelationEngine once{ShardingPolicy::kMonthPlatform};
  once.ingest(std::span<const confsim::CallRecord>{calls});
  ASSERT_EQ(engine.session_count(), once.session_count());
  const auto a = engine.sessions();
  const auto b = once.sessions();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 13) {
    expect_record_eq(a[i], b[i], "batched session " + std::to_string(i));
  }
}

TEST(ColumnarStore, PackedDayKeyPreservesDateOrder) {
  // Order-preservation is what turns the date-window residual into two
  // integer compares; spot-check across month/year boundaries.
  const Date dates[] = {Date{2021, 12, 31}, Date{2022, 1, 1},
                        Date{2022, 1, 31},  Date{2022, 2, 1},
                        Date{2022, 12, 31}, Date{2023, 1, 1}};
  for (std::size_t i = 1; i < std::size(dates); ++i) {
    EXPECT_LT(SessionColumns::pack_day_key(dates[i - 1]),
              SessionColumns::pack_day_key(dates[i]));
  }
  for (const Date& d : dates) {
    const Date back = SessionColumns::unpack_day_key(
        SessionColumns::pack_day_key(d));
    EXPECT_EQ(back.year(), d.year());
    EXPECT_EQ(back.month(), d.month());
    EXPECT_EQ(back.day(), d.day());
  }
}

}  // namespace
}  // namespace usaas::service
