#!/usr/bin/env bash
# Tier-1 + sanitizer gate, in the order CI runs it:
#
#   1. plain build, full ctest suite;
#   2. ThreadSanitizer build of the concurrency suites (pool fan-out,
#      shard equivalence, two-pass batch ingest, streaming ingest + fault
#      injection, insight cache + shard summaries) plus the differential
#      NLP harness, `ctest -L sanitize`;
#   3. AddressSanitizer build of the streaming/fault-injection suites —
#      the paths that stage, evict, quarantine and retry buffers are the
#      ones where a lifetime bug would hide — same `ctest -L sanitize`.
#   4. telemetry overhead gate: the throughput bench (reduced corpus)
#      compares a live metrics registry against the USAAS_TELEMETRY=off
#      kill switch and fails if batch-ingest overhead exceeds 5% (the
#      design target is <2%; the gate leaves headroom for timing noise
#      on loaded single-core CI hosts). The query battery runs through
#      the admission scheduler so request tracing (ID mint, trace
#      assembly, ring write) is inside the measured window; the same 5%
#      gate applies to the query column.
#   5. post-ingest regression gate: the bench's posts-only mode
#      (USAAS_BENCH_POSTS_ONLY=1, min over 3 reps) against the 1t
#      posts_per_sec recorded in BENCH_usaas_throughput.json; fails on a
#      >30% drop (the fresh-host baseline vs a host heat-soaked by the
#      preceding stages — measured sustained-load throttling is 20-30%;
#      the gate catches the ~8x fast-path-disabled cliff, not drift).
#      Only the 1t column gates — the multi-thread columns in the
#      recorded JSON are OVERSUBSCRIBED on single-core hosts and
#      measure queueing, not scaling.
#   6. scan-path regression gate: the bench's scan-only mode
#      (USAAS_BENCH_SCAN_ONLY=1, full-size corpus, min over 3 reps)
#      against the 1t queries_per_sec recorded under sharded_1t in
#      BENCH_usaas_throughput.json; fails on a >30% drop (a row-scan
#      revert is a ~4x cliff). Same 1t-only and heat-soak rationale as
#      the post gate.
#   7. admission front-end smoke: the bench's open-loop front-end mode
#      (USAAS_BENCH_FRONTEND_ONLY=1, reduced corpus, fixed arrival rate)
#      drives mixed-tenant traffic through the QueryScheduler. The bench
#      exits non-zero on any invariant breach; the gate re-asserts from
#      the printed line that admitted + degraded + shed + expired ==
#      submitted and that no query was shed while a degradable cached
#      insight existed (shed_with_degradable must be 0).
#   8. chaos smoke: the usaas_frontend example under USAAS_FAULT_SOCKET
#      runs the real HTTP listener on loopback through a seeded fault
#      storm (injected accept failures; client-side slow-loris,
#      truncation, early disconnects). The example exits non-zero — and
#      the gate re-asserts from the printed CHAOS line — if any ledger
#      (scheduler, listener connections, or the sampling=all trace ring
#      vs the scheduler's four-way ledger) fails to reconcile exactly, a
#      worker fails to exit within the shutdown timeout, or any request
#      outlives its deadline envelope by more than 2x.
#
# The sanitize suites carry USAAS_PARALLEL_FORCE=1 via their ctest
# ENVIRONMENT property, so parallel_for really fans out across the pool —
# even on single-core hosts where the oversubscription cap would otherwise
# run everything inline and TSan would have no races to check. Every test
# also carries a ctest TIMEOUT so a deadlock fails the gate instead of
# hanging it.
#
# Usage: scripts/check.sh [jobs]     (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

SANITIZE_TARGETS=(
  test_thread_pool
  test_usaas_sharding
  test_usaas_ingest_equivalence
  test_usaas_streaming
  test_usaas_insight_cache
  test_usaas_columnar
  test_usaas_scheduler
  test_usaas_fair_queue
  test_usaas_http_listener
  test_fault_injection
  test_telemetry
  test_usaas_tracing
  test_nlp_differential
)

echo "==> tier-1: configure + build (${JOBS} jobs)"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "==> tsan: configure + build sanitize-labeled test targets"
cmake -B build-tsan -S . -DUSAAS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target "${SANITIZE_TARGETS[@]}"

echo "==> tsan: ctest -L sanitize"
ctest --test-dir build-tsan -L sanitize --output-on-failure -j "${JOBS}"

echo "==> asan: configure + build sanitize-labeled test targets"
cmake -B build-asan -S . -DUSAAS_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}" --target "${SANITIZE_TARGETS[@]}"

echo "==> asan: ctest -L sanitize"
ctest --test-dir build-asan -L sanitize --output-on-failure -j "${JOBS}"

echo "==> telemetry: bench overhead gate (enabled vs USAAS_TELEMETRY=off)"
cmake --build build -j "${JOBS}" --target usaas_throughput
TELEMETRY_JSON=build/bench_telemetry_gate.json
USAAS_BENCH_SESSIONS=200000 USAAS_BENCH_POSTS=30000 \
  USAAS_BENCH_JSON="${TELEMETRY_JSON}" ./build/bench/usaas_throughput
INGEST_OVERHEAD=$(sed -n \
  's/^ *"ingest_overhead_pct": \(-\{0,1\}[0-9.eE+-]*\),*$/\1/p' \
  "${TELEMETRY_JSON}")
if [[ -z "${INGEST_OVERHEAD}" ]]; then
  echo "FATAL: ingest_overhead_pct missing from ${TELEMETRY_JSON}" >&2
  exit 1
fi
awk -v pct="${INGEST_OVERHEAD}" 'BEGIN {
  if (pct + 0.0 > 5.0) {
    printf "FATAL: telemetry ingest overhead %.2f%% exceeds the 5%% gate\n",
           pct > "/dev/stderr"
    exit 1
  }
  printf "telemetry ingest overhead %.2f%% (gate: 5%%)\n", pct
}'
# The query battery runs through the admission scheduler, so the enabled
# column carries the full per-request tracing path (ID mint, trace
# assembly, seqlock ring write) on top of spans + slow-log; same 5% gate.
QUERY_OVERHEAD=$(sed -n \
  's/^ *"query_overhead_pct": \(-\{0,1\}[0-9.eE+-]*\),*$/\1/p' \
  "${TELEMETRY_JSON}")
if [[ -z "${QUERY_OVERHEAD}" ]]; then
  echo "FATAL: query_overhead_pct missing from ${TELEMETRY_JSON}" >&2
  exit 1
fi
awk -v pct="${QUERY_OVERHEAD}" 'BEGIN {
  if (pct + 0.0 > 5.0) {
    printf "FATAL: tracing query overhead %.2f%% exceeds the 5%% gate\n",
           pct > "/dev/stderr"
    exit 1
  }
  printf "tracing query overhead %.2f%% (gate: 5%%)\n", pct
}'

echo "==> post ingest: bench regression gate (posts-only, min of 3 reps)"
BASELINE_JSON=BENCH_usaas_throughput.json
if [[ ! -f "${BASELINE_JSON}" ]]; then
  echo "FATAL: ${BASELINE_JSON} missing — run ./build/bench/usaas_throughput" >&2
  exit 1
fi
# The sharded_2_pass_1t object carries the baseline; posts_per_sec is one
# of its fields. (The 2t/8t columns are OVERSUBSCRIBED on single-core
# hosts — only the 1t figure is stable enough to gate on.)
BASELINE_PPS=$(sed -n \
  's/.*"sharded_2_pass_1t".*"posts_per_sec": \([0-9.eE+-]*\)[,}].*/\1/p' \
  "${BASELINE_JSON}")
if [[ -z "${BASELINE_PPS}" ]]; then
  echo "FATAL: sharded_2_pass_1t posts_per_sec missing from ${BASELINE_JSON}" >&2
  exit 1
fi
GUARD_LINE=$(USAAS_BENCH_POSTS_ONLY=1 ./build/bench/usaas_throughput \
  | grep '^POSTS_ONLY sharded_2_pass_1t ')
CURRENT_PPS=$(printf '%s\n' "${GUARD_LINE}" \
  | sed -n 's/.*posts_per_sec=\([0-9.]*\).*/\1/p')
if [[ -z "${CURRENT_PPS}" ]]; then
  echo "FATAL: posts-only guard produced no parseable output" >&2
  exit 1
fi
# Floor factor 0.7, not 0.9: the recorded baseline comes from a fresh
# host, but by the time this stage runs the host has been heat-soaked by
# ~8 minutes of builds, sanitizer suites and benches, and measured
# sustained-load throttling on the CI box is 20-30%. The gate exists to
# catch the fast path being structurally disabled (an ~8x cliff), which
# a 30% floor still detects decisively; single-digit drift is below this
# host's noise floor either way.
awk -v cur="${CURRENT_PPS}" -v base="${BASELINE_PPS}" 'BEGIN {
  floor = base * 0.7
  if (cur + 0.0 < floor) {
    printf "FATAL: post ingest 1t %.0f posts/s is >30%% below the recorded " \
           "baseline %.0f posts/s (floor %.0f)\n", cur, base, floor \
           > "/dev/stderr"
    exit 1
  }
  printf "post ingest 1t %.0f posts/s (baseline %.0f, floor %.0f)\n",
         cur, base, floor
}'

echo "==> scan battery: bench regression gate (scan-only, min of 3 reps)"
# The sharded_1t object records the columnar scan battery; gate on its
# queries_per_sec with the same 1t-only rationale as the posts gate. The
# scan-only mode uses the same default corpus size as the recorded run,
# so the figures are directly comparable.
BASELINE_QPS=$(sed -n \
  's/.*"sharded_1t".*"queries_per_sec": \([0-9.eE+-]*\)[,}].*/\1/p' \
  "${BASELINE_JSON}")
if [[ -z "${BASELINE_QPS}" ]]; then
  echo "FATAL: sharded_1t queries_per_sec missing from ${BASELINE_JSON}" >&2
  exit 1
fi
SCAN_LINE=$(USAAS_BENCH_SCAN_ONLY=1 ./build/bench/usaas_throughput \
  | grep '^SCAN_ONLY sharded_1t ')
CURRENT_QPS=$(printf '%s\n' "${SCAN_LINE}" \
  | sed -n 's/.*queries_per_sec=\([0-9.]*\).*/\1/p')
if [[ -z "${CURRENT_QPS}" ]]; then
  echo "FATAL: scan-only guard produced no parseable output" >&2
  exit 1
fi
# Same 0.7 floor factor as the posts gate (heat-soaked host vs fresh
# baseline): a revert to the row scan is a ~4x cliff, far below it.
awk -v cur="${CURRENT_QPS}" -v base="${BASELINE_QPS}" 'BEGIN {
  floor = base * 0.7
  if (cur + 0.0 < floor) {
    printf "FATAL: scan battery 1t %.2f q/s is >30%% below the recorded " \
           "baseline %.2f q/s (floor %.2f)\n", cur, base, floor \
           > "/dev/stderr"
    exit 1
  }
  printf "scan battery 1t %.2f q/s (baseline %.2f, floor %.2f)\n",
         cur, base, floor
}'

echo "==> front-end: open-loop admission smoke (degrade-before-shed gate)"
FRONTEND_LINE=$(USAAS_BENCH_FRONTEND_ONLY=1 \
  USAAS_BENCH_SESSIONS=40000 USAAS_BENCH_POSTS=5000 \
  ./build/bench/usaas_throughput | grep '^FRONTEND ')
printf '%s\n' "${FRONTEND_LINE}"
# The bench already exited 0 only if its in-process invariants held; parse
# the ledger out of the printed line and re-assert the two CI contracts
# independently: exact reconciliation, and the degrade-before-shed
# tripwire (nothing shed while a degradable cached insight existed).
ledger_field() {
  printf '%s\n' "${FRONTEND_LINE}" \
    | sed -n "s/.* ${1}=\([0-9]*\) .*/\1/p"
}
SUBMITTED=$(printf '%s\n' "${FRONTEND_LINE}" \
  | sed -n 's/^FRONTEND submitted=\([0-9]*\) .*/\1/p')
ADMITTED=$(ledger_field admitted)
DEGRADED=$(ledger_field degraded)
SHED=$(ledger_field shed)
EXPIRED=$(ledger_field expired)
TRIPWIRE=$(ledger_field shed_with_degradable)
if [[ -z "${SUBMITTED:-}" || -z "${EXPIRED:-}" || -z "${TRIPWIRE:-}" ]]; then
  echo "FATAL: front-end smoke produced no parseable FRONTEND line" >&2
  exit 1
fi
if [[ "${TRIPWIRE}" -ne 0 ]]; then
  echo "FATAL: ${TRIPWIRE} queries shed while a degradable cached insight" \
       "existed (degrade-before-shed violated)" >&2
  exit 1
fi
if [[ $((ADMITTED + DEGRADED + SHED + EXPIRED)) -ne "${SUBMITTED}" ]]; then
  echo "FATAL: admission ledger does not reconcile:" \
       "${ADMITTED} + ${DEGRADED} + ${SHED} + ${EXPIRED} != ${SUBMITTED}" >&2
  exit 1
fi
echo "front-end ledger reconciles (${SUBMITTED} = ${ADMITTED} admitted +" \
     "${DEGRADED} degraded + ${SHED} shed + ${EXPIRED} expired); tripwire 0"

echo "==> chaos: HTTP listener fault-storm smoke (ledger + shutdown gate)"
cmake --build build -j "${JOBS}" --target usaas_frontend
CHAOS_LINE=$(USAAS_FAULT_SEED=42 \
  USAAS_FAULT_SOCKET='accept_fail=0.1,slow_read=0.05,slow_read_ms=200,partial=0.1,disconnect=0.1' \
  ./build/examples/usaas_frontend | grep '^CHAOS ')
printf '%s\n' "${CHAOS_LINE}"
# The example already exited 0 only if its invariants held; re-assert the
# three CI contracts independently from the printed line.
chaos_field() {
  printf '%s\n' "${CHAOS_LINE}" \
    | sed -n "s/.* ${1}=\([^ ]*\).*/\1/p"
}
C_SUBMITTED=$(printf '%s\n' "${CHAOS_LINE}" \
  | sed -n 's/^CHAOS submitted=\([0-9]*\) .*/\1/p')
C_ADMITTED=$(chaos_field admitted)
C_DEGRADED=$(chaos_field degraded)
C_SHED=$(chaos_field shed)
C_EXPIRED=$(chaos_field expired)
C_LISTENER=$(chaos_field listener_reconcile)
C_SHUTDOWN=$(chaos_field clean_shutdown)
C_RATIO=$(chaos_field max_deadline_ratio)
if [[ -z "${C_SUBMITTED:-}" || -z "${C_RATIO:-}" ]]; then
  echo "FATAL: chaos smoke produced no parseable CHAOS line" >&2
  exit 1
fi
if [[ $((C_ADMITTED + C_DEGRADED + C_SHED + C_EXPIRED)) -ne "${C_SUBMITTED}" ]]; then
  echo "FATAL: chaos admission ledger does not reconcile:" \
       "${C_ADMITTED} + ${C_DEGRADED} + ${C_SHED} + ${C_EXPIRED}" \
       "!= ${C_SUBMITTED}" >&2
  exit 1
fi
if [[ "${C_LISTENER}" != "ok" ]]; then
  echo "FATAL: listener connection ledger does not reconcile under faults" >&2
  exit 1
fi
# Trace-ledger reconciliation: the chaos run samples at sampling=all, so
# every submission the scheduler counted must have exactly one retained
# TraceRecord with the matching outcome ("off" is only legal when the
# telemetry kill switch disabled tracing entirely).
C_TRACES=$(chaos_field traces_reconcile)
if [[ "${C_TRACES}" != "ok" ]]; then
  echo "FATAL: trace ledger does not reconcile under faults" \
       "(traces_reconcile=${C_TRACES:-missing})" >&2
  exit 1
fi
if [[ "${C_SHUTDOWN}" != "yes" ]]; then
  echo "FATAL: a listener worker failed to exit within the shutdown timeout" >&2
  exit 1
fi
awk -v ratio="${C_RATIO}" 'BEGIN {
  if (ratio + 0.0 > 2.0) {
    printf "FATAL: a request outlived its deadline envelope %.3fx (gate: " \
           "2x)\n", ratio > "/dev/stderr"
    exit 1
  }
  printf "chaos smoke clean: worst request at %.3fx of its deadline " \
         "envelope (gate: 2x)\n", ratio
}'

echo "==> all checks passed"
