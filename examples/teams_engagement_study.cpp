// The §3 study as an application: generate an enterprise call corpus with
// realistic (population-mixture) network conditions, then answer the
// questions the paper asks of the MS Teams data:
//   * which network metric hurts which user action,
//   * does engagement predict the sampled MOS,
//   * and how much MOS coverage does the predictor add.
//
// Build & run:   ./build/examples/teams_engagement_study
#include <cstdio>

#include "confsim/dataset.h"
#include "usaas/correlation_engine.h"
#include "usaas/mos_predictor.h"

int main() {
  using namespace usaas;

  std::printf("generating a 4-month enterprise call corpus...\n");
  confsim::DatasetConfig cfg;
  cfg.seed = 42;
  cfg.num_calls = 15000;
  cfg.sampling = confsim::ConditionSampling::kPopulation;
  cfg.first_day = core::Date(2022, 1, 3);
  cfg.last_day = core::Date(2022, 4, 29);

  service::CorrelationEngine engine;
  std::vector<confsim::ParticipantRecord> sessions;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) {
        engine.ingest(call);
        for (const auto& p : call.participants) sessions.push_back(p);
      });
  std::printf("  %zu sessions (weekday business hours, 3+ participants)\n\n",
              engine.session_count());

  // Engagement sensitivity per metric: drop between the clean bin and the
  // degraded tail of the *population* distribution.
  struct Probe {
    netsim::Metric metric;
    double lo, hi;
    const char* label;
  };
  const Probe probes[] = {
      {netsim::Metric::kLatency, 0.0, 300.0, "latency 0-300 ms"},
      {netsim::Metric::kLoss, 0.0, 3.0, "loss 0-3 %"},
      {netsim::Metric::kJitter, 0.0, 12.0, "jitter 0-12 ms"},
  };
  std::printf("engagement drop across the population range (best bin -> "
              "worst bin, %%):\n");
  std::printf("%20s | %9s %9s %9s\n", "metric", "Presence", "CamOn", "MicOn");
  for (const auto& probe : probes) {
    service::SweepSpec spec;
    spec.metric = probe.metric;
    spec.lo = probe.lo;
    spec.hi = probe.hi;
    spec.bins = 6;
    spec.control_others = false;  // full population view
    std::printf("%20s |", probe.label);
    for (const auto em :
         {service::EngagementMetric::kPresence,
          service::EngagementMetric::kCamOn,
          service::EngagementMetric::kMicOn}) {
      const auto curve = engine.engagement_curve(spec, em);
      std::printf(" %8.1f%%", curve.relative_drop_percent());
    }
    std::printf("\n");
  }

  // Engagement vs MOS on the sampled subset.
  std::printf("\nengagement vs sampled MOS (spearman):\n");
  for (const auto em :
       {service::EngagementMetric::kPresence,
        service::EngagementMetric::kCamOn,
        service::EngagementMetric::kMicOn}) {
    if (const auto corr = engine.mos_correlation(em)) {
      std::printf("  %-9s %.3f  (over %zu rated sessions)\n", to_string(em),
                  corr->spearman, corr->rated_sessions);
    }
  }

  // MOS backfill.
  service::MosPredictor predictor;
  predictor.train(sessions);
  std::size_t rated = 0;
  double predicted_sum = 0.0;
  for (const auto& s : sessions) {
    rated += s.mos ? 1 : 0;
    predicted_sum += predictor.predict(s);
  }
  std::printf("\nMOS coverage: %zu of %zu sessions rated (%.2f%%); the "
              "predictor estimates the rest (corpus mean prediction "
              "%.2f)\n",
              rated, sessions.size(),
              100.0 * static_cast<double>(rated) / sessions.size(),
              predicted_sum / static_cast<double>(sessions.size()));
  return 0;
}
