// Quickstart: the two signal families of the paper in ~60 lines.
//
// 1. Implicit signals — simulate a small conferencing corpus and read the
//    latency -> engagement curve off it.
// 2. Explicit signals — score a social post's sentiment and check it for
//    outage vocabulary.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "confsim/dataset.h"
#include "nlp/keywords.h"
#include "nlp/sentiment.h"
#include "usaas/correlation_engine.h"

int main() {
  using namespace usaas;

  // ---- Implicit signals: users react to network conditions ----
  confsim::DatasetConfig cfg;
  cfg.seed = 1;
  cfg.num_calls = 2000;
  cfg.sampling = confsim::ConditionSampling::kSweep;  // latency 0-300 ms
  cfg.sweep_metric = netsim::Metric::kLatency;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 300.0;

  service::CorrelationEngine engine;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });
  std::printf("simulated %zu participant sessions\n", engine.session_count());

  service::SweepSpec spec;
  spec.metric = netsim::Metric::kLatency;
  spec.lo = 0.0;
  spec.hi = 300.0;
  spec.bins = 6;
  const auto mic = engine.engagement_curve(
      spec, service::EngagementMetric::kMicOn);
  std::printf("\nMic On vs mean session latency (users mute as latency "
              "breaks turn-taking):\n");
  for (const auto& point : mic.points) {
    std::printf("  %5.0f ms -> %5.1f %% mic on  (n=%zu)\n",
                point.metric_value, point.engagement, point.sessions);
  }

  // ---- Explicit signals: what users say out loud ----
  const nlp::SentimentAnalyzer analyzer;
  const auto& outage_dict = nlp::KeywordDictionary::outage_dictionary();
  const char* post =
      "Starlink has been DOWN for two hours, total outage here. "
      "Absolutely terrible timing, no internet during a work call!";
  const auto scores = analyzer.score(post);
  std::printf("\npost: \"%s\"\n", post);
  std::printf("sentiment: positive %.2f / negative %.2f / neutral %.2f%s\n",
              scores.positive, scores.negative, scores.neutral,
              scores.strong_negative() ? "  [STRONG NEGATIVE]" : "");
  std::printf("outage keywords found: %zu\n",
              outage_dict.count_occurrences(post));
  return 0;
}
