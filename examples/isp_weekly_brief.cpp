// The USaaS subscription product: a weekly brief for an ISP operator.
//
// Simulates Q1-Q2 2022 of r/Starlink and prints the weekly report for
// every week of April — the month containing the 22 Apr outage that never
// made the news. Watch the sentiment balance collapse, the alert fire on
// the right day, and the loudest-day summary explain why.
//
// Build & run:   ./build/examples/isp_weekly_brief
#include <cstdio>

#include "social/subreddit.h"
#include "usaas/report.h"

int main() {
  using namespace usaas;

  std::printf("simulating r/Starlink for H1 2022...\n\n");
  social::SubredditConfig cfg;
  cfg.first_day = core::Date(2022, 1, 1);
  cfg.last_day = core::Date(2022, 6, 30);
  leo::LaunchSchedule schedule;
  social::RedditSim sim{
      cfg,
      leo::SpeedModel{leo::ConstellationModel{schedule},
                      leo::SubscriberModel{}},
      leo::OutageModel{cfg.first_day, cfg.last_day, 42},
      leo::EventTimeline{schedule}};
  const auto posts = sim.simulate();

  const nlp::SentimentAnalyzer analyzer;
  for (core::Date week{2022, 4, 4}; week <= core::Date(2022, 4, 25);
       week = week.plus_days(7)) {
    const auto report =
        service::generate_weekly_report(posts, week, analyzer);
    std::printf("%s\n", report.render_text().c_str());
  }
  return 0;
}
