// Outage war room: the Fig 6 pipeline as an operations tool.
//
// Replays a simulated year day by day and shows what an on-call operator
// would have seen: the daily keyword counter, alerts as spikes emerge, and
// the post-hoc comparison against what actually broke (including the
// transient outages nobody ever reported to the press — the coverage gap
// the paper argues USaaS fills).
//
// Build & run:   ./build/examples/outage_war_room
#include <cstdio>

#include "social/subreddit.h"
#include "usaas/outage_detector.h"

int main() {
  using namespace usaas;

  const core::Date first{2022, 1, 1};
  const core::Date last{2022, 12, 31};
  std::printf("simulating r/Starlink for 2022...\n");
  leo::LaunchSchedule schedule;
  leo::OutageModel outages{first, last, 42};
  social::SubredditConfig cfg;
  cfg.first_day = first;
  cfg.last_day = last;
  social::RedditSim sim{
      cfg,
      leo::SpeedModel{leo::ConstellationModel{schedule},
                      leo::SubscriberModel{}},
      leo::OutageModel{first, last, 42}, leo::EventTimeline{schedule}};
  const auto posts = sim.simulate();

  const nlp::SentimentAnalyzer analyzer;
  const service::OutageDetector detector{
      analyzer, nlp::KeywordDictionary::outage_dictionary()};

  const auto detections = detector.detect(posts, first, last);
  std::printf("\n%zu alert days raised over the year:\n", detections.size());
  std::printf("%12s | %9s | %9s | %s\n", "date", "keywords", "severity",
              "assessment");
  for (const auto& det : detections) {
    // What actually happened that day (ground truth the operator would
    // learn later).
    const auto real = outages.on(det.date);
    double severity = 0.0;
    const char* cause = "none on record";
    bool press = false;
    for (const auto& o : real) {
      if (o.severity() >= severity) {
        severity = o.severity();
        cause = to_string(o.cause);
        press = o.publicly_reported;
      }
    }
    std::printf("%12s | %9.0f | %9.3f | %s%s%s\n",
                det.date.to_string().c_str(), det.keyword_count, severity,
                det.major ? "MAJOR " : "", cause,
                severity > 0.0 && !press ? " (never made the news)" : "");
  }

  std::size_t unreported_caught = 0;
  std::size_t real_hits = 0;
  for (const auto& det : detections) {
    for (const auto& o : outages.on(det.date)) {
      ++real_hits;
      if (!o.publicly_reported) ++unreported_caught;
      break;
    }
  }
  std::printf("\n%zu of %zu alert days matched a real outage; %zu of those "
              "were outages the press never covered.\n",
              real_hits, detections.size(), unreported_caught);
  std::printf("(Downdetector-style services log only the large incidents; "
              "the subreddit sees the transient ones too.)\n");
  return 0;
}
