// The §4 study as an application: a social-listening dashboard for an ISP.
// Simulates two years of r/Starlink, then walks the explicit-feedback
// pipelines end to end: sentiment peaks + annotation, monthly speeds from
// OCR'd screenshots, and emerging-topic mining.
//
// Build & run:   ./build/examples/starlink_social_listening
#include <cstdio>

#include "social/subreddit.h"
#include "usaas/early_detector.h"
#include "usaas/fulcrum.h"
#include "usaas/peak_annotator.h"

int main() {
  using namespace usaas;

  std::printf("simulating r/Starlink, Jan 2021 - Dec 2022...\n");
  leo::LaunchSchedule schedule;
  leo::EventTimeline events{schedule};
  const core::Date first{2021, 1, 1};
  const core::Date last{2022, 12, 31};
  social::RedditSim sim{
      social::SubredditConfig{},
      leo::SpeedModel{leo::ConstellationModel{schedule},
                      leo::SubscriberModel{}},
      leo::OutageModel{first, last, 42}, events};
  const auto posts = sim.simulate();
  std::printf("  %zu posts (%.0f per week)\n\n", posts.size(),
              posts.size() / 104.3);

  const nlp::SentimentAnalyzer analyzer;

  // What moved the community?
  const service::PeakAnnotator annotator{analyzer, events};
  std::printf("top sentiment peaks and what caused them:\n");
  for (const auto& peak : annotator.annotate(posts, first, last)) {
    std::printf("  %s  (%s, %0.f strong posts): %s\n",
                peak.date.to_string().c_str(),
                peak.positive_dominant ? "positive" : "negative",
                peak.strong_positive + peak.strong_negative,
                peak.news ? peak.news->headline.c_str()
                          : "no press coverage found -> investigate: the "
                            "community is reporting something first");
  }

  // What are users measuring?
  const service::FulcrumTracker tracker{analyzer};
  const auto months = tracker.analyze(posts);
  std::printf("\nquarterly snapshot from user-shared speed tests:\n");
  std::printf("%10s | %14s | %s\n", "quarter", "median down", "Pos sentiment");
  for (std::size_t i = 0; i + 2 < months.size(); i += 3) {
    double med = 0.0;
    double pos = 0.0;
    int pos_n = 0;
    for (std::size_t j = i; j < i + 3; ++j) {
      med += months[j].median_downlink_mbps;
      if (months[j].pos_score) {
        pos += *months[j].pos_score;
        ++pos_n;
      }
    }
    std::printf("%7d-Q%zu | %11.1f Mbps | %.2f\n", months[i].year,
                i % 12 / 3 + 1, med / 3.0,
                pos_n > 0 ? pos / pos_n : 0.0);
  }

  // What is the community discovering before we announce it?
  const service::EarlyFeatureDetector detector;
  const auto lead = detector.lead_time_for(
      posts, "roaming", leo::EventTimeline::roaming_announcement_date());
  if (lead) {
    std::printf("\nheads-up: the community discovered '%s' on %s — %lld days "
                "before the official announcement.\n",
                lead->detection.term.c_str(),
                lead->detection.first_detected.to_string().c_str(),
                static_cast<long long>(lead->days_before_announcement));
  }
  return 0;
}
