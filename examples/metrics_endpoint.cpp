// The operator exposition endpoint: what a /metrics scrape returns.
//
// Builds a small USaaS deployment (conferencing telemetry + social posts),
// runs a few operator queries — a cold summary-merge, a cache hit, a
// boundary window that mixes summary merges with scans — and then prints
// exactly what the two exposition surfaces serve:
//
//   * QueryService::metrics_text()  — Prometheus text format, ready to be
//     returned from a /metrics HTTP handler;
//   * QueryService::metrics_json()  — the same snapshot as JSON, plus the
//     slow-query log, for dashboards that want structure.
//
// Both are rendered from one stats() snapshot, so the numbers printed here
// match stats() exactly. Run with USAAS_TELEMETRY=off to see the kill
// switch: histograms and the slow-query log vanish, while the
// stats-derived counters (maintained unconditionally) remain.
//
// Build & run:   ./build/examples/metrics_endpoint
#include <cstdio>

#include "confsim/dataset.h"
#include "social/subreddit.h"
#include "usaas/query_service.h"

int main() {
  using namespace usaas;

  service::QueryService svc{service::QueryServiceConfig{
      service::ShardingPolicy::kMonthPlatform, /*threads=*/4}};

  std::printf("ingesting conferencing + social signals...\n");
  confsim::DatasetConfig cfg;
  cfg.seed = 7;
  cfg.num_calls = 4000;
  cfg.first_day = core::Date(2022, 1, 3);
  cfg.last_day = core::Date(2022, 3, 31);
  svc.ingest_calls(confsim::CallDatasetGenerator{cfg}.generate());

  social::SubredditConfig scfg;
  scfg.first_day = core::Date(2022, 1, 1);
  scfg.last_day = core::Date(2022, 3, 31);
  leo::LaunchSchedule schedule;
  social::RedditSim sim{
      scfg,
      leo::SpeedModel{leo::ConstellationModel{schedule},
                      leo::SubscriberModel{}},
      leo::OutageModel{scfg.first_day, scfg.last_day, 42},
      leo::EventTimeline{schedule}};
  svc.ingest_posts(sim.simulate());

  // Exercise each query path so the exposition has something to show.
  service::Query query;
  query.first = core::Date(2022, 1, 1);
  query.last = core::Date(2022, 3, 31);
  query.metric = netsim::Metric::kLatency;
  query.metric_lo = 0.0;
  query.metric_hi = 300.0;
  query.bins = 10;

  const auto cold = svc.run(query);    // summary merge across whole months
  const auto warm = svc.run(query);    // insight-cache hit
  service::Query cut = query;
  cut.first = core::Date(2022, 1, 15);  // cuts January: mixed merge + scan
  const auto mixed = svc.run(cut);

  std::printf("query paths exercised: %s, %s, %s\n\n",
              to_string(cold.execution.served_by),
              to_string(warm.execution.served_by),
              to_string(mixed.execution.served_by));

  std::printf("== GET /metrics (Prometheus text) ==\n%s\n",
              svc.metrics_text().c_str());
  std::printf("== GET /metrics.json ==\n%s\n", svc.metrics_json().c_str());
  return 0;
}
