// User Signals as-a-Service (§5, Fig 8): the query façade.
//
// Plays the paper's own example: "If SpaceX Starlink wants to understand
// how users on their network are perceiving the MS Teams experience,
// USaaS could filter online user actions and MOS on MS Teams ... and the
// offline feedback on the same on social media."
//
// Build & run:   ./build/examples/usaas_service
#include <cstdio>

#include "confsim/dataset.h"
#include "social/subreddit.h"
#include "usaas/query_service.h"

int main() {
  using namespace usaas;

  // Production shape: per-month x per-platform shards, a small worker
  // pool for ingest partitioning and query fan-out. Results are identical
  // to the flat single-threaded layout (see tests/test_usaas_sharding.cpp).
  service::QueryService svc{service::QueryServiceConfig{
      service::ShardingPolicy::kMonthPlatform, /*threads=*/4}};

  // Ingest the implicit side: conferencing telemetry + engagement.
  std::printf("ingesting conferencing signals...\n");
  confsim::DatasetConfig cfg;
  cfg.seed = 7;
  cfg.num_calls = 10000;
  cfg.first_day = core::Date(2022, 1, 3);
  cfg.last_day = core::Date(2022, 6, 30);
  const auto calls = confsim::CallDatasetGenerator{cfg}.generate();
  svc.ingest_calls(calls);

  // Ingest the explicit side: social posts about the ISP.
  std::printf("ingesting social signals...\n");
  social::SubredditConfig scfg;
  scfg.first_day = core::Date(2022, 1, 1);
  scfg.last_day = core::Date(2022, 6, 30);
  leo::LaunchSchedule schedule;
  social::RedditSim sim{
      scfg,
      leo::SpeedModel{leo::ConstellationModel{schedule},
                      leo::SubscriberModel{}},
      leo::OutageModel{scfg.first_day, scfg.last_day, 42},
      leo::EventTimeline{schedule}};
  svc.ingest_posts(sim.simulate());
  if (!svc.train_predictor()) {
    std::printf("  (not enough rated sessions to train the MOS predictor)\n");
  }
  std::printf("  %zu sessions in %zu shards, %zu posts in %zu shards\n\n",
              svc.ingested_sessions(), svc.session_shards(),
              svc.ingested_posts(), svc.post_shards());

  // The operator query: "how does latency shape the Teams experience for
  // users in H1 2022, and what is the community saying?"
  service::Query query;
  query.first = core::Date(2022, 1, 1);
  query.last = core::Date(2022, 6, 30);
  query.metric = netsim::Metric::kLatency;
  query.metric_lo = 0.0;
  query.metric_hi = 300.0;
  query.bins = 6;

  const auto insight = svc.run(query);

  std::printf("== USaaS insight ==\n");
  std::printf("sessions analyzed: %zu (rated by users: %zu)\n",
              insight.sessions, insight.rated_sessions);
  if (insight.observed_mean_mos) {
    std::printf("observed MOS (sampled): %.2f | predicted MOS (all "
                "sessions): %.2f\n",
                *insight.observed_mean_mos,
                insight.predicted_mean_mos.value_or(0.0));
  }
  for (const auto& curve : insight.engagement) {
    std::printf("\n%s vs latency:\n", to_string(curve.engagement_metric));
    for (const auto& p : curve.points) {
      std::printf("  %5.0f ms -> %5.1f %%\n", p.metric_value, p.engagement);
    }
  }
  std::printf("\nsocial side: %zu posts, strong-positive share %.2f\n",
              insight.posts, insight.strong_positive_share);
  std::printf("days with outage chatter: %zu; alert days:",
              insight.outage_mention_days);
  for (const auto& d : insight.outage_alert_days) {
    std::printf(" %s", d.to_string().c_str());
  }
  std::printf("\n\n(every answer is an aggregate — USaaS never exposes an "
              "individual session or post)\n");

  // The same query, narrowed to one platform (Fig 3's breakdown).
  query.platform = confsim::Platform::kAndroid;
  const auto android = svc.run(query);
  std::printf("\nnarrowed to Android clients: %zu sessions; Presence at the "
              "worst latency bin %.1f%% (vs %.1f%% population)\n",
              android.sessions,
              android.engagement[0].points.back().engagement,
              insight.engagement[0].points.back().engagement);
  return 0;
}
