// The USaaS front-end harness: admission control in front of the query
// service — metrics_endpoint grown into a minimal multi-tenant service.
//
// Builds the same small deployment (conferencing telemetry + social
// posts), then puts a usaas::service::QueryScheduler in front of it and
// drives three tenants with very different manners:
//
//   * "ops-dashboard"  — generous QoS, re-runs the same two whole-month
//     queries (cheap: insight-cache hits and summary merges);
//   * "analyst"        — modest QoS, ad-hoc boundary-cut windows (each
//     one rescans shards, so the cost estimator prices it high);
//   * "crawler"        — starvation QoS, hammers expensive queries and
//     mostly gets degraded-or-shed instead of dragging everyone down.
//
// A VirtualClock drives admission, so the run is deterministic: the same
// admissions, the same degraded answers with the same staleness stamps,
// every time. After the traffic, the harness prints the scheduler's
// ledger (admitted + degraded + shed == submitted, checked here and by
// scripts/check.sh), each tenant's leftover tokens and queue depth, and
// the usaas_admission_* families exactly as a /metrics scrape would see
// them.
//
// Build & run:   ./build/examples/usaas_frontend
#include <cstdio>
#include <string>
#include <vector>

#include "confsim/dataset.h"
#include "core/scheduler_clock.h"
#include "social/subreddit.h"
#include "usaas/query_scheduler.h"
#include "usaas/query_service.h"

int main() {
  using namespace usaas;

  service::QueryService svc{service::QueryServiceConfig{
      service::ShardingPolicy::kMonthPlatform, /*threads=*/4}};

  std::printf("ingesting conferencing + social signals...\n");
  confsim::DatasetConfig cfg;
  cfg.seed = 7;
  cfg.num_calls = 4000;
  cfg.first_day = core::Date(2022, 1, 3);
  cfg.last_day = core::Date(2022, 3, 31);
  svc.ingest_calls(confsim::CallDatasetGenerator{cfg}.generate());

  social::SubredditConfig scfg;
  scfg.first_day = core::Date(2022, 1, 1);
  scfg.last_day = core::Date(2022, 3, 31);
  leo::LaunchSchedule schedule;
  social::RedditSim sim{
      scfg,
      leo::SpeedModel{leo::ConstellationModel{schedule},
                      leo::SubscriberModel{}},
      leo::OutageModel{scfg.first_day, scfg.last_day, 42},
      leo::EventTimeline{schedule}};
  svc.ingest_posts(sim.simulate());

  // ---- The front-end: per-tenant QoS over the shared corpus ----------
  core::VirtualClock clock;
  service::SchedulerConfig sched_cfg;
  sched_cfg.clock = &clock;
  sched_cfg.max_wait_seconds = 0.5;
  sched_cfg.max_versions_behind = 2;
  sched_cfg.tenant_qos["ops-dashboard"] = {100.0, 50.0};
  sched_cfg.tenant_qos["analyst"] = {20.0, 25.0};
  sched_cfg.tenant_qos["crawler"] = {1.0, 3.0};
  service::QueryScheduler front{svc, sched_cfg};

  const auto month_query = [](int first_month, int last_month) {
    service::Query q;
    q.first = core::Date(2022, first_month, 1);
    q.last = core::Date(2022, last_month,
                        core::Date::days_in_month(2022, last_month));
    q.metric = netsim::Metric::kLatency;
    q.metric_lo = 0.0;
    q.metric_hi = 300.0;
    q.bins = 10;
    return q;
  };
  const auto cut_query = [&](int day_first, int day_last) {
    service::Query q = month_query(1, 3);
    q.first = core::Date(2022, 1, day_first);
    q.last = core::Date(2022, 3, day_last);
    return q;
  };

  std::printf("\n== traffic ==\n");
  const auto show = [&](const char* tenant,
                        const service::ScheduledResult& r) {
    if (r.outcome == service::AdmissionOutcome::kShed) {
      std::printf("%-13s  %-8s  cost %6.2f  wait %.3fs\n", tenant,
                  to_string(r.outcome), r.cost_tokens, r.wait_seconds);
      return;
    }
    std::printf(
        "%-13s  %-8s  cost %6.2f  wait %.3fs  served-by %-13s  "
        "staleness %llu\n",
        tenant, to_string(r.outcome), r.cost_tokens, r.wait_seconds,
        to_string(r.insight.execution.served_by),
        static_cast<unsigned long long>(r.insight.staleness));
  };

  // Dashboards warm the cache, then keep hitting it for the token floor.
  for (int round = 0; round < 3; ++round) {
    show("ops-dashboard", front.submit("ops-dashboard", month_query(1, 3)));
    show("ops-dashboard", front.submit("ops-dashboard", month_query(2, 3)));
  }
  // Analysts pay scan prices for cut windows; the second one cannot
  // afford its cost up front and waits for the bucket to refill.
  show("analyst", front.submit("analyst", cut_query(15, 20)));
  show("analyst", front.submit("analyst", cut_query(10, 25)));
  // The crawler burns its whole burst on cheap repeats...
  for (int i = 0; i < 3; ++i) {
    show("crawler", front.submit("crawler", month_query(1, 3)));
  }
  // ...the corpus moves on (cached answers are now one version behind)...
  svc.ingest_calls(confsim::CallDatasetGenerator{[&] {
                     confsim::DatasetConfig fresh = cfg;
                     fresh.seed = 8;
                     fresh.num_calls = 200;
                     return fresh;
                   }()}
                       .generate());
  // ...and the saturated crawler hits the degrade path: its favourite
  // query is served from the one-version-old cache entry, stamped
  // staleness 1, while a window nobody ever cached is shed outright.
  show("crawler", front.submit("crawler", month_query(1, 3)));
  show("crawler", front.submit("crawler", cut_query(5, 27)));

  const service::SchedulerStats stats = front.stats();
  std::printf("\n== admission ledger ==\n");
  std::printf("submitted %llu = admitted %llu + degraded %llu + shed %llu"
              "  (reconciles: %s; shed-with-degradable tripwire: %llu)\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.degraded),
              static_cast<unsigned long long>(stats.shed),
              stats.reconciles() ? "yes" : "NO",
              static_cast<unsigned long long>(stats.shed_with_degradable));
  for (const auto& [tenant, snap] : stats.tenants) {
    std::printf("  %-13s  tokens left %6.2f  queue depth %zu\n",
                tenant.c_str(), snap.tokens, snap.queue_depth);
  }
  if (!stats.reconciles()) return 1;

  std::printf("\n== GET /metrics (Prometheus text) ==\n%s\n",
              svc.metrics_text().c_str());
  return 0;
}
