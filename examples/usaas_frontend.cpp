// The USaaS front end, end to end: the admission scheduler behind a real
// HTTP listener on a loopback socket.
//
// Builds the same small deployment (conferencing telemetry + social
// posts), puts a usaas::service::QueryScheduler in front of it, and — by
// default — binds a usaas::service::HttpListener to 127.0.0.1:0 and
// drives it with a plain in-process TCP client, exactly the bytes a curl
// would send:
//
//   curl 'http://127.0.0.1:PORT/query?tenant=analyst&first=2022-01-15&
//         last=2022-03-20&metric=latency&lo=0&hi=300&bins=10&budget_ms=250'
//
// Three tenants with very different manners share the corpus:
//
//   * "ops-dashboard"  — generous QoS, re-runs the same two whole-month
//     queries (cheap: insight-cache hits and summary merges);
//   * "analyst"        — modest QoS, ad-hoc boundary-cut windows (each
//     one rescans shards, so the cost estimator prices it high);
//   * "crawler"        — starvation QoS, hammers expensive queries and
//     mostly gets 429 Retry-After instead of dragging everyone down.
//
// After the traffic the harness prints the scheduler's four-way ledger
// (admitted + degraded + shed + expired == submitted), the listener's
// own connection ledger, and the /metrics scrape fetched over the same
// wire — the service stays measurable through the boundary it serves on.
//
// Modes:
//   ./build/examples/usaas_frontend                 real listener (above)
//   ./build/examples/usaas_frontend --in-process    the PR 7 deterministic
//       demo: no sockets, a VirtualClock drives admission so the run is
//       bit-identical every time.
//   USAAS_FAULT_SOCKET='accept_fail=0.1,slow_read=0.05,slow_read_ms=200,
//       partial=0.1,disconnect=0.1' ./build/examples/usaas_frontend
//       chaos harness: the same listener under a seeded client-side fault
//       storm (slow-loris, truncation, early disconnects) plus injected
//       accept failures. Prints one parseable "CHAOS ..." line and exits
//       nonzero if any ledger fails to reconcile, a worker fails to exit,
//       or a request outlives its deadline by more than 2x —
//       scripts/check.sh runs this as its chaos smoke stage.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "confsim/dataset.h"
#include "core/fault_injector.h"
#include "core/scheduler_clock.h"
#include "social/subreddit.h"
#include "usaas/http_listener.h"
#include "usaas/query_scheduler.h"
#include "usaas/query_service.h"

namespace {

using namespace usaas;

// ---- Shared deployment ---------------------------------------------------

confsim::DatasetConfig base_calls_config() {
  confsim::DatasetConfig cfg;
  cfg.seed = 7;
  cfg.num_calls = 4000;
  cfg.first_day = core::Date(2022, 1, 3);
  cfg.last_day = core::Date(2022, 3, 31);
  return cfg;
}

void ingest_corpus(service::QueryService& svc) {
  std::printf("ingesting conferencing + social signals...\n");
  svc.ingest_calls(
      confsim::CallDatasetGenerator{base_calls_config()}.generate());

  social::SubredditConfig scfg;
  scfg.first_day = core::Date(2022, 1, 1);
  scfg.last_day = core::Date(2022, 3, 31);
  leo::LaunchSchedule schedule;
  social::RedditSim sim{
      scfg,
      leo::SpeedModel{leo::ConstellationModel{schedule},
                      leo::SubscriberModel{}},
      leo::OutageModel{scfg.first_day, scfg.last_day, 42},
      leo::EventTimeline{schedule}};
  svc.ingest_posts(sim.simulate());
}

service::Query month_query(int first_month, int last_month) {
  service::Query q;
  q.first = core::Date(2022, first_month, 1);
  q.last = core::Date(2022, last_month,
                      core::Date::days_in_month(2022, last_month));
  q.metric = netsim::Metric::kLatency;
  q.metric_lo = 0.0;
  q.metric_hi = 300.0;
  q.bins = 10;
  return q;
}

service::Query cut_query(int day_first, int day_last) {
  service::Query q = month_query(1, 3);
  q.first = core::Date(2022, 1, day_first);
  q.last = core::Date(2022, 3, day_last);
  return q;
}

// ---- A tiny blocking HTTP client (the demo's stand-in for curl) ----------

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_best_effort(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  send_best_effort(fd, request);
  const std::string response = read_to_eof(fd);
  ::close(fd);
  return response;
}

std::string get_request(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
}

std::string post_request(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nHost: localhost\r\n" +
         "Content-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

int status_of(const std::string& response) {
  int status = 0;
  std::sscanf(response.c_str(), "HTTP/1.1 %d", &status);
  return status;
}

/// Pulls a JSON string field ("key":"value") out of a flat response body
/// for the demo printout; empty when absent.
std::string field_of(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = response.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = response.find('"', start);
  if (end == std::string::npos) return {};
  return response.substr(start, end - start);
}

// ---- Mode 1 (default): the real listener over loopback -------------------

int run_wire_demo() {
  service::QueryService svc{service::QueryServiceConfig{
      service::ShardingPolicy::kMonthPlatform, /*threads=*/4}};
  ingest_corpus(svc);

  service::SchedulerConfig sched_cfg;
  sched_cfg.max_wait_seconds = 0.05;
  sched_cfg.max_versions_behind = 2;
  sched_cfg.tenant_qos["ops-dashboard"] = {100.0, 50.0};
  sched_cfg.tenant_qos["analyst"] = {20.0, 25.0};
  sched_cfg.tenant_qos["crawler"] = {1.0, 3.0};
  service::QueryScheduler front{svc, sched_cfg};

  service::HttpListenerConfig lcfg;
  lcfg.worker_threads = 2;
  lcfg.default_budget_seconds = 0.5;
  service::HttpListener listener{front, svc, lcfg};
  if (!listener.start()) {
    std::fprintf(stderr, "FATAL: listener failed to bind loopback\n");
    return 1;
  }
  const std::uint16_t port = listener.port();
  std::printf("\nlistener up on http://127.0.0.1:%u  "
              "(2 workers, ephemeral port)\n",
              static_cast<unsigned>(port));

  const auto show = [&](const char* label, const std::string& response) {
    const std::string outcome = field_of(response, "outcome");
    const std::string served_by = field_of(response, "served_by");
    const std::string error = field_of(response, "error");
    std::printf("%-34s  HTTP %d", label, status_of(response));
    if (!outcome.empty()) std::printf("  %-8s", outcome.c_str());
    if (!served_by.empty()) std::printf("  served-by %s", served_by.c_str());
    if (!error.empty()) std::printf("  (%s)", error.c_str());
    std::printf("\n");
  };

  const std::string months =
      "/query?tenant=%s&first=2022-01-01&last=2022-03-31&metric=latency"
      "&lo=0&hi=300&bins=10";
  const auto month_target = [&](const char* tenant) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), months.c_str(), tenant);
    return std::string{buf};
  };

  std::printf("\n== traffic (real HTTP round trips) ==\n");
  // Dashboards warm the cache over the query-string spelling, then the
  // JSON spelling lands on the cached insight.
  show("GET  ops-dashboard Q1-Q3",
       http_exchange(port, get_request(month_target("ops-dashboard"))));
  show("POST ops-dashboard Q1-Q3 (json)",
       http_exchange(
           port,
           post_request("/query",
                        "{\"tenant\":\"ops-dashboard\","
                        "\"first\":\"2022-01-01\",\"last\":\"2022-03-31\","
                        "\"metric\":\"latency\",\"lo\":0,\"hi\":300,"
                        "\"bins\":10}")));
  // Analysts pay scan prices for cut windows, with an explicit budget.
  show("GET  analyst cut window",
       http_exchange(
           port,
           get_request("/query?tenant=analyst&first=2022-01-15"
                       "&last=2022-03-20&metric=latency&lo=0&hi=300"
                       "&bins=10&budget_ms=250")));
  // The crawler burns its burst on cheap repeats; once drained, its
  // favourite query is served from cache as a degraded answer, and a
  // window nobody ever cached gets an honest 429 with Retry-After.
  for (int i = 0; i < 4; ++i) {
    const std::string label = "GET  crawler Q1-Q3 (#" +
                              std::to_string(i + 1) + ")";
    show(label.c_str(),
         http_exchange(port, get_request(month_target("crawler"))));
  }
  show("GET  crawler uncached window",
       http_exchange(
           port,
           get_request("/query?tenant=crawler&first=2022-01-05"
                       "&last=2022-03-27&metric=latency&lo=0&hi=300"
                       "&bins=10&budget_ms=20")));
  // A zero-budget request expires instead of waiting: 504.
  show("GET  analyst budget_ms=0.0001",
       http_exchange(
           port,
           get_request("/query?tenant=analyst&first=2022-01-15"
                       "&last=2022-03-20&metric=latency&lo=0&hi=300"
                       "&bins=10&budget_ms=0.0001")));
  // And a malformed one is a 400 with a reason, not a dropped socket.
  show("GET  bad metric",
       http_exchange(
           port,
           get_request("/query?tenant=analyst&first=2022-01-01"
                       "&last=2022-03-31&metric=vibes&lo=0&hi=300&bins=10")));

  const std::string scrape =
      http_exchange(port, get_request("/metrics"));
  const std::string traces_scrape =
      http_exchange(port, get_request("/debug/traces"));
  const std::string events_scrape =
      http_exchange(port, get_request("/debug/events"));
  const bool clean = listener.stop();

  const service::SchedulerStats stats = front.stats();
  std::printf("\n== admission ledger ==\n");
  std::printf(
      "submitted %llu = admitted %llu + degraded %llu + shed %llu + "
      "expired %llu  (reconciles: %s; shed-with-degradable tripwire: "
      "%llu)\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.degraded),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.expired),
      stats.reconciles() ? "yes" : "NO",
      static_cast<unsigned long long>(stats.shed_with_degradable));
  for (const auto& [tenant, snap] : stats.tenants) {
    std::printf("  %-13s  tokens left %6.2f  queue depth %zu\n",
                tenant.c_str(), snap.tokens, snap.queue_depth);
  }

  const service::HttpListenerStats ls = listener.stats();
  std::printf("\n== listener ledger ==\n");
  std::printf(
      "accepted %llu = accept-failures %llu + saturated %llu + drained "
      "%llu + handled %llu; handled = read-failures %llu + responses "
      "%llu + write-failures %llu  (reconciles: %s; clean shutdown: %s)\n",
      static_cast<unsigned long long>(ls.accepted),
      static_cast<unsigned long long>(ls.accept_failures),
      static_cast<unsigned long long>(ls.saturated),
      static_cast<unsigned long long>(ls.drained),
      static_cast<unsigned long long>(ls.handled),
      static_cast<unsigned long long>(ls.read_failures),
      static_cast<unsigned long long>(ls.responses_sent),
      static_cast<unsigned long long>(ls.write_failures),
      ls.reconciles() ? "yes" : "NO", clean ? "yes" : "NO");

  const std::size_t body_at = scrape.find("\r\n\r\n");
  std::printf("\n== GET /metrics (scraped over the same wire) ==\n%s\n",
              body_at == std::string::npos
                  ? scrape.c_str()
                  : scrape.c_str() + body_at + 4);

  // The per-request layer under those aggregates: every shed / degraded /
  // expired request above has a TraceRecord here, and the breaker / bias
  // moves it caused are in the journal — both scraped over the same wire.
  const auto body_of = [](const std::string& response) {
    const std::size_t at = response.find("\r\n\r\n");
    return at == std::string::npos ? response : response.substr(at + 4);
  };
  const std::string traces_body = body_of(traces_scrape);
  std::printf("== GET /debug/traces (first lines) ==\n%.*s...\n",
              static_cast<int>(std::min<std::size_t>(traces_body.size(),
                                                     600)),
              traces_body.c_str());
  std::printf("\n== GET /debug/events ==\n%s\n",
              body_of(events_scrape).c_str());
  return (stats.reconciles() && ls.reconciles() && clean) ? 0 : 1;
}

// ---- Mode 2 (--in-process): the deterministic VirtualClock demo ----------

int run_in_process_demo() {
  service::QueryService svc{service::QueryServiceConfig{
      service::ShardingPolicy::kMonthPlatform, /*threads=*/4}};
  ingest_corpus(svc);

  core::VirtualClock clock;
  service::SchedulerConfig sched_cfg;
  sched_cfg.clock = &clock;
  sched_cfg.max_wait_seconds = 0.5;
  sched_cfg.max_versions_behind = 2;
  sched_cfg.tenant_qos["ops-dashboard"] = {100.0, 50.0};
  sched_cfg.tenant_qos["analyst"] = {20.0, 25.0};
  sched_cfg.tenant_qos["crawler"] = {1.0, 3.0};
  service::QueryScheduler front{svc, sched_cfg};

  std::printf("\n== traffic (in-process, VirtualClock) ==\n");
  const auto show = [&](const char* tenant,
                        const service::ScheduledResult& r) {
    if (r.outcome == service::AdmissionOutcome::kShed ||
        r.outcome == service::AdmissionOutcome::kExpired) {
      std::printf("%-13s  %-8s  cost %6.2f  wait %.3fs\n", tenant,
                  to_string(r.outcome), r.cost_tokens, r.wait_seconds);
      return;
    }
    std::printf(
        "%-13s  %-8s  cost %6.2f  wait %.3fs  served-by %-13s  "
        "staleness %llu\n",
        tenant, to_string(r.outcome), r.cost_tokens, r.wait_seconds,
        to_string(r.insight.execution.served_by),
        static_cast<unsigned long long>(r.insight.staleness));
  };

  // Dashboards warm the cache, then keep hitting it for the token floor.
  for (int round = 0; round < 3; ++round) {
    show("ops-dashboard", front.submit("ops-dashboard", month_query(1, 3)));
    show("ops-dashboard", front.submit("ops-dashboard", month_query(2, 3)));
  }
  // Analysts pay scan prices for cut windows; the second one cannot
  // afford its cost up front and waits for the bucket to refill.
  show("analyst", front.submit("analyst", cut_query(15, 20)));
  show("analyst", front.submit("analyst", cut_query(10, 25)));
  // A zero-budget submission expires at the door: no wait, no tokens.
  show("analyst", front.submit("analyst", cut_query(12, 22), 0.0));
  // The crawler burns its whole burst on cheap repeats...
  for (int i = 0; i < 3; ++i) {
    show("crawler", front.submit("crawler", month_query(1, 3)));
  }
  // ...the corpus moves on (cached answers are now one version behind)...
  svc.ingest_calls(confsim::CallDatasetGenerator{[&] {
                     confsim::DatasetConfig fresh = base_calls_config();
                     fresh.seed = 8;
                     fresh.num_calls = 200;
                     return fresh;
                   }()}
                       .generate());
  // ...and the saturated crawler hits the degrade path: its favourite
  // query is served from the one-version-old cache entry, stamped
  // staleness 1, while a window nobody ever cached is shed outright.
  show("crawler", front.submit("crawler", month_query(1, 3)));
  show("crawler", front.submit("crawler", cut_query(5, 27)));

  const service::SchedulerStats stats = front.stats();
  std::printf("\n== admission ledger ==\n");
  std::printf(
      "submitted %llu = admitted %llu + degraded %llu + shed %llu + "
      "expired %llu  (reconciles: %s; shed-with-degradable tripwire: "
      "%llu)\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.degraded),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.expired),
      stats.reconciles() ? "yes" : "NO",
      static_cast<unsigned long long>(stats.shed_with_degradable));
  for (const auto& [tenant, snap] : stats.tenants) {
    std::printf("  %-13s  tokens left %6.2f  queue depth %zu\n",
                tenant.c_str(), snap.tokens, snap.queue_depth);
  }
  if (!stats.reconciles()) return 1;

  std::printf("\n== GET /metrics (Prometheus text) ==\n%s\n",
              svc.metrics_text().c_str());
  return 0;
}

// ---- Mode 3 (USAAS_FAULT_SOCKET): the chaos harness ----------------------

int run_chaos(const core::FaultInjector::Config& fault_cfg) {
  service::QueryServiceConfig svc_cfg;
  svc_cfg.sharding = service::ShardingPolicy::kMonthPlatform;
  svc_cfg.threads = 2;
  // sampling=all with headroom: the trace ledger must reconcile exactly
  // against the scheduler's four-way ledger after the storm, so no
  // request's trace may be sampled away or overwritten.
  svc_cfg.trace.sampling = core::telemetry::TraceSampling::kAll;
  svc_cfg.trace.tail_entries = 4096;
  service::QueryService svc{svc_cfg};
  {
    confsim::DatasetConfig cfg = base_calls_config();
    cfg.num_calls = 800;  // The chaos stage times sockets, not scans.
    std::printf("ingesting chaos corpus...\n");
    svc.ingest_calls(confsim::CallDatasetGenerator{cfg}.generate());
  }

  core::FaultInjector fault{fault_cfg};

  service::SchedulerConfig sched_cfg;
  sched_cfg.max_wait_seconds = 0.01;
  sched_cfg.tenant_qos["storm-a"] = {50.0, 20.0};
  sched_cfg.tenant_qos["storm-b"] = {50.0, 20.0};
  service::QueryScheduler front{svc, sched_cfg};

  service::HttpListenerConfig lcfg;
  lcfg.worker_threads = 3;
  lcfg.max_pending_connections = 8;
  lcfg.read_timeout = std::chrono::milliseconds{250};
  lcfg.write_timeout = std::chrono::milliseconds{250};
  lcfg.default_budget_seconds = 0.2;
  lcfg.fault = &fault;
  service::HttpListener listener{front, svc, lcfg};
  if (!listener.start()) {
    std::fprintf(stderr, "FATAL: listener failed to bind loopback\n");
    return 1;
  }
  const std::uint16_t port = listener.port();

  // A request that reaches the server is owed an answer within its budget
  // plus the socket timeouts; the client's own injected stall rides on
  // top. Anything beyond 2x that envelope means a request outlived its
  // deadline — the wedged-worker smell the harness exists to catch.
  const double allowed_seconds =
      lcfg.default_budget_seconds +
      std::chrono::duration<double>(lcfg.read_timeout).count() +
      std::chrono::duration<double>(lcfg.write_timeout).count() +
      std::chrono::duration<double>(fault_cfg.slow_read_delay).count();

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::atomic<std::uint64_t> exchanges{0};
  std::vector<double> worst_ratio(kClients, 0.0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const char* tenant = (c % 2 == 0) ? "storm-a" : "storm-b";
        std::string request;
        if (i % 7 == 0) {
          request = get_request("/query?tenant=" + std::string{tenant} +
                                "&metric=vibes");
        } else if (i % 3 == 0) {
          request = post_request(
              "/query", "{\"tenant\":\"" + std::string{tenant} +
                            "\",\"first\":\"2022-01-05\","
                            "\"last\":\"2022-03-25\","
                            "\"metric\":\"latency\",\"lo\":0,\"hi\":300,"
                            "\"bins\":8,\"budget_ms\":50}");
        } else {
          request = get_request("/query?tenant=" + std::string{tenant} +
                                "&first=2022-01-01&last=2022-03-31"
                                "&metric=latency&lo=0&hi=300&bins=10");
        }

        const auto t0 = std::chrono::steady_clock::now();
        const int fd = connect_loopback(port);
        if (fd < 0) continue;  // Saturated accept backlog or injected drop.
        const auto stall = fault.slow_read_stall();
        if (fault.truncate_this_request()) {
          send_best_effort(fd,
                           std::string_view{request}.substr(
                               0, request.size() / 2));
        } else if (stall.count() > 0) {
          const std::size_t half = request.size() / 2;
          send_best_effort(fd, std::string_view{request}.substr(0, half));
          std::this_thread::sleep_for(stall);
          send_best_effort(fd, std::string_view{request}.substr(half));
          (void)read_to_eof(fd);
        } else if (fault.disconnect_before_response()) {
          send_best_effort(fd, request);
        } else {
          send_best_effort(fd, request);
          (void)read_to_eof(fd);
        }
        ::close(fd);
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        worst_ratio[static_cast<std::size_t>(c)] =
            std::max(worst_ratio[static_cast<std::size_t>(c)],
                     elapsed / allowed_seconds);
        exchanges.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const bool clean = listener.stop(std::chrono::seconds{5});
  const service::HttpListenerStats ls = listener.stats();
  const service::SchedulerStats stats = front.stats();
  const double max_ratio =
      *std::max_element(worst_ratio.begin(), worst_ratio.end());

  // Trace-vs-ledger reconciliation: under sampling=all, every submission
  // the scheduler counted — whichever outcome the storm forced — must
  // have exactly one retained TraceRecord with the matching outcome.
  const char* traces_verdict = "off";
  if (svc.tracer().enabled()) {
    const std::vector<core::telemetry::TraceRecord> traces =
        svc.tracer().snapshot();
    std::uint64_t by_outcome[4] = {0, 0, 0, 0};
    std::set<std::uint64_t> ids;
    bool unique = true;
    for (const core::telemetry::TraceRecord& rec : traces) {
      if (rec.outcome < 4) ++by_outcome[rec.outcome];
      if (!ids.insert(rec.trace_id).second) unique = false;
    }
    const bool traces_ok =
        svc.tracer().recorded() == stats.submitted &&
        traces.size() == stats.submitted && unique &&
        by_outcome[0] == stats.admitted && by_outcome[1] == stats.degraded &&
        by_outcome[2] == stats.shed && by_outcome[3] == stats.expired;
    traces_verdict = traces_ok ? "ok" : "FAIL";
  }

  std::printf(
      "CHAOS submitted=%llu admitted=%llu degraded=%llu shed=%llu "
      "expired=%llu reconcile=%s accepted=%llu accept_failures=%llu "
      "saturated=%llu drained=%llu handled=%llu read_failures=%llu "
      "responses=%llu write_failures=%llu listener_reconcile=%s "
      "traces_reconcile=%s "
      "clean_shutdown=%s shutdown_seconds=%.3f max_deadline_ratio=%.3f "
      "exchanges=%llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.degraded),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.expired),
      stats.reconciles() ? "ok" : "FAIL",
      static_cast<unsigned long long>(ls.accepted),
      static_cast<unsigned long long>(ls.accept_failures),
      static_cast<unsigned long long>(ls.saturated),
      static_cast<unsigned long long>(ls.drained),
      static_cast<unsigned long long>(ls.handled),
      static_cast<unsigned long long>(ls.read_failures),
      static_cast<unsigned long long>(ls.responses_sent),
      static_cast<unsigned long long>(ls.write_failures),
      ls.reconciles() ? "ok" : "FAIL", traces_verdict, clean ? "yes" : "no",
      ls.shutdown_seconds, max_ratio,
      static_cast<unsigned long long>(
          exchanges.load(std::memory_order_relaxed)));

  const bool traces_clean = std::strcmp(traces_verdict, "FAIL") != 0;
  const bool ok = stats.reconciles() && ls.reconciles() && traces_clean &&
                  clean && max_ratio <= 2.0;
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: chaos invariants violated (scheduler=%d "
                 "listener=%d traces=%s clean_shutdown=%d "
                 "max_deadline_ratio=%.3f)\n",
                 stats.reconciles() ? 1 : 0, ls.reconciles() ? 1 : 0,
                 traces_verdict, clean ? 1 : 0, max_ratio);
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool in_process =
      argc > 1 && std::strcmp(argv[1], "--in-process") == 0;
  const std::optional<core::FaultInjector::Config> fault_cfg =
      core::FaultInjector::config_from_env();
  if (!in_process && fault_cfg.has_value()) return run_chaos(*fault_cfg);
  if (in_process) return run_in_process_demo();
  return run_wire_demo();
}
