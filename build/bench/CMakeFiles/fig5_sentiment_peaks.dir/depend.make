# Empty dependencies file for fig5_sentiment_peaks.
# This may be replaced when dependencies are built.
