file(REMOVE_RECURSE
  "CMakeFiles/fig5_sentiment_peaks.dir/fig5_sentiment_peaks.cpp.o"
  "CMakeFiles/fig5_sentiment_peaks.dir/fig5_sentiment_peaks.cpp.o.d"
  "fig5_sentiment_peaks"
  "fig5_sentiment_peaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sentiment_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
