file(REMOVE_RECURSE
  "CMakeFiles/fig3_platform.dir/fig3_platform.cpp.o"
  "CMakeFiles/fig3_platform.dir/fig3_platform.cpp.o.d"
  "fig3_platform"
  "fig3_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
