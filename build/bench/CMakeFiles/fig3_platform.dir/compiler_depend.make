# Empty compiler generated dependencies file for fig3_platform.
# This may be replaced when dependencies are built.
