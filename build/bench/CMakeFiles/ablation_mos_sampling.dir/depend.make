# Empty dependencies file for ablation_mos_sampling.
# This may be replaced when dependencies are built.
