file(REMOVE_RECURSE
  "CMakeFiles/ablation_mos_sampling.dir/ablation_mos_sampling.cpp.o"
  "CMakeFiles/ablation_mos_sampling.dir/ablation_mos_sampling.cpp.o.d"
  "ablation_mos_sampling"
  "ablation_mos_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mos_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
