# Empty dependencies file for ablation_loss_mitigation.
# This may be replaced when dependencies are built.
