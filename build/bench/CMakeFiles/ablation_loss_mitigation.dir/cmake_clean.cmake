file(REMOVE_RECURSE
  "CMakeFiles/ablation_loss_mitigation.dir/ablation_loss_mitigation.cpp.o"
  "CMakeFiles/ablation_loss_mitigation.dir/ablation_loss_mitigation.cpp.o.d"
  "ablation_loss_mitigation"
  "ablation_loss_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loss_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
