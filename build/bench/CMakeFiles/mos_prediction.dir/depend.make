# Empty dependencies file for mos_prediction.
# This may be replaced when dependencies are built.
