file(REMOVE_RECURSE
  "CMakeFiles/mos_prediction.dir/mos_prediction.cpp.o"
  "CMakeFiles/mos_prediction.dir/mos_prediction.cpp.o.d"
  "mos_prediction"
  "mos_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mos_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
