file(REMOVE_RECURSE
  "CMakeFiles/early_detection.dir/early_detection.cpp.o"
  "CMakeFiles/early_detection.dir/early_detection.cpp.o.d"
  "early_detection"
  "early_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
