# Empty compiler generated dependencies file for early_detection.
# This may be replaced when dependencies are built.
