file(REMOVE_RECURSE
  "CMakeFiles/fig4_engagement_mos.dir/fig4_engagement_mos.cpp.o"
  "CMakeFiles/fig4_engagement_mos.dir/fig4_engagement_mos.cpp.o.d"
  "fig4_engagement_mos"
  "fig4_engagement_mos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_engagement_mos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
