# Empty dependencies file for fig4_engagement_mos.
# This may be replaced when dependencies are built.
