file(REMOVE_RECURSE
  "CMakeFiles/fig2_compounding.dir/fig2_compounding.cpp.o"
  "CMakeFiles/fig2_compounding.dir/fig2_compounding.cpp.o.d"
  "fig2_compounding"
  "fig2_compounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_compounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
