# Empty dependencies file for fig2_compounding.
# This may be replaced when dependencies are built.
