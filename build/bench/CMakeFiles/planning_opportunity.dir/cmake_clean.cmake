file(REMOVE_RECURSE
  "CMakeFiles/planning_opportunity.dir/planning_opportunity.cpp.o"
  "CMakeFiles/planning_opportunity.dir/planning_opportunity.cpp.o.d"
  "planning_opportunity"
  "planning_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planning_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
