# Empty compiler generated dependencies file for planning_opportunity.
# This may be replaced when dependencies are built.
