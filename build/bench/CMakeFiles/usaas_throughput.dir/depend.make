# Empty dependencies file for usaas_throughput.
# This may be replaced when dependencies are built.
