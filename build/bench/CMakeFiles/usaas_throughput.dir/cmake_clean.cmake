file(REMOVE_RECURSE
  "CMakeFiles/usaas_throughput.dir/usaas_throughput.cpp.o"
  "CMakeFiles/usaas_throughput.dir/usaas_throughput.cpp.o.d"
  "usaas_throughput"
  "usaas_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
