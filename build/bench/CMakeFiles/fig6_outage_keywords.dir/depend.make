# Empty dependencies file for fig6_outage_keywords.
# This may be replaced when dependencies are built.
