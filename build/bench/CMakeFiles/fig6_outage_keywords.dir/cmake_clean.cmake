file(REMOVE_RECURSE
  "CMakeFiles/fig6_outage_keywords.dir/fig6_outage_keywords.cpp.o"
  "CMakeFiles/fig6_outage_keywords.dir/fig6_outage_keywords.cpp.o.d"
  "fig6_outage_keywords"
  "fig6_outage_keywords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_outage_keywords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
