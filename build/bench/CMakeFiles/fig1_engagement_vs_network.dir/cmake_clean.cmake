file(REMOVE_RECURSE
  "CMakeFiles/fig1_engagement_vs_network.dir/fig1_engagement_vs_network.cpp.o"
  "CMakeFiles/fig1_engagement_vs_network.dir/fig1_engagement_vs_network.cpp.o.d"
  "fig1_engagement_vs_network"
  "fig1_engagement_vs_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_engagement_vs_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
