# Empty compiler generated dependencies file for fig1_engagement_vs_network.
# This may be replaced when dependencies are built.
