# Empty dependencies file for cross_signal_corroboration.
# This may be replaced when dependencies are built.
