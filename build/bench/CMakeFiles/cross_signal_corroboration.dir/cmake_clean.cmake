file(REMOVE_RECURSE
  "CMakeFiles/cross_signal_corroboration.dir/cross_signal_corroboration.cpp.o"
  "CMakeFiles/cross_signal_corroboration.dir/cross_signal_corroboration.cpp.o.d"
  "cross_signal_corroboration"
  "cross_signal_corroboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_signal_corroboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
