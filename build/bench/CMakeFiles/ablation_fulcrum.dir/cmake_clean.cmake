file(REMOVE_RECURSE
  "CMakeFiles/ablation_fulcrum.dir/ablation_fulcrum.cpp.o"
  "CMakeFiles/ablation_fulcrum.dir/ablation_fulcrum.cpp.o.d"
  "ablation_fulcrum"
  "ablation_fulcrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fulcrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
