# Empty compiler generated dependencies file for ablation_fulcrum.
# This may be replaced when dependencies are built.
