file(REMOVE_RECURSE
  "CMakeFiles/te_opportunity.dir/te_opportunity.cpp.o"
  "CMakeFiles/te_opportunity.dir/te_opportunity.cpp.o.d"
  "te_opportunity"
  "te_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/te_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
