# Empty dependencies file for te_opportunity.
# This may be replaced when dependencies are built.
