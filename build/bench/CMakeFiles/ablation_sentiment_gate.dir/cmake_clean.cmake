file(REMOVE_RECURSE
  "CMakeFiles/ablation_sentiment_gate.dir/ablation_sentiment_gate.cpp.o"
  "CMakeFiles/ablation_sentiment_gate.dir/ablation_sentiment_gate.cpp.o.d"
  "ablation_sentiment_gate"
  "ablation_sentiment_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sentiment_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
