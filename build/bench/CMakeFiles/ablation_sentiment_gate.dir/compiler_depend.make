# Empty compiler generated dependencies file for ablation_sentiment_gate.
# This may be replaced when dependencies are built.
