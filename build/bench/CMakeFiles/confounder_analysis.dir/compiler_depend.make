# Empty compiler generated dependencies file for confounder_analysis.
# This may be replaced when dependencies are built.
