file(REMOVE_RECURSE
  "CMakeFiles/confounder_analysis.dir/confounder_analysis.cpp.o"
  "CMakeFiles/confounder_analysis.dir/confounder_analysis.cpp.o.d"
  "confounder_analysis"
  "confounder_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confounder_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
