file(REMOVE_RECURSE
  "CMakeFiles/fig7_downlink_speeds.dir/fig7_downlink_speeds.cpp.o"
  "CMakeFiles/fig7_downlink_speeds.dir/fig7_downlink_speeds.cpp.o.d"
  "fig7_downlink_speeds"
  "fig7_downlink_speeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_downlink_speeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
