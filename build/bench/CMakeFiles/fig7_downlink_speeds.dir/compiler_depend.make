# Empty compiler generated dependencies file for fig7_downlink_speeds.
# This may be replaced when dependencies are built.
