# Empty compiler generated dependencies file for test_media_session.
# This may be replaced when dependencies are built.
