file(REMOVE_RECURSE
  "CMakeFiles/test_media_session.dir/test_media_session.cpp.o"
  "CMakeFiles/test_media_session.dir/test_media_session.cpp.o.d"
  "test_media_session"
  "test_media_session.pdb"
  "test_media_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_media_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
