# Empty dependencies file for test_usaas_correlation.
# This may be replaced when dependencies are built.
