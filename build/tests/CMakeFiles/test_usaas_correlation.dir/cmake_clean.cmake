file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_correlation.dir/test_usaas_correlation.cpp.o"
  "CMakeFiles/test_usaas_correlation.dir/test_usaas_correlation.cpp.o.d"
  "test_usaas_correlation"
  "test_usaas_correlation.pdb"
  "test_usaas_correlation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
