file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_planning.dir/test_usaas_planning.cpp.o"
  "CMakeFiles/test_usaas_planning.dir/test_usaas_planning.cpp.o.d"
  "test_usaas_planning"
  "test_usaas_planning.pdb"
  "test_usaas_planning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
