# Empty dependencies file for test_usaas_planning.
# This may be replaced when dependencies are built.
