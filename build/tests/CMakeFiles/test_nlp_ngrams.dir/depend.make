# Empty dependencies file for test_nlp_ngrams.
# This may be replaced when dependencies are built.
