file(REMOVE_RECURSE
  "CMakeFiles/test_nlp_ngrams.dir/test_nlp_ngrams.cpp.o"
  "CMakeFiles/test_nlp_ngrams.dir/test_nlp_ngrams.cpp.o.d"
  "test_nlp_ngrams"
  "test_nlp_ngrams.pdb"
  "test_nlp_ngrams[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlp_ngrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
