file(REMOVE_RECURSE
  "CMakeFiles/test_leo.dir/test_leo.cpp.o"
  "CMakeFiles/test_leo.dir/test_leo.cpp.o.d"
  "test_leo"
  "test_leo.pdb"
  "test_leo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
