# Empty compiler generated dependencies file for test_leo.
# This may be replaced when dependencies are built.
