# Empty dependencies file for test_usaas_sharding.
# This may be replaced when dependencies are built.
