file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_sharding.dir/test_usaas_sharding.cpp.o"
  "CMakeFiles/test_usaas_sharding.dir/test_usaas_sharding.cpp.o.d"
  "test_usaas_sharding"
  "test_usaas_sharding.pdb"
  "test_usaas_sharding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
