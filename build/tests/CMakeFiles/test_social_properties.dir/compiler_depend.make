# Empty compiler generated dependencies file for test_social_properties.
# This may be replaced when dependencies are built.
