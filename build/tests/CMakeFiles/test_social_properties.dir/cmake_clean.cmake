file(REMOVE_RECURSE
  "CMakeFiles/test_social_properties.dir/test_social_properties.cpp.o"
  "CMakeFiles/test_social_properties.dir/test_social_properties.cpp.o.d"
  "test_social_properties"
  "test_social_properties.pdb"
  "test_social_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_social_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
