# Empty dependencies file for test_usaas_mos_predictor.
# This may be replaced when dependencies are built.
