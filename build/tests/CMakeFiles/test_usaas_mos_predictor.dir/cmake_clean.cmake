file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_mos_predictor.dir/test_usaas_mos_predictor.cpp.o"
  "CMakeFiles/test_usaas_mos_predictor.dir/test_usaas_mos_predictor.cpp.o.d"
  "test_usaas_mos_predictor"
  "test_usaas_mos_predictor.pdb"
  "test_usaas_mos_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_mos_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
