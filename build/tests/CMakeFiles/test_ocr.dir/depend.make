# Empty dependencies file for test_ocr.
# This may be replaced when dependencies are built.
