file(REMOVE_RECURSE
  "CMakeFiles/test_ocr.dir/test_ocr.cpp.o"
  "CMakeFiles/test_ocr.dir/test_ocr.cpp.o.d"
  "test_ocr"
  "test_ocr.pdb"
  "test_ocr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ocr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
