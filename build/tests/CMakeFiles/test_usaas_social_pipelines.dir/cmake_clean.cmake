file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_social_pipelines.dir/test_usaas_social_pipelines.cpp.o"
  "CMakeFiles/test_usaas_social_pipelines.dir/test_usaas_social_pipelines.cpp.o.d"
  "test_usaas_social_pipelines"
  "test_usaas_social_pipelines.pdb"
  "test_usaas_social_pipelines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_social_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
