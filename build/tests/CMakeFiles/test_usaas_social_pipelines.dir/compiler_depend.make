# Empty compiler generated dependencies file for test_usaas_social_pipelines.
# This may be replaced when dependencies are built.
