# Empty compiler generated dependencies file for test_nlp_summarizer.
# This may be replaced when dependencies are built.
