file(REMOVE_RECURSE
  "CMakeFiles/test_nlp_summarizer.dir/test_nlp_summarizer.cpp.o"
  "CMakeFiles/test_nlp_summarizer.dir/test_nlp_summarizer.cpp.o.d"
  "test_nlp_summarizer"
  "test_nlp_summarizer.pdb"
  "test_nlp_summarizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlp_summarizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
