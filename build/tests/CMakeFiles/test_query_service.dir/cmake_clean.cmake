file(REMOVE_RECURSE
  "CMakeFiles/test_query_service.dir/test_query_service.cpp.o"
  "CMakeFiles/test_query_service.dir/test_query_service.cpp.o.d"
  "test_query_service"
  "test_query_service.pdb"
  "test_query_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
