# Empty dependencies file for test_query_service.
# This may be replaced when dependencies are built.
