# Empty compiler generated dependencies file for test_usaas_isp_bridge.
# This may be replaced when dependencies are built.
