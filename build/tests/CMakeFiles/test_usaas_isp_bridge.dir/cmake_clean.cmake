file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_isp_bridge.dir/test_usaas_isp_bridge.cpp.o"
  "CMakeFiles/test_usaas_isp_bridge.dir/test_usaas_isp_bridge.cpp.o.d"
  "test_usaas_isp_bridge"
  "test_usaas_isp_bridge.pdb"
  "test_usaas_isp_bridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_isp_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
