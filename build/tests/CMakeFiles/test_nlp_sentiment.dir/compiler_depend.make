# Empty compiler generated dependencies file for test_nlp_sentiment.
# This may be replaced when dependencies are built.
