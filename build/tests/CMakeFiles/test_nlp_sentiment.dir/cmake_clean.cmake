file(REMOVE_RECURSE
  "CMakeFiles/test_nlp_sentiment.dir/test_nlp_sentiment.cpp.o"
  "CMakeFiles/test_nlp_sentiment.dir/test_nlp_sentiment.cpp.o.d"
  "test_nlp_sentiment"
  "test_nlp_sentiment.pdb"
  "test_nlp_sentiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlp_sentiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
