file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_report.dir/test_usaas_report.cpp.o"
  "CMakeFiles/test_usaas_report.dir/test_usaas_report.cpp.o.d"
  "test_usaas_report"
  "test_usaas_report.pdb"
  "test_usaas_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
