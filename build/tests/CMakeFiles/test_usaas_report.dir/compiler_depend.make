# Empty compiler generated dependencies file for test_usaas_report.
# This may be replaced when dependencies are built.
