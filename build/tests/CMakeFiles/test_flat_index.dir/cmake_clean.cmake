file(REMOVE_RECURSE
  "CMakeFiles/test_flat_index.dir/test_flat_index.cpp.o"
  "CMakeFiles/test_flat_index.dir/test_flat_index.cpp.o.d"
  "test_flat_index"
  "test_flat_index.pdb"
  "test_flat_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
