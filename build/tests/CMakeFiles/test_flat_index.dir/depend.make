# Empty dependencies file for test_flat_index.
# This may be replaced when dependencies are built.
