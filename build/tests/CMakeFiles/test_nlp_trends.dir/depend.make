# Empty dependencies file for test_nlp_trends.
# This may be replaced when dependencies are built.
