file(REMOVE_RECURSE
  "CMakeFiles/test_nlp_trends.dir/test_nlp_trends.cpp.o"
  "CMakeFiles/test_nlp_trends.dir/test_nlp_trends.cpp.o.d"
  "test_nlp_trends"
  "test_nlp_trends.pdb"
  "test_nlp_trends[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlp_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
