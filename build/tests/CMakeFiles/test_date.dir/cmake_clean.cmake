file(REMOVE_RECURSE
  "CMakeFiles/test_date.dir/test_date.cpp.o"
  "CMakeFiles/test_date.dir/test_date.cpp.o.d"
  "test_date"
  "test_date.pdb"
  "test_date[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_date.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
