# Empty compiler generated dependencies file for test_date.
# This may be replaced when dependencies are built.
