# Empty dependencies file for test_usaas_signals.
# This may be replaced when dependencies are built.
