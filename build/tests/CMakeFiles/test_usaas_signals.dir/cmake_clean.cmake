file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_signals.dir/test_usaas_signals.cpp.o"
  "CMakeFiles/test_usaas_signals.dir/test_usaas_signals.cpp.o.d"
  "test_usaas_signals"
  "test_usaas_signals.pdb"
  "test_usaas_signals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
