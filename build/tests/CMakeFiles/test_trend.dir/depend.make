# Empty dependencies file for test_trend.
# This may be replaced when dependencies are built.
