
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_usaas_ingest_equivalence.cpp" "tests/CMakeFiles/test_usaas_ingest_equivalence.dir/test_usaas_ingest_equivalence.cpp.o" "gcc" "tests/CMakeFiles/test_usaas_ingest_equivalence.dir/test_usaas_ingest_equivalence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/usaas/CMakeFiles/usaas.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/usaas_social.dir/DependInfo.cmake"
  "/root/repo/build/src/ocr/CMakeFiles/usaas_ocr.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/usaas_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/leo/CMakeFiles/usaas_leo.dir/DependInfo.cmake"
  "/root/repo/build/src/confsim/CMakeFiles/usaas_confsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/usaas_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/usaas_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
