# Empty dependencies file for test_usaas_ingest_equivalence.
# This may be replaced when dependencies are built.
