file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_ingest_equivalence.dir/test_usaas_ingest_equivalence.cpp.o"
  "CMakeFiles/test_usaas_ingest_equivalence.dir/test_usaas_ingest_equivalence.cpp.o.d"
  "test_usaas_ingest_equivalence"
  "test_usaas_ingest_equivalence.pdb"
  "test_usaas_ingest_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_ingest_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
