file(REMOVE_RECURSE
  "CMakeFiles/test_usaas_confounders.dir/test_usaas_confounders.cpp.o"
  "CMakeFiles/test_usaas_confounders.dir/test_usaas_confounders.cpp.o.d"
  "test_usaas_confounders"
  "test_usaas_confounders.pdb"
  "test_usaas_confounders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usaas_confounders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
