# Empty dependencies file for test_usaas_confounders.
# This may be replaced when dependencies are built.
