# Empty compiler generated dependencies file for test_nlp_tokenizer.
# This may be replaced when dependencies are built.
