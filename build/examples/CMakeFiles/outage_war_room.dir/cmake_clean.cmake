file(REMOVE_RECURSE
  "CMakeFiles/outage_war_room.dir/outage_war_room.cpp.o"
  "CMakeFiles/outage_war_room.dir/outage_war_room.cpp.o.d"
  "outage_war_room"
  "outage_war_room.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_war_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
