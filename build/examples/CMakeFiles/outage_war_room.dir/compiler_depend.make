# Empty compiler generated dependencies file for outage_war_room.
# This may be replaced when dependencies are built.
