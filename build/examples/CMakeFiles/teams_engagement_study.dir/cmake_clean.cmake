file(REMOVE_RECURSE
  "CMakeFiles/teams_engagement_study.dir/teams_engagement_study.cpp.o"
  "CMakeFiles/teams_engagement_study.dir/teams_engagement_study.cpp.o.d"
  "teams_engagement_study"
  "teams_engagement_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teams_engagement_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
