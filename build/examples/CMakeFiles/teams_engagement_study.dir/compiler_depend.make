# Empty compiler generated dependencies file for teams_engagement_study.
# This may be replaced when dependencies are built.
