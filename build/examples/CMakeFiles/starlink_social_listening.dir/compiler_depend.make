# Empty compiler generated dependencies file for starlink_social_listening.
# This may be replaced when dependencies are built.
