file(REMOVE_RECURSE
  "CMakeFiles/starlink_social_listening.dir/starlink_social_listening.cpp.o"
  "CMakeFiles/starlink_social_listening.dir/starlink_social_listening.cpp.o.d"
  "starlink_social_listening"
  "starlink_social_listening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_social_listening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
