# Empty dependencies file for usaas_service.
# This may be replaced when dependencies are built.
