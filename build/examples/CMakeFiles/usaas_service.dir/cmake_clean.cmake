file(REMOVE_RECURSE
  "CMakeFiles/usaas_service.dir/usaas_service.cpp.o"
  "CMakeFiles/usaas_service.dir/usaas_service.cpp.o.d"
  "usaas_service"
  "usaas_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
