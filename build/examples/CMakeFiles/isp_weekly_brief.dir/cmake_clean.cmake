file(REMOVE_RECURSE
  "CMakeFiles/isp_weekly_brief.dir/isp_weekly_brief.cpp.o"
  "CMakeFiles/isp_weekly_brief.dir/isp_weekly_brief.cpp.o.d"
  "isp_weekly_brief"
  "isp_weekly_brief.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_weekly_brief.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
