# Empty compiler generated dependencies file for isp_weekly_brief.
# This may be replaced when dependencies are built.
