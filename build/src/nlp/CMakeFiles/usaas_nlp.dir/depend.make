# Empty dependencies file for usaas_nlp.
# This may be replaced when dependencies are built.
