file(REMOVE_RECURSE
  "libusaas_nlp.a"
)
