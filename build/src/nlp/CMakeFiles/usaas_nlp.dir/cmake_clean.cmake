file(REMOVE_RECURSE
  "CMakeFiles/usaas_nlp.dir/keywords.cpp.o"
  "CMakeFiles/usaas_nlp.dir/keywords.cpp.o.d"
  "CMakeFiles/usaas_nlp.dir/lexicon.cpp.o"
  "CMakeFiles/usaas_nlp.dir/lexicon.cpp.o.d"
  "CMakeFiles/usaas_nlp.dir/ngrams.cpp.o"
  "CMakeFiles/usaas_nlp.dir/ngrams.cpp.o.d"
  "CMakeFiles/usaas_nlp.dir/sentiment.cpp.o"
  "CMakeFiles/usaas_nlp.dir/sentiment.cpp.o.d"
  "CMakeFiles/usaas_nlp.dir/summarizer.cpp.o"
  "CMakeFiles/usaas_nlp.dir/summarizer.cpp.o.d"
  "CMakeFiles/usaas_nlp.dir/tokenizer.cpp.o"
  "CMakeFiles/usaas_nlp.dir/tokenizer.cpp.o.d"
  "CMakeFiles/usaas_nlp.dir/trends.cpp.o"
  "CMakeFiles/usaas_nlp.dir/trends.cpp.o.d"
  "CMakeFiles/usaas_nlp.dir/wordcloud.cpp.o"
  "CMakeFiles/usaas_nlp.dir/wordcloud.cpp.o.d"
  "libusaas_nlp.a"
  "libusaas_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
