
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/keywords.cpp" "src/nlp/CMakeFiles/usaas_nlp.dir/keywords.cpp.o" "gcc" "src/nlp/CMakeFiles/usaas_nlp.dir/keywords.cpp.o.d"
  "/root/repo/src/nlp/lexicon.cpp" "src/nlp/CMakeFiles/usaas_nlp.dir/lexicon.cpp.o" "gcc" "src/nlp/CMakeFiles/usaas_nlp.dir/lexicon.cpp.o.d"
  "/root/repo/src/nlp/ngrams.cpp" "src/nlp/CMakeFiles/usaas_nlp.dir/ngrams.cpp.o" "gcc" "src/nlp/CMakeFiles/usaas_nlp.dir/ngrams.cpp.o.d"
  "/root/repo/src/nlp/sentiment.cpp" "src/nlp/CMakeFiles/usaas_nlp.dir/sentiment.cpp.o" "gcc" "src/nlp/CMakeFiles/usaas_nlp.dir/sentiment.cpp.o.d"
  "/root/repo/src/nlp/summarizer.cpp" "src/nlp/CMakeFiles/usaas_nlp.dir/summarizer.cpp.o" "gcc" "src/nlp/CMakeFiles/usaas_nlp.dir/summarizer.cpp.o.d"
  "/root/repo/src/nlp/tokenizer.cpp" "src/nlp/CMakeFiles/usaas_nlp.dir/tokenizer.cpp.o" "gcc" "src/nlp/CMakeFiles/usaas_nlp.dir/tokenizer.cpp.o.d"
  "/root/repo/src/nlp/trends.cpp" "src/nlp/CMakeFiles/usaas_nlp.dir/trends.cpp.o" "gcc" "src/nlp/CMakeFiles/usaas_nlp.dir/trends.cpp.o.d"
  "/root/repo/src/nlp/wordcloud.cpp" "src/nlp/CMakeFiles/usaas_nlp.dir/wordcloud.cpp.o" "gcc" "src/nlp/CMakeFiles/usaas_nlp.dir/wordcloud.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/usaas_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
