
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/loss.cpp" "src/netsim/CMakeFiles/usaas_netsim.dir/loss.cpp.o" "gcc" "src/netsim/CMakeFiles/usaas_netsim.dir/loss.cpp.o.d"
  "/root/repo/src/netsim/media_session.cpp" "src/netsim/CMakeFiles/usaas_netsim.dir/media_session.cpp.o" "gcc" "src/netsim/CMakeFiles/usaas_netsim.dir/media_session.cpp.o.d"
  "/root/repo/src/netsim/path_model.cpp" "src/netsim/CMakeFiles/usaas_netsim.dir/path_model.cpp.o" "gcc" "src/netsim/CMakeFiles/usaas_netsim.dir/path_model.cpp.o.d"
  "/root/repo/src/netsim/profiles.cpp" "src/netsim/CMakeFiles/usaas_netsim.dir/profiles.cpp.o" "gcc" "src/netsim/CMakeFiles/usaas_netsim.dir/profiles.cpp.o.d"
  "/root/repo/src/netsim/telemetry.cpp" "src/netsim/CMakeFiles/usaas_netsim.dir/telemetry.cpp.o" "gcc" "src/netsim/CMakeFiles/usaas_netsim.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/usaas_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
