file(REMOVE_RECURSE
  "CMakeFiles/usaas_netsim.dir/loss.cpp.o"
  "CMakeFiles/usaas_netsim.dir/loss.cpp.o.d"
  "CMakeFiles/usaas_netsim.dir/media_session.cpp.o"
  "CMakeFiles/usaas_netsim.dir/media_session.cpp.o.d"
  "CMakeFiles/usaas_netsim.dir/path_model.cpp.o"
  "CMakeFiles/usaas_netsim.dir/path_model.cpp.o.d"
  "CMakeFiles/usaas_netsim.dir/profiles.cpp.o"
  "CMakeFiles/usaas_netsim.dir/profiles.cpp.o.d"
  "CMakeFiles/usaas_netsim.dir/telemetry.cpp.o"
  "CMakeFiles/usaas_netsim.dir/telemetry.cpp.o.d"
  "libusaas_netsim.a"
  "libusaas_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
