# Empty compiler generated dependencies file for usaas_netsim.
# This may be replaced when dependencies are built.
