file(REMOVE_RECURSE
  "libusaas_netsim.a"
)
