file(REMOVE_RECURSE
  "libusaas_social.a"
)
