file(REMOVE_RECURSE
  "CMakeFiles/usaas_social.dir/subreddit.cpp.o"
  "CMakeFiles/usaas_social.dir/subreddit.cpp.o.d"
  "CMakeFiles/usaas_social.dir/text_gen.cpp.o"
  "CMakeFiles/usaas_social.dir/text_gen.cpp.o.d"
  "libusaas_social.a"
  "libusaas_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
