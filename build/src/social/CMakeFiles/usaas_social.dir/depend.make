# Empty dependencies file for usaas_social.
# This may be replaced when dependencies are built.
