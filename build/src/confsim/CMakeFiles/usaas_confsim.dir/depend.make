# Empty dependencies file for usaas_confsim.
# This may be replaced when dependencies are built.
