file(REMOVE_RECURSE
  "CMakeFiles/usaas_confsim.dir/behavior.cpp.o"
  "CMakeFiles/usaas_confsim.dir/behavior.cpp.o.d"
  "CMakeFiles/usaas_confsim.dir/dataset.cpp.o"
  "CMakeFiles/usaas_confsim.dir/dataset.cpp.o.d"
  "CMakeFiles/usaas_confsim.dir/mos.cpp.o"
  "CMakeFiles/usaas_confsim.dir/mos.cpp.o.d"
  "CMakeFiles/usaas_confsim.dir/platform.cpp.o"
  "CMakeFiles/usaas_confsim.dir/platform.cpp.o.d"
  "libusaas_confsim.a"
  "libusaas_confsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas_confsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
