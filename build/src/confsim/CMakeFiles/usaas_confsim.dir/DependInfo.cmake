
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/confsim/behavior.cpp" "src/confsim/CMakeFiles/usaas_confsim.dir/behavior.cpp.o" "gcc" "src/confsim/CMakeFiles/usaas_confsim.dir/behavior.cpp.o.d"
  "/root/repo/src/confsim/dataset.cpp" "src/confsim/CMakeFiles/usaas_confsim.dir/dataset.cpp.o" "gcc" "src/confsim/CMakeFiles/usaas_confsim.dir/dataset.cpp.o.d"
  "/root/repo/src/confsim/mos.cpp" "src/confsim/CMakeFiles/usaas_confsim.dir/mos.cpp.o" "gcc" "src/confsim/CMakeFiles/usaas_confsim.dir/mos.cpp.o.d"
  "/root/repo/src/confsim/platform.cpp" "src/confsim/CMakeFiles/usaas_confsim.dir/platform.cpp.o" "gcc" "src/confsim/CMakeFiles/usaas_confsim.dir/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/usaas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/usaas_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
