file(REMOVE_RECURSE
  "libusaas_confsim.a"
)
