file(REMOVE_RECURSE
  "CMakeFiles/usaas_leo.dir/constellation.cpp.o"
  "CMakeFiles/usaas_leo.dir/constellation.cpp.o.d"
  "CMakeFiles/usaas_leo.dir/events.cpp.o"
  "CMakeFiles/usaas_leo.dir/events.cpp.o.d"
  "CMakeFiles/usaas_leo.dir/launches.cpp.o"
  "CMakeFiles/usaas_leo.dir/launches.cpp.o.d"
  "CMakeFiles/usaas_leo.dir/outages.cpp.o"
  "CMakeFiles/usaas_leo.dir/outages.cpp.o.d"
  "CMakeFiles/usaas_leo.dir/speed.cpp.o"
  "CMakeFiles/usaas_leo.dir/speed.cpp.o.d"
  "CMakeFiles/usaas_leo.dir/subscribers.cpp.o"
  "CMakeFiles/usaas_leo.dir/subscribers.cpp.o.d"
  "libusaas_leo.a"
  "libusaas_leo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas_leo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
