# Empty dependencies file for usaas_leo.
# This may be replaced when dependencies are built.
