file(REMOVE_RECURSE
  "libusaas_leo.a"
)
