
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/leo/constellation.cpp" "src/leo/CMakeFiles/usaas_leo.dir/constellation.cpp.o" "gcc" "src/leo/CMakeFiles/usaas_leo.dir/constellation.cpp.o.d"
  "/root/repo/src/leo/events.cpp" "src/leo/CMakeFiles/usaas_leo.dir/events.cpp.o" "gcc" "src/leo/CMakeFiles/usaas_leo.dir/events.cpp.o.d"
  "/root/repo/src/leo/launches.cpp" "src/leo/CMakeFiles/usaas_leo.dir/launches.cpp.o" "gcc" "src/leo/CMakeFiles/usaas_leo.dir/launches.cpp.o.d"
  "/root/repo/src/leo/outages.cpp" "src/leo/CMakeFiles/usaas_leo.dir/outages.cpp.o" "gcc" "src/leo/CMakeFiles/usaas_leo.dir/outages.cpp.o.d"
  "/root/repo/src/leo/speed.cpp" "src/leo/CMakeFiles/usaas_leo.dir/speed.cpp.o" "gcc" "src/leo/CMakeFiles/usaas_leo.dir/speed.cpp.o.d"
  "/root/repo/src/leo/subscribers.cpp" "src/leo/CMakeFiles/usaas_leo.dir/subscribers.cpp.o" "gcc" "src/leo/CMakeFiles/usaas_leo.dir/subscribers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/usaas_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
