file(REMOVE_RECURSE
  "libusaas_ocr.a"
)
