file(REMOVE_RECURSE
  "CMakeFiles/usaas_ocr.dir/extract.cpp.o"
  "CMakeFiles/usaas_ocr.dir/extract.cpp.o.d"
  "CMakeFiles/usaas_ocr.dir/noisy_ocr.cpp.o"
  "CMakeFiles/usaas_ocr.dir/noisy_ocr.cpp.o.d"
  "CMakeFiles/usaas_ocr.dir/screenshot.cpp.o"
  "CMakeFiles/usaas_ocr.dir/screenshot.cpp.o.d"
  "libusaas_ocr.a"
  "libusaas_ocr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas_ocr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
