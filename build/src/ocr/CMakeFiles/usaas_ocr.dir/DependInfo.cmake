
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocr/extract.cpp" "src/ocr/CMakeFiles/usaas_ocr.dir/extract.cpp.o" "gcc" "src/ocr/CMakeFiles/usaas_ocr.dir/extract.cpp.o.d"
  "/root/repo/src/ocr/noisy_ocr.cpp" "src/ocr/CMakeFiles/usaas_ocr.dir/noisy_ocr.cpp.o" "gcc" "src/ocr/CMakeFiles/usaas_ocr.dir/noisy_ocr.cpp.o.d"
  "/root/repo/src/ocr/screenshot.cpp" "src/ocr/CMakeFiles/usaas_ocr.dir/screenshot.cpp.o" "gcc" "src/ocr/CMakeFiles/usaas_ocr.dir/screenshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/usaas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/usaas_nlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
