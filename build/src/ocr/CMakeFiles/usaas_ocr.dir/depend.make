# Empty dependencies file for usaas_ocr.
# This may be replaced when dependencies are built.
