file(REMOVE_RECURSE
  "libusaas.a"
)
