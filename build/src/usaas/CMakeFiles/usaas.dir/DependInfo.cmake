
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/usaas/confounders.cpp" "src/usaas/CMakeFiles/usaas.dir/confounders.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/confounders.cpp.o.d"
  "/root/repo/src/usaas/correlation_engine.cpp" "src/usaas/CMakeFiles/usaas.dir/correlation_engine.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/correlation_engine.cpp.o.d"
  "/root/repo/src/usaas/early_detector.cpp" "src/usaas/CMakeFiles/usaas.dir/early_detector.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/early_detector.cpp.o.d"
  "/root/repo/src/usaas/fulcrum.cpp" "src/usaas/CMakeFiles/usaas.dir/fulcrum.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/fulcrum.cpp.o.d"
  "/root/repo/src/usaas/isp_bridge.cpp" "src/usaas/CMakeFiles/usaas.dir/isp_bridge.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/isp_bridge.cpp.o.d"
  "/root/repo/src/usaas/mos_predictor.cpp" "src/usaas/CMakeFiles/usaas.dir/mos_predictor.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/mos_predictor.cpp.o.d"
  "/root/repo/src/usaas/outage_detector.cpp" "src/usaas/CMakeFiles/usaas.dir/outage_detector.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/outage_detector.cpp.o.d"
  "/root/repo/src/usaas/peak_annotator.cpp" "src/usaas/CMakeFiles/usaas.dir/peak_annotator.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/peak_annotator.cpp.o.d"
  "/root/repo/src/usaas/planner.cpp" "src/usaas/CMakeFiles/usaas.dir/planner.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/planner.cpp.o.d"
  "/root/repo/src/usaas/qoe_controller.cpp" "src/usaas/CMakeFiles/usaas.dir/qoe_controller.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/qoe_controller.cpp.o.d"
  "/root/repo/src/usaas/query_service.cpp" "src/usaas/CMakeFiles/usaas.dir/query_service.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/query_service.cpp.o.d"
  "/root/repo/src/usaas/report.cpp" "src/usaas/CMakeFiles/usaas.dir/report.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/report.cpp.o.d"
  "/root/repo/src/usaas/signals.cpp" "src/usaas/CMakeFiles/usaas.dir/signals.cpp.o" "gcc" "src/usaas/CMakeFiles/usaas.dir/signals.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/usaas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/usaas_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/confsim/CMakeFiles/usaas_confsim.dir/DependInfo.cmake"
  "/root/repo/build/src/leo/CMakeFiles/usaas_leo.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/usaas_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/ocr/CMakeFiles/usaas_ocr.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/usaas_social.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
