# Empty compiler generated dependencies file for usaas.
# This may be replaced when dependencies are built.
