file(REMOVE_RECURSE
  "CMakeFiles/usaas.dir/confounders.cpp.o"
  "CMakeFiles/usaas.dir/confounders.cpp.o.d"
  "CMakeFiles/usaas.dir/correlation_engine.cpp.o"
  "CMakeFiles/usaas.dir/correlation_engine.cpp.o.d"
  "CMakeFiles/usaas.dir/early_detector.cpp.o"
  "CMakeFiles/usaas.dir/early_detector.cpp.o.d"
  "CMakeFiles/usaas.dir/fulcrum.cpp.o"
  "CMakeFiles/usaas.dir/fulcrum.cpp.o.d"
  "CMakeFiles/usaas.dir/isp_bridge.cpp.o"
  "CMakeFiles/usaas.dir/isp_bridge.cpp.o.d"
  "CMakeFiles/usaas.dir/mos_predictor.cpp.o"
  "CMakeFiles/usaas.dir/mos_predictor.cpp.o.d"
  "CMakeFiles/usaas.dir/outage_detector.cpp.o"
  "CMakeFiles/usaas.dir/outage_detector.cpp.o.d"
  "CMakeFiles/usaas.dir/peak_annotator.cpp.o"
  "CMakeFiles/usaas.dir/peak_annotator.cpp.o.d"
  "CMakeFiles/usaas.dir/planner.cpp.o"
  "CMakeFiles/usaas.dir/planner.cpp.o.d"
  "CMakeFiles/usaas.dir/qoe_controller.cpp.o"
  "CMakeFiles/usaas.dir/qoe_controller.cpp.o.d"
  "CMakeFiles/usaas.dir/query_service.cpp.o"
  "CMakeFiles/usaas.dir/query_service.cpp.o.d"
  "CMakeFiles/usaas.dir/report.cpp.o"
  "CMakeFiles/usaas.dir/report.cpp.o.d"
  "CMakeFiles/usaas.dir/signals.cpp.o"
  "CMakeFiles/usaas.dir/signals.cpp.o.d"
  "libusaas.a"
  "libusaas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
