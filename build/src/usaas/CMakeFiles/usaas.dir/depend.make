# Empty dependencies file for usaas.
# This may be replaced when dependencies are built.
