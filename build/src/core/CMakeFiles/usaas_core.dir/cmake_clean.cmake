file(REMOVE_RECURSE
  "CMakeFiles/usaas_core.dir/bootstrap.cpp.o"
  "CMakeFiles/usaas_core.dir/bootstrap.cpp.o.d"
  "CMakeFiles/usaas_core.dir/correlation.cpp.o"
  "CMakeFiles/usaas_core.dir/correlation.cpp.o.d"
  "CMakeFiles/usaas_core.dir/csv.cpp.o"
  "CMakeFiles/usaas_core.dir/csv.cpp.o.d"
  "CMakeFiles/usaas_core.dir/date.cpp.o"
  "CMakeFiles/usaas_core.dir/date.cpp.o.d"
  "CMakeFiles/usaas_core.dir/flat_index.cpp.o"
  "CMakeFiles/usaas_core.dir/flat_index.cpp.o.d"
  "CMakeFiles/usaas_core.dir/histogram.cpp.o"
  "CMakeFiles/usaas_core.dir/histogram.cpp.o.d"
  "CMakeFiles/usaas_core.dir/peaks.cpp.o"
  "CMakeFiles/usaas_core.dir/peaks.cpp.o.d"
  "CMakeFiles/usaas_core.dir/regression.cpp.o"
  "CMakeFiles/usaas_core.dir/regression.cpp.o.d"
  "CMakeFiles/usaas_core.dir/rng.cpp.o"
  "CMakeFiles/usaas_core.dir/rng.cpp.o.d"
  "CMakeFiles/usaas_core.dir/stats.cpp.o"
  "CMakeFiles/usaas_core.dir/stats.cpp.o.d"
  "CMakeFiles/usaas_core.dir/thread_pool.cpp.o"
  "CMakeFiles/usaas_core.dir/thread_pool.cpp.o.d"
  "CMakeFiles/usaas_core.dir/timeseries.cpp.o"
  "CMakeFiles/usaas_core.dir/timeseries.cpp.o.d"
  "CMakeFiles/usaas_core.dir/trend.cpp.o"
  "CMakeFiles/usaas_core.dir/trend.cpp.o.d"
  "libusaas_core.a"
  "libusaas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usaas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
