
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap.cpp" "src/core/CMakeFiles/usaas_core.dir/bootstrap.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/bootstrap.cpp.o.d"
  "/root/repo/src/core/correlation.cpp" "src/core/CMakeFiles/usaas_core.dir/correlation.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/correlation.cpp.o.d"
  "/root/repo/src/core/csv.cpp" "src/core/CMakeFiles/usaas_core.dir/csv.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/csv.cpp.o.d"
  "/root/repo/src/core/date.cpp" "src/core/CMakeFiles/usaas_core.dir/date.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/date.cpp.o.d"
  "/root/repo/src/core/flat_index.cpp" "src/core/CMakeFiles/usaas_core.dir/flat_index.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/flat_index.cpp.o.d"
  "/root/repo/src/core/histogram.cpp" "src/core/CMakeFiles/usaas_core.dir/histogram.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/histogram.cpp.o.d"
  "/root/repo/src/core/peaks.cpp" "src/core/CMakeFiles/usaas_core.dir/peaks.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/peaks.cpp.o.d"
  "/root/repo/src/core/regression.cpp" "src/core/CMakeFiles/usaas_core.dir/regression.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/regression.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/usaas_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/rng.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/usaas_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/core/CMakeFiles/usaas_core.dir/thread_pool.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/thread_pool.cpp.o.d"
  "/root/repo/src/core/timeseries.cpp" "src/core/CMakeFiles/usaas_core.dir/timeseries.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/timeseries.cpp.o.d"
  "/root/repo/src/core/trend.cpp" "src/core/CMakeFiles/usaas_core.dir/trend.cpp.o" "gcc" "src/core/CMakeFiles/usaas_core.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
