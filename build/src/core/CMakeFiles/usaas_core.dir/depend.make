# Empty dependencies file for usaas_core.
# This may be replaced when dependencies are built.
