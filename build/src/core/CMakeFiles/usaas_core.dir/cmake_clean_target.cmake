file(REMOVE_RECURSE
  "libusaas_core.a"
)
