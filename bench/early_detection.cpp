// §4.1 (text): "we were also able to detect Redditors discussing the
// roaming feature of Starlink almost ~2 weeks before Elon Musk announced
// it on Twitter ... using a systematic pipeline which mines popular
// discussions (using upvotes and comment numbers)."
//
// Runs the trend miner over the corpus and reports the lead time for the
// roaming topic, plus everything else that emerged.
#include "bench_util.h"

#include "usaas/early_detector.h"

namespace {

using namespace usaas;

void reproduction() {
  bench::print_header(
      "Early-detection reproduction: mining popular discussions for "
      "emerging topics");
  const auto corpus = bench::make_social_corpus();
  const service::EarlyFeatureDetector detector;

  const auto lead = detector.lead_time_for(
      corpus.posts, "roaming",
      leo::EventTimeline::roaming_announcement_date());
  if (lead) {
    std::printf("roaming first detected %s — %lld days before the official "
                "announcement on %s (paper: ~2 weeks)\n",
                lead->detection.first_detected.to_string().c_str(),
                static_cast<long long>(lead->days_before_announcement),
                leo::EventTimeline::roaming_announcement_date()
                    .to_string()
                    .c_str());
    std::printf("  term '%s', burst score %.1f, popularity weight %.0f\n",
                lead->detection.term.c_str(), lead->detection.burst_score,
                lead->detection.weight);
  } else {
    std::printf("roaming NOT detected — pipeline regression!\n");
  }

  std::printf("\nall emergent topics (earliest first, top 15):\n");
  std::printf("%14s | %-24s %8s %8s\n", "first detected", "term", "burst",
              "weight");
  bench::print_rule();
  const auto topics = detector.detect(corpus.posts);
  for (std::size_t i = 0; i < std::min<std::size_t>(topics.size(), 15); ++i) {
    const auto& t = topics[i];
    std::printf("%14s | %-24s %8.1f %8.0f\n",
                t.first_detected.to_string().c_str(), t.term.c_str(),
                t.burst_score, t.weight);
  }
}

void BM_TrendMining(benchmark::State& state) {
  static const auto corpus = usaas::bench::make_social_corpus();
  const service::EarlyFeatureDetector detector;
  for (auto _ : state) {
    const auto topics = detector.detect(corpus.posts);
    benchmark::DoNotOptimize(topics.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.posts.size()));
}
BENCHMARK(BM_TrendMining);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
