// Fig 1: "User engagement changes with network latency (left), packet loss
// (middle-left), network jitter (middle-right), and bandwidth (right)."
//
// Regenerates all four panels: engagement (Presence / Cam On / Mic On,
// normalized to 100 at the best bin like the paper's y-axis) binned over
// each swept network metric, with the paper's other-metrics-in-control
// filter applied, plus the early-drop-off series for the loss panel.
#include "bench_util.h"

#include "core/csv.h"
#include "usaas/correlation_engine.h"

namespace {

using namespace usaas;
using service::CorrelationEngine;
using service::EngagementMetric;

constexpr std::size_t kCalls = 20000;

CorrelationEngine build_engine(netsim::Metric metric, double lo, double hi,
                               std::uint64_t seed) {
  confsim::DatasetConfig cfg;
  cfg.seed = seed;
  cfg.num_calls = kCalls;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  cfg.sweep_metric = metric;
  cfg.sweep_lo = lo;
  cfg.sweep_hi = hi;
  CorrelationEngine engine;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });
  return engine;
}

void print_panel(const char* title, const CorrelationEngine& engine,
                 netsim::Metric metric, double lo, double hi,
                 std::size_t bins, const char* unit) {
  bench::print_header(title);
  service::SweepSpec spec;
  spec.metric = metric;
  spec.lo = lo;
  spec.hi = hi;
  spec.bins = bins;
  const auto presence =
      engine.engagement_curve(spec, EngagementMetric::kPresence).normalized();
  const auto cam =
      engine.engagement_curve(spec, EngagementMetric::kCamOn).normalized();
  const auto mic =
      engine.engagement_curve(spec, EngagementMetric::kMicOn).normalized();
  std::printf("%12s | %9s %9s %9s | sessions\n", unit, "Presence", "CamOn",
              "MicOn");
  bench::print_rule();
  for (std::size_t i = 0; i < presence.points.size(); ++i) {
    std::printf("%12.2f | %9.1f %9.1f %9.1f | %zu\n",
                presence.points[i].metric_value, presence.points[i].engagement,
                i < cam.points.size() ? cam.points[i].engagement : 0.0,
                i < mic.points.size() ? mic.points[i].engagement : 0.0,
                presence.points[i].sessions);
  }
  std::printf("relative drop to worst bin: presence %.1f%%  cam %.1f%%  "
              "mic %.1f%%\n",
              presence.relative_drop_percent(), cam.relative_drop_percent(),
              mic.relative_drop_percent());
  if (const auto dir = bench::csv_export_dir()) {
    core::CsvTable csv{{"metric_value", "presence", "cam_on", "mic_on",
                        "sessions"}};
    for (std::size_t i = 0; i < presence.points.size(); ++i) {
      csv.add_numeric_row(
          {presence.points[i].metric_value, presence.points[i].engagement,
           i < cam.points.size() ? cam.points[i].engagement : 0.0,
           i < mic.points.size() ? mic.points[i].engagement : 0.0,
           static_cast<double>(presence.points[i].sessions)});
    }
    const std::string path = *dir + "/fig1_" +
                             netsim::to_string(metric) + ".csv";
    csv.write_file(path);
    std::printf("(csv written to %s)\n", path.c_str());
  }
}

void reproduction() {
  bench::print_header(
      "Fig 1 reproduction: engagement vs network conditions (normalized, "
      "best bin = 100)");
  {
    const auto engine = build_engine(netsim::Metric::kLatency, 0.0, 300.0, 1);
    print_panel("Fig 1 (left): mean network latency sweep 0-300 ms", engine,
                netsim::Metric::kLatency, 0.0, 300.0, 15, "latency ms");
  }
  {
    const auto engine = build_engine(netsim::Metric::kLoss, 0.0, 3.5, 2);
    print_panel("Fig 1 (middle-left): mean packet loss sweep 0-3.5 %", engine,
                netsim::Metric::kLoss, 0.0, 3.5, 14, "loss %");
    // The drop-off series behind "at very high packet loss of 3% or more,
    // the chance of a user dropping off increases significantly".
    service::SweepSpec spec;
    spec.metric = netsim::Metric::kLoss;
    spec.lo = 0.0;
    spec.hi = 3.5;
    spec.bins = 7;
    std::printf("\nearly drop-off probability by loss bin:\n");
    for (const auto& p : engine.dropoff_curve(spec)) {
      std::printf("  loss %5.2f %% -> P(drop) = %.3f  (n=%zu)\n",
                  p.metric_value, p.engagement, p.sessions);
    }
  }
  {
    const auto engine = build_engine(netsim::Metric::kJitter, 0.0, 16.0, 3);
    print_panel("Fig 1 (middle-right): mean jitter sweep 0-16 ms", engine,
                netsim::Metric::kJitter, 0.0, 16.0, 8, "jitter ms");
  }
  {
    const auto engine =
        build_engine(netsim::Metric::kBandwidth, 0.25, 4.0, 4);
    print_panel("Fig 1 (right): mean available bandwidth sweep 0.25-4 Mbps",
                engine, netsim::Metric::kBandwidth, 0.25, 4.0, 8, "bw Mbps");
  }
}

void BM_SweepGeneration(benchmark::State& state) {
  for (auto _ : state) {
    confsim::DatasetConfig cfg;
    cfg.seed = 7;
    cfg.num_calls = static_cast<std::size_t>(state.range(0));
    cfg.sampling = confsim::ConditionSampling::kSweep;
    std::size_t participants = 0;
    confsim::CallDatasetGenerator{cfg}.generate_stream(
        [&](const confsim::CallRecord& call) {
          participants += call.participants.size();
        });
    benchmark::DoNotOptimize(participants);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SweepGeneration)->Arg(100)->Arg(1000);

void BM_CurveExtraction(benchmark::State& state) {
  static const CorrelationEngine engine =
      build_engine(netsim::Metric::kLatency, 0.0, 300.0, 9);
  service::SweepSpec spec;
  spec.metric = netsim::Metric::kLatency;
  spec.lo = 0.0;
  spec.hi = 300.0;
  for (auto _ : state) {
    const auto curve =
        engine.engagement_curve(spec, EngagementMetric::kPresence);
    benchmark::DoNotOptimize(curve.points.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(engine.session_count()));
}
BENCHMARK(BM_CurveExtraction);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
