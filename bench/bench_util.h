// Shared helpers for the figure-reproduction benches.
//
// Each bench binary (one per paper figure) does two things:
//   1. regenerates the figure's rows/series and prints them (the
//      reproduction), then
//   2. runs google-benchmark timings of the underlying pipeline so the
//      cost of each analysis is tracked.
// `run_reproduction_then_benchmarks` wires the custom main.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "confsim/dataset.h"
#include "social/subreddit.h"

namespace usaas::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Builds the default two-year social corpus used by the §4 benches.
struct SocialCorpus {
  std::vector<social::Post> posts;
  leo::EventTimeline events;
  leo::OutageModel outages;
  std::vector<social::DayTruth> truths;
  core::Date first;
  core::Date last;
};

inline SocialCorpus make_social_corpus(
    social::SubredditConfig cfg = social::SubredditConfig{},
    std::uint64_t outage_seed = 42) {
  leo::LaunchSchedule sched;
  SocialCorpus corpus{
      {},
      leo::EventTimeline{sched},
      leo::OutageModel{cfg.first_day, cfg.last_day, outage_seed},
      {},
      cfg.first_day,
      cfg.last_day};
  social::RedditSim sim{
      cfg,
      leo::SpeedModel{leo::ConstellationModel{sched}, leo::SubscriberModel{}},
      leo::OutageModel{cfg.first_day, cfg.last_day, outage_seed},
      leo::EventTimeline{sched}};
  corpus.posts = sim.simulate();
  corpus.truths = sim.day_truths();
  return corpus;
}

/// Directory for machine-readable CSV exports of the figure series, when
/// the user sets USAAS_CSV_DIR. Returns nullopt otherwise.
inline std::optional<std::string> csv_export_dir() {
  const char* dir = std::getenv("USAAS_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string{dir};
}

/// Runs the reproduction body once, then any registered benchmarks.
template <typename Fn>
int run_reproduction_then_benchmarks(int argc, char** argv, Fn&& reproduction) {
  reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace usaas::bench
