// Ablation: what sampled explicit feedback costs — the paper's core
// motivation quantified.
//
// "While MOS is available for only a subset of calls, user signals are
// prevalent for all calls." We estimate the latency->presence engagement
// curve twice from the same corpus: once from ALL sessions (implicit
// signals) and once restricted to the MOS-sampled subset at several
// sampling rates, and report the recovery error against the dense
// estimate. At the paper's 0.1-1% sampling the explicit-only curve is
// unusable; implicit signals recover it exactly.
#include "bench_util.h"

#include <cmath>

#include "usaas/correlation_engine.h"

namespace {

using namespace usaas;
using service::CorrelationEngine;
using service::EngagementMetric;

std::vector<confsim::CallRecord> build_calls(double mos_sampling_rate) {
  confsim::DatasetConfig cfg;
  cfg.seed = 77;
  cfg.num_calls = 30000;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  cfg.sweep_metric = netsim::Metric::kLatency;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 300.0;
  cfg.mos.sampling_rate = mos_sampling_rate;
  cfg.mos.response_rate = 1.0;
  return confsim::CallDatasetGenerator{cfg}.generate();
}

void reproduction() {
  bench::print_header(
      "Ablation: engagement-curve recovery from sampled-MOS sessions only");

  service::SweepSpec spec;
  spec.metric = netsim::Metric::kLatency;
  spec.lo = 0.0;
  spec.hi = 300.0;
  spec.bins = 10;

  // Dense reference: every session (the implicit-signal estimate).
  const auto calls = build_calls(0.005);
  CorrelationEngine dense;
  dense.ingest(calls);
  const auto reference =
      dense.engagement_curve(spec, EngagementMetric::kPresence);

  std::printf("sessions: %zu; reference curve from ALL sessions (implicit "
              "signals)\n\n",
              dense.session_count());
  std::printf("%14s | %10s | %12s | %s\n", "sampling rate", "rated n",
              "bins covered", "curve RMS error vs reference (pp)");
  bench::print_rule();

  for (const double rate : {0.001, 0.005, 0.02, 0.10, 0.5}) {
    const auto sampled_calls = build_calls(rate);
    CorrelationEngine sampled_engine;
    sampled_engine.ingest(sampled_calls);
    // Explicit-only view: sessions that actually carry a MOS rating.
    const auto curve = sampled_engine.engagement_curve(
        spec, EngagementMetric::kPresence,
        [](const confsim::ParticipantRecord& r) { return r.mos.has_value(); });
    std::size_t rated = 0;
    for (const auto& rec : sampled_engine.sessions()) rated += rec.mos ? 1 : 0;

    // RMS error over reference bins present in both curves.
    double acc = 0.0;
    std::size_t matched = 0;
    for (const auto& ref_point : reference.points) {
      for (const auto& p : curve.points) {
        if (std::fabs(p.metric_value - ref_point.metric_value) < 1e-9) {
          const double e = p.engagement - ref_point.engagement;
          acc += e * e;
          ++matched;
        }
      }
    }
    const double rms = matched == 0 ? -1.0 : std::sqrt(acc / matched);
    std::printf("%13.1f%% | %10zu | %6zu of %-3zu | %s\n", 100.0 * rate, rated,
                matched, reference.points.size(),
                matched == 0 ? "curve not recoverable"
                             : std::to_string(rms).substr(0, 5).c_str());
  }
  std::printf("\n(the paper's splash-screen regime is the top rows: at "
              "0.1-1%% sampling the explicit-only curve is noise, while the "
              "implicit-signal curve uses every session for free)\n");
}

void BM_DenseCurve(benchmark::State& state) {
  static const auto calls = build_calls(0.005);
  static const CorrelationEngine engine = [] {
    CorrelationEngine e;
    e.ingest(calls);
    return e;
  }();
  service::SweepSpec spec;
  spec.metric = netsim::Metric::kLatency;
  spec.lo = 0.0;
  spec.hi = 300.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.engagement_curve(spec, EngagementMetric::kPresence).points);
  }
}
BENCHMARK(BM_DenseCurve);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
