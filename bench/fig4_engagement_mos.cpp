// Fig 4: "User engagement (x-axis; normalized) correlates with explicit
// user feedback or MOS."
//
// Regenerates the engagement-decile vs mean-MOS curves over the sampled-
// feedback subset and reports the correlation per engagement metric.
// Presence must show the strongest correlation.
#include "bench_util.h"

#include "usaas/correlation_engine.h"

namespace {

using namespace usaas;
using service::CorrelationEngine;
using service::EngagementMetric;

CorrelationEngine build_engine(std::size_t calls) {
  confsim::DatasetConfig cfg;
  cfg.seed = 44;
  cfg.num_calls = calls;
  cfg.sampling = confsim::ConditionSampling::kPopulation;
  CorrelationEngine engine;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });
  return engine;
}

void reproduction() {
  bench::print_header(
      "Fig 4 reproduction: engagement deciles vs MOS (sampled feedback)");
  const auto engine = build_engine(60000);
  std::printf("total sessions ingested: %zu\n", engine.session_count());

  constexpr EngagementMetric kMetrics[] = {EngagementMetric::kPresence,
                                           EngagementMetric::kCamOn,
                                           EngagementMetric::kMicOn};
  for (const auto metric : kMetrics) {
    const auto corr = engine.mos_correlation(metric);
    if (!corr) {
      std::printf("%s: too few rated sessions\n", to_string(metric));
      continue;
    }
    std::printf("\n%s (rated sessions: %zu, pearson %.3f, spearman %.3f)\n",
                to_string(metric), corr->rated_sessions, corr->pearson,
                corr->spearman);
    std::printf("%16s | %8s\n", "engagement decile", "mean MOS");
    bench::print_rule();
    for (const auto& p : corr->decile_curve) {
      std::printf("%16.1f | %8.3f  (n=%zu)\n", p.metric_value, p.engagement,
                  p.sessions);
    }
  }
  std::printf("\n(paper: all engagement metrics correlate with MOS; Presence "
              "shows the strongest correlation)\n");
}

void BM_MosCorrelation(benchmark::State& state) {
  static const CorrelationEngine engine = build_engine(20000);
  for (auto _ : state) {
    const auto corr = engine.mos_correlation(EngagementMetric::kPresence);
    benchmark::DoNotOptimize(corr);
  }
}
BENCHMARK(BM_MosCorrelation);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
