// USaaS ingest/query throughput over a synthetic million-session corpus.
//
// The §5 service must answer operator queries over ~150-200 M call
// sessions and years of social posts. This bench measures the sharded
// multi-threaded engine against the seed's flat single-threaded query path
// (single shard, sentiment re-scored per query) on the same corpus:
//   * ingest throughput, old vs new: the seed's flat per-record path, the
//     PR-1-era per-record sharded path, and the two-pass counted batch
//     pipeline at 1/2/8 worker threads (with per-phase timings);
//   * query throughput over a realistic operator battery (full-population,
//     per-platform, per-access-network, date-windowed queries);
//   * the headline query speedup: the sharded engine vs the legacy path;
//   * the two-tier query path: cold batteries answered by merging
//     per-shard summaries (no record rescans) and warm batteries served
//     from the versioned insight cache, against the same scan battery;
//   * the admission front-end: a wrk2-style open-loop load generator
//     (fixed arrival rate, latency from the scheduled arrival) driving
//     mixed cheap/expensive tenants through the QueryScheduler, reporting
//     p50/p95/p99 admitted latency, shed rate, and staleness bounds.
// Every column records the *actual* pool size, the effective parallelism
// (pool capped at the machine's core count), and whether the config is
// oversubscribed — thread columns on a 1-core host measure queueing
// overhead, not scaling, and are labeled as such rather than presented as
// parallel speedups.
// Results go to stdout and to BENCH_usaas_throughput.json (override the
// path with USAAS_BENCH_JSON; corpus size with USAAS_BENCH_SESSIONS /
// USAAS_BENCH_POSTS).
//
// Build & run:   ./build/bench/usaas_throughput
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include <thread>

#include "core/rng.h"
#include "core/telemetry/metrics.h"
#include "core/timeseries.h"
#include "nlp/keywords.h"
#include "nlp/sentiment.h"
#include "social/post.h"
#include "usaas/query_scheduler.h"
#include "usaas/query_service.h"
#include "usaas/stream_ingestor.h"

namespace {

using namespace usaas;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

// ---- Synthetic corpus ------------------------------------------------
// Fabricated directly (no tick-level media simulation): the bench measures
// the ingest/query engine, so the corpus only needs realistic shapes and
// field distributions, produced fast enough to build a million sessions.

constexpr int kParticipantsPerCall = 4;

std::vector<confsim::CallRecord> synth_calls(std::size_t sessions,
                                             std::uint64_t seed) {
  std::vector<confsim::CallRecord> calls;
  const std::size_t num_calls = sessions / kParticipantsPerCall;
  calls.reserve(num_calls);
  core::Rng rng{seed};
  const core::Date year_start{2022, 1, 1};
  constexpr confsim::Platform kPlatforms[] = {
      confsim::Platform::kWindowsPc, confsim::Platform::kMacPc,
      confsim::Platform::kIos, confsim::Platform::kAndroid};
  constexpr double kPlatformWeights[] = {0.55, 0.20, 0.10, 0.15};
  constexpr netsim::AccessTechnology kAccess[] = {
      netsim::AccessTechnology::kFiber, netsim::AccessTechnology::kCable,
      netsim::AccessTechnology::kDsl, netsim::AccessTechnology::kLte,
      netsim::AccessTechnology::kLeoSatellite};
  constexpr double kAccessWeights[] = {0.25, 0.40, 0.15, 0.12, 0.08};

  for (std::size_t c = 0; c < num_calls; ++c) {
    confsim::CallRecord call;
    call.call_id = c;
    call.start.date = year_start.plus_days(rng.uniform_int(0, 364));
    call.start.time = {static_cast<int>(rng.uniform_int(9, 19)),
                       static_cast<int>(rng.uniform_int(0, 59))};
    call.scheduled_minutes = 30;
    call.participants.reserve(kParticipantsPerCall);
    for (int p = 0; p < kParticipantsPerCall; ++p) {
      confsim::ParticipantRecord rec;
      rec.user_id = c * kParticipantsPerCall + p;
      rec.platform = kPlatforms[rng.weighted_index(kPlatformWeights)];
      rec.meeting_size = kParticipantsPerCall;
      rec.access = kAccess[rng.weighted_index(kAccessWeights)];

      const double latency = std::min(500.0, 10.0 + rng.lognormal(3.2, 0.7));
      const double loss = std::min(15.0, rng.exponential(1.5));
      const double jitter = std::min(80.0, rng.exponential(0.25));
      const double bandwidth = std::min(300.0, 1.0 + rng.lognormal(2.3, 0.8));
      const auto aggregate = [](double mean_v) {
        return netsim::MetricAggregate{mean_v, mean_v * 0.93, mean_v * 1.8};
      };
      rec.network.latency_ms = aggregate(latency);
      rec.network.loss_pct = aggregate(loss);
      rec.network.jitter_ms = aggregate(jitter);
      rec.network.bandwidth_mbps = aggregate(bandwidth);
      rec.network.duration_seconds = 1800.0;
      rec.network.sample_count = 360;

      const double damage = 0.08 * latency + 3.0 * loss + 0.2 * jitter;
      const auto engagement = [&](double base, double scale) {
        const double v = base - scale * damage + rng.normal(0.0, 5.0);
        return std::min(100.0, std::max(0.0, v));
      };
      rec.presence_pct = engagement(92.0, 0.45);
      rec.cam_on_pct = engagement(45.0, 0.65);
      rec.mic_on_pct = engagement(30.0, 0.35);
      rec.dropped_early = rng.bernoulli(std::min(0.6, 0.02 + damage / 400.0));
      if (rng.bernoulli(0.005)) {
        rec.mos = core::clamp_mos(
            core::Mos{4.6 - damage / 18.0 + rng.normal(0.0, 0.4)});
      }
      call.participants.push_back(rec);
    }
    calls.push_back(std::move(call));
  }
  return calls;
}

std::vector<social::Post> synth_posts(std::size_t n, std::uint64_t seed) {
  // Template texts exercise the real sentiment + keyword pipelines; the
  // outage-flavoured ones carry dictionary terms, the rest carry plain
  // valence vocabulary.
  static const char* kTitles[] = {
      "monthly experience report", "is anyone else seeing this",
      "speed test results", "quick question about my setup",
      "service thoughts after the update",
  };
  static const char* kBodies[] = {
      "the connection has been great lately, streaming is fast and smooth "
      "and video calls just work, really happy with it",
      "terrible evening again, pages crawl and the latency is awful, "
      "i am getting tired of this slow unreliable service",
      "service went down for two hours tonight, complete outage here, "
      "everything was offline and disconnected until it came back",
      "pretty average week overall, nothing special to report, speeds are "
      "okay during the day and a bit slower at night",
      "lost connection three times during calls today, not working at all "
      "for long stretches, is the network down again",
      "upgraded my router placement and the difference is amazing, "
      "excellent speeds and the best reliability i have had so far",
  };
  std::vector<social::Post> posts;
  posts.reserve(n);
  core::Rng rng{seed};
  const core::Date year_start{2022, 1, 1};
  for (std::size_t i = 0; i < n; ++i) {
    social::Post post;
    post.id = i;
    post.date = year_start.plus_days(rng.uniform_int(0, 364));
    post.author_id = rng.uniform_int(1, 50000);
    post.title = kTitles[rng.uniform_int(0, 4)];
    post.body = kBodies[rng.uniform_int(0, 5)];
    post.upvotes = static_cast<int>(rng.uniform_int(0, 400));
    post.num_comments = static_cast<int>(rng.uniform_int(0, 60));
    posts.push_back(std::move(post));
  }
  return posts;
}

// ---- The operator query battery --------------------------------------

std::vector<service::Query> battery() {
  using core::Date;
  std::vector<service::Query> queries;
  service::Query base;
  base.first = Date(2022, 1, 1);
  base.last = Date(2022, 12, 31);
  base.metric = netsim::Metric::kLatency;
  base.metric_lo = 0.0;
  base.metric_hi = 300.0;
  base.bins = 10;
  queries.push_back(base);  // full-population, full-year

  service::Query android = base;
  android.platform = confsim::Platform::kAndroid;
  queries.push_back(android);

  service::Query leo = base;  // the paper's Starlink x Teams example
  leo.access = netsim::AccessTechnology::kLeoSatellite;
  queries.push_back(leo);

  service::Query spring = base;
  spring.first = Date(2022, 2, 1);
  spring.last = Date(2022, 3, 31);
  queries.push_back(spring);

  service::Query ios_june = base;
  ios_june.platform = confsim::Platform::kIos;
  ios_june.first = Date(2022, 6, 1);
  ios_june.last = Date(2022, 6, 30);
  ios_june.metric = netsim::Metric::kLoss;
  ios_june.metric_lo = 0.0;
  ios_june.metric_hi = 10.0;
  queries.push_back(ios_june);

  service::Query autumn_bw = base;
  autumn_bw.platform = confsim::Platform::kWindowsPc;
  autumn_bw.first = Date(2022, 9, 1);
  autumn_bw.last = Date(2022, 10, 15);
  autumn_bw.metric = netsim::Metric::kBandwidth;
  autumn_bw.metric_lo = 0.0;
  autumn_bw.metric_hi = 200.0;
  queries.push_back(autumn_bw);

  return queries;
}

// ---- The legacy (seed) query path ------------------------------------
// Flat store, no shard pruning, sentiment + keyword scan re-run over the
// whole post corpus on every query: byte-for-byte the seed algorithm.

struct LegacyService {
  service::CorrelationEngine engine{service::ShardingPolicy::kSingleShard};
  std::vector<confsim::ParticipantRecord> sessions;
  std::vector<social::Post> posts;
  nlp::SentimentAnalyzer analyzer;
  service::MosPredictor predictor;
  bool trained{false};
};

service::Insight legacy_run(const LegacyService& svc,
                            const service::Query& query) {
  service::Insight insight;
  const service::ParticipantFilter filter =
      [&](const confsim::ParticipantRecord& rec) {
        if (query.platform && rec.platform != *query.platform) return false;
        if (query.access && rec.access != *query.access) return false;
        return true;
      };

  service::SweepSpec spec;
  spec.metric = query.metric;
  spec.lo = query.metric_lo;
  spec.hi = query.metric_hi;
  spec.bins = query.bins;
  spec.control_others = false;
  for (const service::EngagementMetric m :
       {service::EngagementMetric::kPresence,
        service::EngagementMetric::kCamOn,
        service::EngagementMetric::kMicOn}) {
    insight.engagement.push_back(svc.engine.engagement_curve(spec, m, filter));
    if (const auto corr = svc.engine.mos_correlation(m)) {
      insight.mos_spearman.emplace_back(m, corr->spearman);
    }
  }

  std::vector<double> observed;
  double predicted_acc = 0.0;
  std::size_t predicted_n = 0;
  for (const auto& rec : svc.sessions) {
    if (!filter(rec)) continue;
    ++insight.sessions;
    if (rec.mos) {
      observed.push_back(rec.mos->score());
      ++insight.rated_sessions;
    }
    if (svc.trained) {
      predicted_acc += svc.predictor.predict(rec);
      ++predicted_n;
    }
  }
  if (predicted_n > 0) {
    insight.predicted_mean_mos =
        predicted_acc / static_cast<double>(predicted_n);
  }

  const auto& dict = nlp::KeywordDictionary::outage_dictionary();
  core::DailySeries keyword_days{query.first, query.last};
  std::size_t strong_pos = 0;
  std::size_t strong_neg = 0;
  for (const social::Post& post : svc.posts) {
    if (post.date < query.first || query.last < post.date) continue;
    ++insight.posts;
    const auto s = svc.analyzer.score(post.full_text());
    if (s.strong_positive()) ++strong_pos;
    if (s.strong_negative()) ++strong_neg;
    const auto hits = dict.count_occurrences(post.full_text());
    if (hits > 0 && s.negative >= 0.4) {
      keyword_days.add(post.date, static_cast<double>(hits));
    }
  }
  if (strong_pos + strong_neg > 0) {
    insight.strong_positive_share =
        static_cast<double>(strong_pos) /
        static_cast<double>(strong_pos + strong_neg);
  }
  return insight;
}

struct QueryResult {
  double battery_seconds{0.0};
  double queries_per_sec{0.0};
  std::size_t checksum{0};  // defeats dead-code elimination
};

template <typename RunBattery>
QueryResult time_batteries(int reps, RunBattery&& run_battery) {
  QueryResult result;
  const std::size_t queries = battery().size();
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) result.checksum += run_battery();
  const double total = seconds_since(t0);
  result.battery_seconds = total / reps;
  result.queries_per_sec = static_cast<double>(queries) * reps / total;
  return result;
}

struct IngestColumn {
  std::string name;
  double call_seconds{0.0};
  double post_seconds{0.0};  // < 0 when the column does not score posts
  double sessions_per_sec{0.0};
  double posts_per_sec{0.0};
  std::size_t pool_threads{1};       // actual worker count, not a label
  std::size_t effective_parallelism{1};
  bool oversubscribed{false};
  bool two_pass{false};
  bool summaries{false};         // per-shard summaries folded at ingest
  bool streaming{false};         // record-at-a-time through StreamIngestor
  std::size_t flush_watermark{0};  // streaming only
  std::size_t chunk_records{0};    // push_many span size (0 = per-record)
  service::IngestStats session_stats;
  service::IngestStats post_stats;
};

void print_ingest(const IngestColumn& col) {
  std::printf("ingest  %-22s %6.2f s calls (%.0f sessions/s)", col.name.c_str(),
              col.call_seconds, col.sessions_per_sec);
  if (col.post_seconds >= 0.0) {
    std::printf("  %5.2f s posts (%.0f posts/s)", col.post_seconds,
                col.posts_per_sec);
  }
  std::printf("  [pool %zu, effective %zu%s]", col.pool_threads,
              col.effective_parallelism,
              col.oversubscribed ? ", OVERSUBSCRIBED" : "");
  if (col.streaming) {
    std::printf("  [watermark %zu]", col.flush_watermark);
  }
  if (col.chunk_records > 0) {
    std::printf("  [chunks of %zu]", col.chunk_records);
  }
  std::printf("\n");
  if (col.two_pass) {
    std::printf("        sessions: %s\n",
                service::to_string(col.session_stats).c_str());
    std::printf("        posts:    %s\n",
                service::to_string(col.post_stats).c_str());
  }
}

void json_ingest_phases(std::ofstream& json, const service::IngestStats& s) {
  json << "{\"count_s\": " << s.count_seconds
       << ", \"plan_s\": " << s.plan_seconds
       << ", \"scatter_s\": " << s.scatter_seconds
       << ", \"summarize_s\": " << s.summarize_seconds
       << ", \"mb_moved\": "
       << static_cast<double>(s.bytes_moved) / (1024.0 * 1024.0)
       << ", \"shard_writes\": " << s.shards_touched << "}";
}

// ---- The admission-controlled front-end (open-loop) -------------------
// A wrk2-style fixed-arrival-rate load generator over the QueryScheduler.
// Arrival i is *scheduled* at t_i = i / rate; if the generator falls
// behind (an admitted scan blocks the submit thread), later arrivals fire
// immediately and their latency is still measured from the scheduled
// timestamp — the backlog counts, so there is no coordinated omission.
// Three tenants mix cheap and expensive traffic:
//   * "dashboard" — generous QoS, repeats a small set of month-aligned
//     queries (insight-cache hits after the first admit);
//   * "analytics" — tight QoS, boundary-cut windows warmed into the cache
//     before a version bump, so saturation degrades them to a stale
//     cached insight (staleness >= 1) instead of erroring;
//   * "batch"     — starvation QoS, never-cached windows that shed.
// The run fails (ok() == false) if the ledger does not reconcile in both
// stats() and the scraped exposition, if any staleness stamp exceeds the
// bound, or if anything was shed while a degradable answer existed.

struct FrontendOutcome {
  double offered_rate{0.0};
  double duration_seconds{0.0};
  std::uint64_t submitted{0};
  std::uint64_t admitted{0};
  std::uint64_t degraded{0};
  std::uint64_t shed{0};
  std::uint64_t expired{0};
  std::uint64_t shed_with_degradable{0};
  std::uint64_t max_staleness{0};
  std::uint64_t max_versions_behind{0};
  double p50_ms{0.0};
  double p95_ms{0.0};
  double p99_ms{0.0};
  double shed_rate{0.0};
  double degraded_rate{0.0};
  bool stats_reconciled{false};
  bool exposition_reconciled{false};
  bool staleness_bounded{false};
  [[nodiscard]] bool ok() const {
    return stats_reconciled && exposition_reconciled && staleness_bounded &&
           shed_with_degradable == 0;
  }
};

double percentile_ms(const std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted_seconds.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_seconds.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (sorted_seconds[lo] * (1.0 - frac) + sorted_seconds[hi] * frac) *
         1e3;
}

FrontendOutcome run_frontend_open_loop(
    std::span<const confsim::CallRecord> calls,
    std::span<const social::Post> posts, double rate,
    double duration_seconds) {
  FrontendOutcome out;
  out.offered_rate = rate;
  out.duration_seconds = duration_seconds;

  core::telemetry::Registry reg{true};
  service::QueryServiceConfig cfg;
  cfg.sharding = service::ShardingPolicy::kMonthPlatform;
  cfg.threads = 1;
  cfg.telemetry = &reg;
  service::QueryService svc{cfg};
  svc.ingest_calls(calls);
  svc.ingest_posts(posts);

  service::Query base;
  base.first = core::Date(2022, 1, 1);
  base.last = core::Date(2022, 12, 31);
  base.metric = netsim::Metric::kLatency;
  base.metric_lo = 0.0;
  base.metric_hi = 300.0;
  base.bins = 10;

  std::vector<service::Query> dashboards;
  for (int quarter = 0; quarter < 4; ++quarter) {
    service::Query q = base;
    q.first = core::Date(2022, 3 * quarter + 1, 1);
    q.last = core::Date(2022, 3 * quarter + 3,
                        core::Date::days_in_month(2022, 3 * quarter + 3));
    dashboards.push_back(q);
  }
  dashboards.push_back(base);
  {
    service::Query q = base;
    q.platform = confsim::Platform::kWindowsPc;
    dashboards.push_back(q);
  }
  std::vector<service::Query> analytics;
  for (int k = 0; k < 8; ++k) {
    service::Query q = base;
    q.first = core::Date(2022, 1, 10 + k);
    q.last = core::Date(2022, 10, 20 - k);
    analytics.push_back(q);
  }
  const auto batch_query = [&](std::size_t i) {
    service::Query q = base;
    q.first = core::Date(2022, 1, 2 + static_cast<int>(i % 25));
    q.last = core::Date(2022, 11, 2 + static_cast<int>((i / 25) % 25));
    q.bins = 7 + i % 5;
    return q;
  };

  // Warm every dashboard and analytics window into the insight cache,
  // then bump the corpus version with a small re-ingest: the warm entries
  // are now exactly one version behind, which is what the analytics
  // tenant degrades to once its bucket drains.
  for (const auto& q : dashboards) (void)svc.run(q);
  for (const auto& q : analytics) (void)svc.run(q);
  svc.ingest_calls(calls.subspan(0, std::min<std::size_t>(64, calls.size())));

  service::SchedulerConfig sched_cfg;
  sched_cfg.max_wait_seconds = 0.01;
  sched_cfg.max_versions_behind = 2;
  sched_cfg.seconds_per_token = 1e-4;
  sched_cfg.tenant_qos["dashboard"] = {2.0 * rate, 100.0};
  sched_cfg.tenant_qos["analytics"] = {4.0, 60.0};
  sched_cfg.tenant_qos["batch"] = {0.5, 4.0};
  service::QueryScheduler front{svc, sched_cfg};
  out.max_versions_behind = sched_cfg.max_versions_behind;

  std::vector<double> admitted_latency;
  admitted_latency.reserve(
      static_cast<std::size_t>(rate * duration_seconds) + 1);
  const auto t_start = Clock::now();
  for (std::size_t i = 0;; ++i) {
    const double scheduled = static_cast<double>(i) / rate;
    if (scheduled > duration_seconds) break;
    const double now = seconds_since(t_start);
    if (scheduled > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(scheduled - now));
    }
    const std::size_t lane = i % 10;
    const char* tenant =
        lane < 6 ? "dashboard" : lane < 9 ? "analytics" : "batch";
    const service::Query query = lane < 6
                                     ? dashboards[i % dashboards.size()]
                                 : lane < 9 ? analytics[i % analytics.size()]
                                            : batch_query(i);
    // Interactive lanes carry a real patience budget (expiry is an
    // expected outcome under load); batch traffic waits forever.
    const double budget =
        lane < 6    ? 0.25
        : lane < 9 ? 0.5
                    : std::numeric_limits<double>::infinity();
    const service::ScheduledResult r = front.submit(tenant, query, budget);
    const double latency = seconds_since(t_start) - scheduled;
    if (r.outcome == service::AdmissionOutcome::kAdmitted) {
      admitted_latency.push_back(latency);
    } else if (r.outcome == service::AdmissionOutcome::kDegraded) {
      out.max_staleness = std::max(out.max_staleness, r.insight.staleness);
    }
  }

  const service::SchedulerStats stats = front.stats();
  out.submitted = stats.submitted;
  out.admitted = stats.admitted;
  out.degraded = stats.degraded;
  out.shed = stats.shed;
  out.expired = stats.expired;
  out.shed_with_degradable = stats.shed_with_degradable;
  out.stats_reconciled = stats.reconciles();
  out.staleness_bounded = out.max_staleness <= out.max_versions_behind;
  const double denom =
      stats.submitted > 0 ? static_cast<double>(stats.submitted) : 1.0;
  out.shed_rate = static_cast<double>(stats.shed) / denom;
  out.degraded_rate = static_cast<double>(stats.degraded) / denom;

  std::sort(admitted_latency.begin(), admitted_latency.end());
  out.p50_ms = percentile_ms(admitted_latency, 0.50);
  out.p95_ms = percentile_ms(admitted_latency, 0.95);
  out.p99_ms = percentile_ms(admitted_latency, 0.99);

  // The exposition must tell the same story as stats(): find this run's
  // exact admission tallies in the JSON a scrape of the service would
  // return (labels render with escaped quotes inside JSON keys).
  const std::string scraped = svc.metrics_json();
  const auto carries = [&](const std::string& key, std::uint64_t value) {
    const std::string frag = "\"" + key + "\": " + std::to_string(value);
    return scraped.find(frag) != std::string::npos;
  };
  out.exposition_reconciled =
      carries("usaas_admission_submitted_total", stats.submitted) &&
      carries("usaas_admission_queries_total{outcome=\\\"admitted\\\"}",
              stats.admitted) &&
      carries("usaas_admission_queries_total{outcome=\\\"degraded\\\"}",
              stats.degraded) &&
      carries("usaas_admission_queries_total{outcome=\\\"shed\\\"}",
              stats.shed) &&
      carries("usaas_admission_queries_total{outcome=\\\"expired\\\"}",
              stats.expired) &&
      carries("usaas_admission_shed_with_degradable_total",
              stats.shed_with_degradable);
  return out;
}

// ---- EDF vs per-bucket saturation A/B ---------------------------------
// The question PR 8's FairQueue answers: when tenants with very
// different deadlines contend for tokens at the same time, who gets the
// accrual? The legacy loop parks each waiter on a private
// sleep(seconds_until) and lets the OS wakeup order decide; the EDF
// queue hands each accrual to the earliest absolute deadline. Two
// tenants — "tight" (20 ms budgets) and "loose" (60 ms budgets) — hammer
// their saturated buckets from concurrent threads, and the A/B compares
// the tight tenant's admission-wait tail and admit rate across the two
// queueing policies on an otherwise identical workload.

struct SaturationAb {
  std::size_t threads{0};
  std::size_t tight_submissions{0};
  bool oversubscribed{false};
  double legacy_tight_wait_p99_ms{0.0};
  double edf_tight_wait_p99_ms{0.0};
  double legacy_tight_admit_rate{0.0};
  double edf_tight_admit_rate{0.0};
};

SaturationAb run_saturation_ab(std::span<const confsim::CallRecord> calls) {
  SaturationAb out;
  constexpr std::size_t kThreads = 4;  // 2 tight + 2 loose
  constexpr int kPerThread = 200;
  out.threads = kThreads;
  out.oversubscribed = kThreads > core::hardware_parallelism();

  const auto run_side = [&](bool fair, double& p99_ms, double& admit_rate,
                            std::size_t& tight_total) {
    core::telemetry::Registry reg{true};
    service::QueryServiceConfig cfg;
    cfg.sharding = service::ShardingPolicy::kMonthPlatform;
    cfg.threads = 1;
    cfg.telemetry = &reg;
    service::QueryService svc{cfg};
    svc.ingest_calls(calls.subspan(0, std::min<std::size_t>(500, calls.size())));
    service::Query q;
    q.first = core::Date(2022, 1, 1);
    q.last = core::Date(2022, 3, 31);
    q.metric = netsim::Metric::kLatency;
    q.metric_lo = 0.0;
    q.metric_hi = 300.0;
    q.bins = 10;
    (void)svc.run(q);  // cache it: every admission costs the 1-token floor

    service::SchedulerConfig scfg;
    scfg.fair_queue = fair;
    scfg.max_wait_seconds = 0.06;
    scfg.tenant_qos["tight"] = {200.0, 2.0};
    scfg.tenant_qos["loose"] = {200.0, 2.0};
    service::QueryScheduler sched{svc, scfg};

    std::vector<std::vector<double>> waits(kThreads);
    std::vector<std::size_t> admitted(kThreads, 0);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const bool tight = t < kThreads / 2;
        const char* tenant = tight ? "tight" : "loose";
        const double budget = tight ? 0.02 : 0.06;
        for (int i = 0; i < kPerThread; ++i) {
          const service::ScheduledResult r = sched.submit(tenant, q, budget);
          if (tight) {
            waits[t].push_back(r.wait_seconds);
            if (r.outcome == service::AdmissionOutcome::kAdmitted) {
              ++admitted[t];
            }
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    std::vector<double> tight_waits;
    std::size_t tight_admitted = 0;
    for (std::size_t t = 0; t < kThreads; ++t) {
      tight_waits.insert(tight_waits.end(), waits[t].begin(), waits[t].end());
      tight_admitted += admitted[t];
    }
    std::sort(tight_waits.begin(), tight_waits.end());
    tight_total = tight_waits.size();
    p99_ms = percentile_ms(tight_waits, 0.99);
    admit_rate = tight_total > 0
                     ? static_cast<double>(tight_admitted) /
                           static_cast<double>(tight_total)
                     : 0.0;
  };

  std::size_t tight_total = 0;
  run_side(false, out.legacy_tight_wait_p99_ms, out.legacy_tight_admit_rate,
           tight_total);
  run_side(true, out.edf_tight_wait_p99_ms, out.edf_tight_admit_rate,
           tight_total);
  out.tight_submissions = tight_total;
  return out;
}

void print_frontend(const FrontendOutcome& fe) {
  std::printf("frontend: offered %.0f/s for %.1f s -> submitted %llu = "
              "admitted %llu + degraded %llu + shed %llu + expired %llu  "
              "(reconciles: %s, exposition agrees: %s)\n",
              fe.offered_rate, fe.duration_seconds,
              static_cast<unsigned long long>(fe.submitted),
              static_cast<unsigned long long>(fe.admitted),
              static_cast<unsigned long long>(fe.degraded),
              static_cast<unsigned long long>(fe.shed),
              static_cast<unsigned long long>(fe.expired),
              fe.stats_reconciled ? "yes" : "NO",
              fe.exposition_reconciled ? "yes" : "NO");
  std::printf("frontend admitted latency (from scheduled arrival): "
              "p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n",
              fe.p50_ms, fe.p95_ms, fe.p99_ms);
  std::printf("frontend shed rate %.4f, degraded rate %.4f, max staleness "
              "%llu (bound %llu), shed-with-degradable %llu\n",
              fe.shed_rate, fe.degraded_rate,
              static_cast<unsigned long long>(fe.max_staleness),
              static_cast<unsigned long long>(fe.max_versions_behind),
              static_cast<unsigned long long>(fe.shed_with_degradable));
}

}  // namespace

int main() {
  const std::size_t target_sessions = env_size("USAAS_BENCH_SESSIONS", 1000000);
  const std::size_t target_posts = env_size("USAAS_BENCH_POSTS", 120000);
  const char* json_path_env = std::getenv("USAAS_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr && *json_path_env != '\0'
          ? json_path_env
          : "BENCH_usaas_throughput.json";

  // Posts-only guard mode (USAAS_BENCH_POSTS_ONLY=1): skip the session
  // corpus and the query battery entirely; measure just the sharded
  // 2-pass 1t post ingest, minimum over 3 reps, and print one parseable
  // line. scripts/check.sh diffs this against the posts_per_sec recorded
  // in BENCH_usaas_throughput.json and fails on a >10% regression.
  if (const char* only = std::getenv("USAAS_BENCH_POSTS_ONLY");
      only != nullptr && *only == '1') {
    const auto posts = synth_posts(target_posts, 424242);
    service::QueryServiceConfig cfg;
    cfg.sharding = service::ShardingPolicy::kMonthPlatform;
    cfg.threads = 1;
    cfg.insight_cache_entries = 0;
    cfg.shard_summaries = false;
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      service::QueryService svc{cfg};
      const auto t = Clock::now();
      svc.ingest_posts(posts);
      best = std::min(best, seconds_since(t));
    }
    std::printf("POSTS_ONLY sharded_2_pass_1t posts=%zu post_seconds=%.6f "
                "posts_per_sec=%.0f\n",
                posts.size(), best, static_cast<double>(posts.size()) / best);
    return 0;
  }

  // Scan-only guard mode (USAAS_BENCH_SCAN_ONLY=1): skip the posts corpus
  // and every ingest-comparison column; ingest the session corpus once
  // into the 1t scan config (insight cache and shard summaries off, so
  // every query exercises the columnar scan kernels), run the operator
  // battery, minimum over 3 reps, and print one parseable line.
  // scripts/check.sh diffs this against the queries_per_sec recorded under
  // "sharded_1t" in BENCH_usaas_throughput.json and fails on a >10% drop.
  if (const char* only = std::getenv("USAAS_BENCH_SCAN_ONLY");
      only != nullptr && *only == '1') {
    const auto calls = synth_calls(target_sessions, 20220101);
    service::QueryServiceConfig cfg;
    cfg.sharding = service::ShardingPolicy::kMonthPlatform;
    cfg.threads = 1;
    cfg.insight_cache_entries = 0;
    cfg.shard_summaries = false;
    service::QueryService svc{cfg};
    svc.ingest_calls(calls);
    svc.train_predictor();
    const auto queries = battery();
    double best = std::numeric_limits<double>::infinity();
    std::size_t checksum = 0;  // defeats dead-code elimination
    for (int rep = 0; rep < 3; ++rep) {
      const auto t = Clock::now();
      for (const auto& q : queries) checksum += svc.run(q).sessions;
      best = std::min(best, seconds_since(t));
    }
    std::printf("SCAN_ONLY sharded_1t queries=%zu battery_seconds=%.6f "
                "queries_per_sec=%.2f checksum=%zu\n",
                queries.size(), best,
                static_cast<double>(queries.size()) / best, checksum);
    return 0;
  }

  // Front-end guard mode (USAAS_BENCH_FRONTEND_ONLY=1): skip the
  // million-session corpus and run a scaled-down open-loop admission run,
  // printing one parseable line. The exit code enforces the scheduler's
  // invariants — the ledger reconciles in stats() AND in the scraped
  // exposition, staleness stamps stay within the bound, and nothing was
  // shed while a degradable cached insight existed — and scripts/check.sh
  // re-asserts the reconcile/tripwire fields from the printed line.
  if (const char* only = std::getenv("USAAS_BENCH_FRONTEND_ONLY");
      only != nullptr && *only == '1') {
    const auto calls =
        synth_calls(env_size("USAAS_BENCH_SESSIONS", 40000), 20220101);
    const auto posts =
        synth_posts(env_size("USAAS_BENCH_POSTS", 5000), 424242);
    const double rate =
        static_cast<double>(env_size("USAAS_BENCH_FRONTEND_RATE", 400));
    const double secs =
        static_cast<double>(env_size("USAAS_BENCH_FRONTEND_SECONDS", 2));
    const FrontendOutcome fe = run_frontend_open_loop(calls, posts, rate, secs);
    std::printf(
        "FRONTEND submitted=%llu admitted=%llu degraded=%llu shed=%llu "
        "expired=%llu shed_with_degradable=%llu reconcile=%s exposition=%s "
        "staleness_max=%llu staleness_bound=%llu p50_ms=%.3f p95_ms=%.3f "
        "p99_ms=%.3f shed_rate=%.4f\n",
        static_cast<unsigned long long>(fe.submitted),
        static_cast<unsigned long long>(fe.admitted),
        static_cast<unsigned long long>(fe.degraded),
        static_cast<unsigned long long>(fe.shed),
        static_cast<unsigned long long>(fe.expired),
        static_cast<unsigned long long>(fe.shed_with_degradable),
        fe.stats_reconciled ? "ok" : "FAIL",
        fe.exposition_reconciled ? "ok" : "FAIL",
        static_cast<unsigned long long>(fe.max_staleness),
        static_cast<unsigned long long>(fe.max_versions_behind), fe.p50_ms,
        fe.p95_ms, fe.p99_ms, fe.shed_rate);
    return fe.ok() ? 0 : 1;
  }

  std::printf("== USaaS ingest/query throughput ==\n");
  std::printf("synthesizing corpus: %zu sessions, %zu posts...\n",
              target_sessions, target_posts);
  auto t0 = Clock::now();
  const auto calls = synth_calls(target_sessions, 20220101);
  const auto posts = synth_posts(target_posts, 424242);
  const std::size_t sessions = calls.size() * kParticipantsPerCall;
  std::printf("  done in %.1f s\n\n", seconds_since(t0));

  const std::size_t hw = core::hardware_parallelism();
  const std::vector<std::size_t> thread_counts{1, 2, 8};
  std::vector<IngestColumn> ingest_columns;
  std::vector<QueryResult> query_results;
  std::vector<std::unique_ptr<service::QueryService>> services;

  // ---- Old ingest paths, for the old-vs-new comparison --------------
  // (a) The seed's flat per-record ingest: single shard, one map lookup
  // and two unreserved push_backs per record.
  {
    IngestColumn col;
    col.name = "flat per-record 1t";
    service::CorrelationEngine flat{service::ShardingPolicy::kSingleShard};
    t0 = Clock::now();
    for (const auto& call : calls) flat.ingest(call);
    col.call_seconds = seconds_since(t0);
    col.post_seconds = -1.0;  // the seed scored posts per query, not here
    col.sessions_per_sec = static_cast<double>(sessions) / col.call_seconds;
    ingest_columns.push_back(col);
  }
  // (b) The per-record *sharded* ingest (the PR-1 hot path's shape: a
  // shard-map lookup per record, no reservation).
  {
    IngestColumn col;
    col.name = "sharded per-record 1t";
    service::CorrelationEngine sharded{service::ShardingPolicy::kMonthPlatform};
    t0 = Clock::now();
    for (const auto& call : calls) sharded.ingest(call);
    col.call_seconds = seconds_since(t0);
    col.post_seconds = -1.0;
    col.sessions_per_sec = static_cast<double>(sessions) / col.call_seconds;
    ingest_columns.push_back(col);
  }

  // Scan-path config: insight cache and shard summaries off, so the
  // "sharded" columns keep measuring the raw scan engine the earlier PRs
  // measured (the two-tier columns below measure the default config).
  const auto scan_config = [](std::size_t threads) {
    service::QueryServiceConfig cfg;
    cfg.sharding = service::ShardingPolicy::kMonthPlatform;
    cfg.threads = threads;
    cfg.insight_cache_entries = 0;
    cfg.shard_summaries = false;
    return cfg;
  };

  // ---- New: two-pass counted batch ingest at 1/2/8 threads ----------
  for (const std::size_t threads : thread_counts) {
    auto svc = std::make_unique<service::QueryService>(scan_config(threads));
    IngestColumn col;
    col.name = "sharded 2-pass " + std::to_string(threads) + "t";
    col.pool_threads = threads;
    col.effective_parallelism = std::min(threads, hw);
    col.oversubscribed = threads > hw;
    col.two_pass = true;
    t0 = Clock::now();
    svc->ingest_calls(calls);
    col.call_seconds = seconds_since(t0);
    t0 = Clock::now();
    svc->ingest_posts(posts);
    col.post_seconds = seconds_since(t0);
    // Two more post-ingest reps into throwaway services; the recorded
    // figure is the minimum, which on a busy single-core host is the
    // closest observable to the true cost (same rationale as the
    // telemetry columns below). The JSON figure is the baseline the
    // check.sh regression gate diffs against, so it has to be stable.
    for (int rep = 1; rep < 3; ++rep) {
      service::QueryService fresh{scan_config(threads)};
      t0 = Clock::now();
      fresh.ingest_posts(posts);
      col.post_seconds = std::min(col.post_seconds, seconds_since(t0));
    }
    svc->train_predictor();  // needed by the query battery; timed apart
    col.sessions_per_sec = static_cast<double>(sessions) / col.call_seconds;
    col.posts_per_sec = static_cast<double>(posts.size()) / col.post_seconds;
    col.session_stats = svc->session_ingest_stats();
    col.post_stats = svc->post_ingest_stats();
    ingest_columns.push_back(col);
    services.push_back(std::move(svc));
  }

  // ---- Streaming front-end: record-at-a-time pushes, watermark flushes
  // through the same two-pass pipeline. Measures the sustained rate a
  // single producer achieves when every record pays the staging +
  // validation + per-flush locking overhead (posts are not streamed here:
  // the calls corpus dominates and keeps the column comparable).
  for (const std::size_t threads : thread_counts) {
    service::QueryService svc{scan_config(threads)};
    service::StreamIngestorConfig scfg;
    scfg.call_capacity = 8192;
    scfg.call_flush_watermark = 4096;
    service::StreamIngestor ingestor{svc, scfg};
    IngestColumn col;
    col.name = "streaming 2-pass " + std::to_string(threads) + "t";
    col.pool_threads = threads;
    col.effective_parallelism = std::min(threads, hw);
    col.oversubscribed = threads > hw;
    col.streaming = true;
    col.flush_watermark = scfg.call_flush_watermark;
    t0 = Clock::now();
    for (const auto& call : calls) ingestor.push(call);
    ingestor.flush();
    col.call_seconds = seconds_since(t0);
    col.post_seconds = -1.0;
    col.sessions_per_sec = static_cast<double>(sessions) / col.call_seconds;
    if (svc.ingested_sessions() != sessions) {
      std::fprintf(stderr, "FATAL: streaming ingest lost records "
                           "(%zu vs %zu)\n",
                   svc.ingested_sessions(), sessions);
      return 1;
    }
    ingest_columns.push_back(col);
  }

  // ---- Streaming push_many: span pushes through the same front-end.
  // One lock acquisition + one health publish per chunk instead of per
  // record; flush slicing (and therefore every query result) is identical
  // to the per-record columns above.
  constexpr std::size_t kPushManyChunk = 1024;
  for (const std::size_t threads : thread_counts) {
    service::QueryService svc{scan_config(threads)};
    service::StreamIngestorConfig scfg;
    scfg.call_capacity = 8192;
    scfg.call_flush_watermark = 4096;
    service::StreamIngestor ingestor{svc, scfg};
    IngestColumn col;
    col.name = "streaming push-many " + std::to_string(threads) + "t";
    col.pool_threads = threads;
    col.effective_parallelism = std::min(threads, hw);
    col.oversubscribed = threads > hw;
    col.streaming = true;
    col.flush_watermark = scfg.call_flush_watermark;
    col.chunk_records = kPushManyChunk;
    const std::span<const confsim::CallRecord> span{calls};
    t0 = Clock::now();
    for (std::size_t i = 0; i < span.size(); i += kPushManyChunk) {
      ingestor.push_many(span.subspan(
          i, std::min(kPushManyChunk, span.size() - i)));
    }
    ingestor.flush();
    col.call_seconds = seconds_since(t0);
    col.post_seconds = -1.0;
    col.sessions_per_sec = static_cast<double>(sessions) / col.call_seconds;
    if (svc.ingested_sessions() != sessions) {
      std::fprintf(stderr, "FATAL: push_many ingest lost records "
                           "(%zu vs %zu)\n",
                   svc.ingested_sessions(), sessions);
      return 1;
    }
    ingest_columns.push_back(col);
  }

  for (const IngestColumn& col : ingest_columns) print_ingest(col);

  const double ingest_speedup_1t =
      ingest_columns[2].sessions_per_sec / ingest_columns[0].sessions_per_sec;
  std::printf("\ningest, two-pass sharded 1t vs seed flat per-record: %.2fx\n",
              ingest_speedup_1t);
  // Streaming overhead: record-at-a-time staging vs handing the engine the
  // whole batch (both through the same two-pass pipeline, 1 thread).
  const double streaming_share_1t =
      ingest_columns[5].sessions_per_sec / ingest_columns[2].sessions_per_sec;
  std::printf("ingest, streaming 1t vs one-shot batch 1t: %.2fx "
              "(staging + validation + per-flush lock overhead)\n",
              streaming_share_1t);
  const double push_many_gain_1t =
      ingest_columns[8].sessions_per_sec / ingest_columns[5].sessions_per_sec;
  std::printf("ingest, streaming push_many 1t vs per-record push 1t: %.2fx "
              "(lock + health-publish amortization)\n",
              push_many_gain_1t);
  std::printf("\n");

  // Legacy baseline: seed layout + seed query algorithm, one thread.
  LegacyService legacy;
  legacy.engine.ingest(std::span{calls});
  legacy.posts = posts;
  legacy.sessions = legacy.engine.sessions();
  try {
    legacy.predictor.train(legacy.sessions);
    legacy.trained = true;
  } catch (const std::exception&) {
    legacy.trained = false;
  }

  const auto queries = battery();
  const QueryResult legacy_result = time_batteries(2, [&] {
    std::size_t acc = 0;
    for (const auto& q : queries) acc += legacy_run(legacy, q).sessions;
    return acc;
  });
  std::printf("query   legacy   1t: %6.2f s/battery  (%5.2f q/s)   "
              "[flat store, query-time sentiment]\n",
              legacy_result.battery_seconds, legacy_result.queries_per_sec);

  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const service::QueryService& svc = *services[i];
    const QueryResult r = time_batteries(3, [&] {
      std::size_t acc = 0;
      for (const auto& q : queries) acc += svc.run(q).sessions;
      return acc;
    });
    query_results.push_back(r);
    std::printf("query   sharded %zut: %6.2f s/battery  (%5.2f q/s)\n",
                thread_counts[i], r.battery_seconds, r.queries_per_sec);
  }

  // Cross-check: the sharded engine answers the full-population query with
  // the same session count as the legacy path.
  const auto sanity_new = services.back()->run(queries.front());
  const auto sanity_old = legacy_run(legacy, queries.front());
  if (sanity_new.sessions != sanity_old.sessions) {
    std::fprintf(stderr, "FATAL: sharded/legacy session-count mismatch "
                         "(%zu vs %zu)\n",
                 sanity_new.sessions, sanity_old.sessions);
    return 1;
  }

  const double speedup =
      query_results.back().queries_per_sec / legacy_result.queries_per_sec;
  std::printf("\nquery-path speedup, sharded 8-thread config vs 1-thread "
              "legacy path: %.1fx%s\n", speedup,
              hw < 8 ? "  (algorithmic only: fewer than 8 cores)" : "");

  // ---- Scan kernels: row-wise reference vs columnar two-phase, 1t -----
  // Same month x platform shards, same pruning, same per-record predicate
  // order, same key-order merge; the row path walks whole
  // ParticipantRecords (~184 B/row) while the columnar path touches only
  // the columns each sweep names. Results must be bit-identical — a
  // mismatch exits non-zero, it is not a statistic.
  QueryResult scan_row;
  QueryResult scan_col;
  std::size_t scan_sweeps = 0;
  {
    struct RowShardRef {
      std::vector<core::Date> dates;
      std::vector<confsim::ParticipantRecord> records;
    };
    std::map<int, RowShardRef> row_shards;
    for (const auto& call : calls) {
      for (const auto& p : call.participants) {
        RowShardRef& s =
            row_shards[core::month_key(call.start.date) *
                           confsim::kNumPlatforms +
                       static_cast<int>(p.platform)];
        s.dates.push_back(call.start.date);
        s.records.push_back(p);
      }
    }
    service::CorrelationEngine columnar{
        service::ShardingPolicy::kMonthPlatform};
    columnar.ingest(std::span{calls});

    // The battery's sweep shapes, exactly as QueryService::run builds
    // them: structural selector, control filter off, query bin count.
    std::vector<std::pair<service::SweepSpec, service::ShardSelector>> sweeps;
    for (const auto& q : queries) {
      service::SweepSpec spec;
      spec.metric = q.metric;
      spec.lo = q.metric_lo;
      spec.hi = q.metric_hi;
      spec.bins = q.bins;
      spec.control_others = false;
      sweeps.emplace_back(spec, service::ShardSelector{q.first, q.last,
                                                       q.platform, q.access});
    }
    constexpr service::EngagementMetric kEng[] = {
        service::EngagementMetric::kPresence,
        service::EngagementMetric::kCamOn,
        service::EngagementMetric::kMicOn};
    scan_sweeps = sweeps.size() * std::size(kEng);

    const auto row_sweep = [&](const service::SweepSpec& spec,
                               const service::ShardSelector& sel,
                               service::EngagementMetric eng) {
      core::Binner1D total{spec.lo, spec.hi, spec.bins};
      for (const auto& [key, shard] : row_shards) {
        const int mk = key / confsim::kNumPlatforms;
        const auto platform =
            static_cast<confsim::Platform>(key % confsim::kNumPlatforms);
        if (sel.platform && platform != *sel.platform) continue;
        if (sel.first && mk < core::month_key(*sel.first)) continue;
        if (sel.last && mk > core::month_key(*sel.last)) continue;
        const bool first_cuts = sel.first &&
                                core::month_key(*sel.first) == mk &&
                                sel.first->day() > 1;
        const bool last_cuts =
            sel.last && core::month_key(*sel.last) == mk &&
            sel.last->day() < core::Date::days_in_month(sel.last->year(),
                                                        sel.last->month());
        const bool check_dates = first_cuts || last_cuts;
        core::Binner1D partial{spec.lo, spec.hi, spec.bins};
        for (std::size_t r = 0; r < shard.records.size(); ++r) {
          const confsim::ParticipantRecord& rec = shard.records[r];
          if (check_dates) {
            if (sel.first && shard.dates[r] < *sel.first) continue;
            if (sel.last && *sel.last < shard.dates[r]) continue;
          }
          if (sel.access && rec.access != *sel.access) continue;
          partial.add(
              netsim::metric_value(rec.network.mean_conditions(), spec.metric),
              service::engagement_value(rec, eng));
        }
        total.merge(partial);
      }
      return total;
    };

    // Equivalence guard before any timing: every battery sweep, both
    // paths, compared with ==, not a tolerance.
    for (const auto& [spec, sel] : sweeps) {
      for (const service::EngagementMetric eng : kEng) {
        const auto col = columnar.engagement_curve(spec, eng, nullptr, sel);
        const auto row = row_sweep(spec, sel, eng).bins();
        if (row.size() != col.points.size()) {
          std::fprintf(stderr, "FATAL: scan equivalence: %zu row bins vs "
                               "%zu columnar points\n",
                       row.size(), col.points.size());
          return 1;
        }
        for (std::size_t i = 0; i < row.size(); ++i) {
          if (row[i].center() != col.points[i].metric_value ||
              row[i].mean_y != col.points[i].engagement ||
              row[i].count != col.points[i].sessions) {
            std::fprintf(stderr, "FATAL: scan equivalence: bin %zu differs "
                                 "(row %.17g/%zu vs columnar %.17g/%zu)\n",
                         i, row[i].mean_y, row[i].count,
                         col.points[i].engagement, col.points[i].sessions);
            return 1;
          }
        }
      }
    }
    std::printf("\nscan equivalence: %zu battery sweeps bit-identical "
                "(row reference vs columnar kernels)\n", scan_sweeps);

    const auto time_sweeps = [&](int reps, auto&& run) {
      QueryResult r;
      const auto t = Clock::now();
      for (int rep = 0; rep < reps; ++rep) r.checksum += run();
      r.battery_seconds = seconds_since(t) / reps;
      r.queries_per_sec =
          static_cast<double>(scan_sweeps) / r.battery_seconds;
      return r;
    };
    scan_row = time_sweeps(2, [&] {
      std::size_t acc = 0;
      for (const auto& [spec, sel] : sweeps) {
        for (const service::EngagementMetric eng : kEng) {
          acc += row_sweep(spec, sel, eng).total_added();
        }
      }
      return acc;
    });
    scan_col = time_sweeps(3, [&] {
      std::size_t acc = 0;
      for (const auto& [spec, sel] : sweeps) {
        for (const service::EngagementMetric eng : kEng) {
          for (const auto& p :
               columnar.engagement_curve(spec, eng, nullptr, sel).points) {
            acc += p.sessions;
          }
        }
      }
      return acc;
    });
    std::printf("scan    row      1t: %8.4f s/battery  (%6.1f sweeps/s)\n",
                scan_row.battery_seconds, scan_row.queries_per_sec);
    std::printf("scan    columnar 1t: %8.4f s/battery  (%6.1f sweeps/s)\n",
                scan_col.battery_seconds, scan_col.queries_per_sec);
    std::printf("scan    columnar kernels vs row scan, 1t: %.2fx\n",
                scan_row.battery_seconds / scan_col.battery_seconds);
  }
  const double scan_kernel_speedup =
      scan_row.battery_seconds / scan_col.battery_seconds;

  // ---- The two-tier query path (default config) ----------------------
  // Tier 2 first: a *cold* battery on a summary-enabled service merges
  // O(shards) precomputed accumulators per query instead of rescanning
  // O(sessions) records. Tier 1 on top: a *warm* battery re-runs the same
  // dashboards and is served from the versioned insight cache. Both are
  // compared against the scan-path "sharded" columns above.
  std::printf("\n== two-tier query path (insight cache + shard summaries) "
              "==\n");
  // Bound peak memory: the 2t/8t scan services are no longer needed (the
  // 1t one stays as the rescan reference for the equivalence guard).
  services[2].reset();
  services[1].reset();

  struct TierResult {
    QueryResult cold;
    QueryResult warm;
    double cache_hit_rate{0.0};
    std::size_t summary_bytes{0};
    std::uint64_t shards_from_summary{0};
    std::uint64_t shards_scanned{0};
  };
  std::vector<TierResult> tier_results;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const std::size_t threads = thread_counts[i];
    // The *default* QueryServiceConfig: cache + summaries on.
    service::QueryServiceConfig cfg;
    cfg.sharding = service::ShardingPolicy::kMonthPlatform;
    cfg.threads = threads;
    auto svc = std::make_unique<service::QueryService>(cfg);
    IngestColumn col;
    col.name = "summarized 2-pass " + std::to_string(threads) + "t";
    col.pool_threads = threads;
    col.effective_parallelism = std::min(threads, hw);
    col.oversubscribed = threads > hw;
    col.two_pass = true;
    col.summaries = true;
    t0 = Clock::now();
    svc->ingest_calls(calls);
    col.call_seconds = seconds_since(t0);
    t0 = Clock::now();
    svc->ingest_posts(posts);
    col.post_seconds = seconds_since(t0);
    svc->train_predictor();
    col.sessions_per_sec = static_cast<double>(sessions) / col.call_seconds;
    col.posts_per_sec = static_cast<double>(posts.size()) / col.post_seconds;
    col.session_stats = svc->session_ingest_stats();
    col.post_stats = svc->post_ingest_stats();
    print_ingest(col);
    ingest_columns.push_back(col);

    // Equivalence guard: summary-merged insights must agree with the scan
    // reference (exact session counts, curves within the 1e-9 budget).
    for (const auto& q : queries) {
      const auto fast = svc->run(q);
      const auto slow = services[0]->run(q);
      if (fast.sessions != slow.sessions) {
        std::fprintf(stderr, "FATAL: summary/scan session-count mismatch "
                             "(%zu vs %zu)\n",
                     fast.sessions, slow.sessions);
        return 1;
      }
      for (std::size_t c = 0; c < fast.engagement.size(); ++c) {
        const auto& fp = fast.engagement[c].points;
        const auto& sp = slow.engagement[c].points;
        if (fp.size() != sp.size()) {
          std::fprintf(stderr, "FATAL: summary/scan curve shape mismatch\n");
          return 1;
        }
        for (std::size_t p = 0; p < fp.size(); ++p) {
          const double tol = 1e-9 * std::max(1.0, std::fabs(sp[p].engagement));
          if (fp[p].sessions != sp[p].sessions ||
              std::fabs(fp[p].engagement - sp[p].engagement) > tol) {
            std::fprintf(stderr,
                         "FATAL: summary/scan curve divergence beyond 1e-9\n");
            return 1;
          }
        }
      }
    }

    TierResult tier;
    // Cold: the first battery at this corpus version — every query is a
    // cache miss answered by merging shard summaries.
    tier.cold = time_batteries(1, [&] {
      std::size_t acc = 0;
      for (const auto& q : queries) acc += svc->run(q).sessions;
      return acc;
    });
    // Warm: the same dashboards again — all hits.
    tier.warm = time_batteries(10, [&] {
      std::size_t acc = 0;
      for (const auto& q : queries) acc += svc->run(q).sessions;
      return acc;
    });
    const auto stats = svc->stats();
    const std::uint64_t probes =
        stats.insight_cache.hits + stats.insight_cache.misses;
    tier.cache_hit_rate =
        probes > 0 ? static_cast<double>(stats.insight_cache.hits) /
                         static_cast<double>(probes)
                   : 0.0;
    tier.summary_bytes = stats.summary_bytes;
    tier.shards_from_summary = stats.fanout.shards_from_summary;
    tier.shards_scanned = stats.fanout.shards_scanned;
    std::printf("query   cold (summary-merge) %zut: %8.4f s/battery  "
                "(%7.2f q/s)\n",
                threads, tier.cold.battery_seconds,
                tier.cold.queries_per_sec);
    std::printf("query   warm (insight cache) %zut: %8.4f s/battery  "
                "(%7.2f q/s)  [hit rate %.3f]\n",
                threads, tier.warm.battery_seconds,
                tier.warm.queries_per_sec, tier.cache_hit_rate);
    tier_results.push_back(tier);
  }

  const double cold_speedup = tier_results.back().cold.queries_per_sec /
                              query_results.back().queries_per_sec;
  const double warm_speedup = tier_results.back().warm.queries_per_sec /
                              query_results.back().queries_per_sec;
  std::printf("\nquery, cold summary-merge vs sharded scan (8t config): "
              "%.1fx\n", cold_speedup);
  std::printf("query, warm insight cache vs sharded scan (8t config): "
              "%.1fx\n", warm_speedup);
  std::printf("summary memory: %.1f MB across %llu summary-answered + %llu "
              "scanned shard visits\n",
              static_cast<double>(tier_results.back().summary_bytes) /
                  (1024.0 * 1024.0),
              static_cast<unsigned long long>(
                  tier_results.back().shards_from_summary),
              static_cast<unsigned long long>(
                  tier_results.back().shards_scanned));

  // ---- Telemetry overhead (enabled vs the USAAS_TELEMETRY=off path) --
  // Fresh 1-thread scan-path services (cache + summaries off), one
  // against a live registry and one against a disabled registry (the
  // kill-switch path: null handles, no clock reads, no slow-query log),
  // fed the same corpus. The scan config keeps the denominators honest:
  // per-query telemetry is a fixed ~10 us (fingerprint + spans + slow-log
  // probe), which is noise against a record-scanning query but would read
  // as a large *percentage* of a microsecond summary-merge hit. Each
  // column is the minimum over kTelemetryReps runs — on a busy
  // single-core host the minimum is the closest observable to the true
  // cost — and the sides alternate within each rep so slow host drift
  // (frequency steps, page-cache churn) lands on both columns instead of
  // masquerading as telemetry overhead.
  std::printf("\n== telemetry overhead (enabled vs USAAS_TELEMETRY=off) "
              "==\n");
  struct TelemetryColumn {
    double ingest_seconds{std::numeric_limits<double>::infinity()};
    double battery_seconds{std::numeric_limits<double>::infinity()};
  };
  constexpr int kTelemetryReps = 3;
  core::telemetry::Registry reg_enabled{true};
  core::telemetry::Registry reg_disabled{false};
  const auto telemetry_rep = [&](core::telemetry::Registry* reg,
                                 TelemetryColumn& col) {
    service::QueryServiceConfig cfg = scan_config(1);
    cfg.telemetry = reg;
    service::QueryService svc{cfg};
    auto t = Clock::now();
    svc.ingest_calls(calls);
    svc.ingest_posts(posts);
    col.ingest_seconds = std::min(col.ingest_seconds, seconds_since(t));
    svc.train_predictor();
    // The battery goes through the admission scheduler so the per-request
    // tracing path — ID mint, trace assembly, seqlock ring write — is
    // inside the measured window; the QoS is set so nothing ever queues,
    // leaving tracing as the only delta the columns disagree on.
    service::SchedulerConfig sched_cfg;
    sched_cfg.default_qos = {1e9, 1e9};
    sched_cfg.telemetry = reg;
    service::QueryScheduler sched{svc, sched_cfg};
    t = Clock::now();
    std::size_t acc = 0;
    for (const auto& q : queries) {
      acc += sched.submit("bench", q).insight.sessions;
    }
    col.battery_seconds = std::min(col.battery_seconds, seconds_since(t));
    if (acc == 0) std::printf("(empty battery)\n");  // keep acc live
  };
  TelemetryColumn tel_on, tel_off;
  for (int rep = 0; rep < kTelemetryReps; ++rep) {
    telemetry_rep(&reg_enabled, tel_on);
    telemetry_rep(&reg_disabled, tel_off);
  }
  const auto overhead_pct = [](double on, double off) {
    return off > 0.0 ? (on - off) / off * 100.0 : 0.0;
  };
  const double tel_ingest_pct =
      overhead_pct(tel_on.ingest_seconds, tel_off.ingest_seconds);
  const double tel_query_pct =
      overhead_pct(tel_on.battery_seconds, tel_off.battery_seconds);
  std::printf("telemetry ingest 1t: enabled %.3f s, off %.3f s  "
              "(overhead %+.2f%%)\n",
              tel_on.ingest_seconds, tel_off.ingest_seconds, tel_ingest_pct);
  std::printf("telemetry scan battery 1t: enabled %.4f s, off %.4f s  "
              "(overhead %+.2f%%)\n",
              tel_on.battery_seconds, tel_off.battery_seconds, tel_query_pct);
  const auto query_hist =
      reg_enabled.histogram("usaas_query_seconds").snapshot();
  std::printf("telemetry usaas_query_seconds: n=%llu p50=%.4g s "
              "p95=%.4g s p99=%.4g s max=%.4g s\n",
              static_cast<unsigned long long>(query_hist.count),
              query_hist.p50, query_hist.p95, query_hist.p99,
              query_hist.max);

  // ---- Admission front-end: open-loop at a fixed arrival rate --------
  std::printf("\n== admission front-end (open-loop, wrk2-style) ==\n");
  const double fe_rate =
      static_cast<double>(env_size("USAAS_BENCH_FRONTEND_RATE", 800));
  const double fe_secs =
      static_cast<double>(env_size("USAAS_BENCH_FRONTEND_SECONDS", 4));
  const FrontendOutcome fe =
      run_frontend_open_loop(calls, posts, fe_rate, fe_secs);
  print_frontend(fe);
  if (!fe.ok()) {
    std::fprintf(stderr,
                 "FATAL: front-end invariants violated (reconcile=%d "
                 "exposition=%d staleness_bounded=%d tripwire=%llu)\n",
                 fe.stats_reconciled ? 1 : 0, fe.exposition_reconciled ? 1 : 0,
                 fe.staleness_bounded ? 1 : 0,
                 static_cast<unsigned long long>(fe.shed_with_degradable));
    return 1;
  }

  // ---- EDF fair queue vs legacy per-bucket waits under saturation ----
  // Concurrent tight-budget and loose-budget tenants contend for the same
  // drained token buckets; the number that should move is the tight
  // tenants' admission-wait tail (EDF offers refills to the nearest
  // deadline first) and their admit rate.
  std::printf("\n-- admission saturation A/B: legacy per-bucket waits vs "
              "EDF fair queue --\n");
  const SaturationAb ab = run_saturation_ab(calls);
  std::printf("  %zu threads (%zu tight-budget submissions)%s\n", ab.threads,
              ab.tight_submissions,
              ab.oversubscribed
                  ? "  [OVERSUBSCRIBED: more threads than cores; treat "
                    "deltas as directional]"
                  : "");
  std::printf("  tight-tenant wait p99:  legacy %8.3f ms   edf %8.3f ms\n",
              ab.legacy_tight_wait_p99_ms, ab.edf_tight_wait_p99_ms);
  std::printf("  tight-tenant admit rate: legacy %7.4f      edf %7.4f\n",
              ab.legacy_tight_admit_rate, ab.edf_tight_admit_rate);

  std::ofstream json{json_path};
  if (!json) {
    std::fprintf(stderr, "FATAL: cannot open %s for writing\n",
                 json_path.c_str());
    return 1;
  }
  const auto json_name = [](const IngestColumn& col) {
    std::string out;
    for (const char c : col.name) out.push_back(c == ' ' ? '_' : c == '-' ? '_' : c);
    return out;
  };
  json << "{\n"
       << "  \"bench\": \"usaas_throughput\",\n"
       << "  \"corpus\": {\"sessions\": " << sessions
       << ", \"calls\": " << calls.size()
       << ", \"posts\": " << posts.size() << ", \"months\": 12},\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"ingest\": {\n";
  for (std::size_t i = 0; i < ingest_columns.size(); ++i) {
    const IngestColumn& col = ingest_columns[i];
    json << "    \"" << json_name(col) << "\": {\"call_seconds\": "
         << col.call_seconds << ", \"sessions_per_sec\": "
         << col.sessions_per_sec;
    if (col.post_seconds >= 0.0) {
      json << ", \"post_seconds\": " << col.post_seconds
           << ", \"posts_per_sec\": " << col.posts_per_sec;
    }
    json << ", \"pool_threads\": " << col.pool_threads
         << ", \"effective_parallelism\": " << col.effective_parallelism
         << ", \"oversubscribed\": "
         << (col.oversubscribed ? "true" : "false")
         << ", \"streaming\": " << (col.streaming ? "true" : "false")
         << ", \"summaries\": " << (col.summaries ? "true" : "false");
    if (col.streaming) {
      json << ", \"flush_watermark\": " << col.flush_watermark;
    }
    if (col.chunk_records > 0) {
      json << ", \"chunk_records\": " << col.chunk_records;
    }
    if (col.two_pass) {
      json << ", \"session_phases\": ";
      json_ingest_phases(json, col.session_stats);
      json << ", \"post_phases\": ";
      json_ingest_phases(json, col.post_stats);
    }
    json << "}" << (i + 1 < ingest_columns.size() ? "," : "") << "\n";
  }
  json << "  },\n"
       << "  \"ingest_speedup_2pass_1t_vs_flat_per_record\": "
       << ingest_speedup_1t << ",\n"
       << "  \"streaming_1t_share_of_batch_1t\": " << streaming_share_1t
       << ",\n"
       << "  \"streaming_push_many_gain_1t\": " << push_many_gain_1t
       << ",\n"
       << "  \"query\": {\n"
       << "    \"legacy_flat_1t\": {\"battery_seconds\": "
       << legacy_result.battery_seconds << ", \"queries_per_sec\": "
       << legacy_result.queries_per_sec
       << ", \"pool_threads\": 1, \"effective_parallelism\": 1},\n";
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    json << "    \"sharded_" << thread_counts[i]
         << "t\": {\"battery_seconds\": " << query_results[i].battery_seconds
         << ", \"queries_per_sec\": " << query_results[i].queries_per_sec
         << ", \"pool_threads\": " << thread_counts[i]
         << ", \"effective_parallelism\": " << std::min(thread_counts[i], hw)
         << ", \"oversubscribed\": "
         << (thread_counts[i] > hw ? "true" : "false") << "},\n";
  }
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const TierResult& tier = tier_results[i];
    json << "    \"cache_cold_" << thread_counts[i]
         << "t\": {\"battery_seconds\": " << tier.cold.battery_seconds
         << ", \"queries_per_sec\": " << tier.cold.queries_per_sec
         << ", \"pool_threads\": " << thread_counts[i]
         << ", \"effective_parallelism\": " << std::min(thread_counts[i], hw)
         << ", \"oversubscribed\": "
         << (thread_counts[i] > hw ? "true" : "false")
         << ", \"summaries\": true, \"reps\": 1},\n";
    json << "    \"cache_warm_" << thread_counts[i]
         << "t\": {\"battery_seconds\": " << tier.warm.battery_seconds
         << ", \"queries_per_sec\": " << tier.warm.queries_per_sec
         << ", \"pool_threads\": " << thread_counts[i]
         << ", \"effective_parallelism\": " << std::min(thread_counts[i], hw)
         << ", \"oversubscribed\": "
         << (thread_counts[i] > hw ? "true" : "false")
         << ", \"cache_hit_rate\": " << tier.cache_hit_rate
         << ", \"reps\": 10}"
         << (i + 1 < thread_counts.size() ? "," : "") << "\n";
  }
  json << "  },\n"
       << "  \"scan_kernels_1t\": {\n"
       << "    \"sweeps\": " << scan_sweeps << ",\n"
       << "    \"row\": {\"battery_seconds\": " << scan_row.battery_seconds
       << ", \"sweeps_per_sec\": " << scan_row.queries_per_sec << "},\n"
       << "    \"columnar\": {\"battery_seconds\": "
       << scan_col.battery_seconds << ", \"sweeps_per_sec\": "
       << scan_col.queries_per_sec << "},\n"
       << "    \"speedup\": " << scan_kernel_speedup << ",\n"
       << "    \"bit_identical\": true\n"
       << "  },\n"
       << "  \"query_speedup_sharded_8t_config_vs_legacy\": " << speedup
       << ",\n"
       << "  \"query_speedup_summary_cold_vs_sharded\": " << cold_speedup
       << ",\n"
       << "  \"query_speedup_cache_warm_vs_sharded\": " << warm_speedup
       << ",\n"
       << "  \"cache_hit_rate\": " << tier_results.back().cache_hit_rate
       << ",\n"
       << "  \"summary_bytes\": " << tier_results.back().summary_bytes
       << ",\n"
       << "  \"fanout\": {\"shards_from_summary\": "
       << tier_results.back().shards_from_summary
       << ", \"shards_scanned\": " << tier_results.back().shards_scanned
       << "},\n"
       << "  \"telemetry\": {\n"
       << "    \"reps\": " << kTelemetryReps << ",\n"
       << "    \"take\": \"min\",\n"
       << "    \"ingest_seconds_enabled\": " << tel_on.ingest_seconds
       << ",\n"
       << "    \"ingest_seconds_off\": " << tel_off.ingest_seconds << ",\n"
       << "    \"ingest_overhead_pct\": " << tel_ingest_pct << ",\n"
       << "    \"query_battery_seconds_enabled\": " << tel_on.battery_seconds
       << ",\n"
       << "    \"query_battery_seconds_off\": " << tel_off.battery_seconds
       << ",\n"
       << "    \"query_overhead_pct\": " << tel_query_pct << ",\n"
       << "    \"query_seconds_samples\": " << query_hist.count << ",\n"
       << "    \"query_seconds_p50\": " << query_hist.p50 << ",\n"
       << "    \"query_seconds_p95\": " << query_hist.p95 << ",\n"
       << "    \"query_seconds_p99\": " << query_hist.p99 << ",\n"
       << "    \"query_seconds_max\": " << query_hist.max << "\n"
       << "  },\n"
       << "  \"frontend\": {\n"
       << "    \"open_loop\": true,\n"
       << "    \"offered_rate_per_sec\": " << fe.offered_rate << ",\n"
       << "    \"duration_seconds\": " << fe.duration_seconds << ",\n"
       << "    \"submitted\": " << fe.submitted << ",\n"
       << "    \"admitted\": " << fe.admitted << ",\n"
       << "    \"degraded\": " << fe.degraded << ",\n"
       << "    \"shed\": " << fe.shed << ",\n"
       << "    \"expired\": " << fe.expired << ",\n"
       << "    \"shed_with_degradable\": " << fe.shed_with_degradable
       << ",\n"
       << "    \"shed_rate\": " << fe.shed_rate << ",\n"
       << "    \"degraded_rate\": " << fe.degraded_rate << ",\n"
       << "    \"admitted_latency_p50_ms\": " << fe.p50_ms << ",\n"
       << "    \"admitted_latency_p95_ms\": " << fe.p95_ms << ",\n"
       << "    \"admitted_latency_p99_ms\": " << fe.p99_ms << ",\n"
       << "    \"max_staleness\": " << fe.max_staleness << ",\n"
       << "    \"max_versions_behind\": " << fe.max_versions_behind << ",\n"
       << "    \"reconciled\": " << (fe.stats_reconciled ? "true" : "false")
       << ",\n"
       << "    \"exposition_reconciled\": "
       << (fe.exposition_reconciled ? "true" : "false") << ",\n"
       << "    \"saturation_ab\": {\n"
       << "      \"threads\": " << ab.threads << ",\n"
       << "      \"tight_submissions\": " << ab.tight_submissions << ",\n"
       << "      \"oversubscribed\": "
       << (ab.oversubscribed ? "true" : "false") << ",\n"
       << "      \"legacy_tight_wait_p99_ms\": "
       << ab.legacy_tight_wait_p99_ms << ",\n"
       << "      \"edf_tight_wait_p99_ms\": " << ab.edf_tight_wait_p99_ms
       << ",\n"
       << "      \"legacy_tight_admit_rate\": "
       << ab.legacy_tight_admit_rate << ",\n"
       << "      \"edf_tight_admit_rate\": " << ab.edf_tight_admit_rate
       << "\n"
       << "    }\n"
       << "  },\n"
       << "  \"notes\": \"Legacy baseline is the seed's path (flat "
          "single-shard store, per-record ingest, sentiment re-scored over "
          "the whole post corpus per query). Sharded engines use the "
          "two-pass counted batch ingest (count, prefix-sum/reserve, "
          "scatter), score sentiment once at ingest, and prune per-month x "
          "per-platform shards at query time. Thread columns record the "
          "actual pool size and the effective parallelism after capping at "
          "hardware_concurrency; columns marked oversubscribed run more "
          "workers than cores and measure queue overhead, not parallel "
          "scaling, so differences between thread counts on such hosts are "
          "noise, not speedup. Streaming columns push calls one record at "
          "a time through StreamIngestor (bounded staging, validation, "
          "watermark flushes through the same two-pass pipeline) and "
          "measure the sustained single-producer rate including that "
          "overhead; posts are not streamed in those columns "
          "(post_seconds absent). streaming_push_many columns push the "
          "same stream in spans of chunk_records through push_many (one "
          "lock + one health publish per span; identical flush slicing "
          "and results). sharded_* query columns measure the raw scan "
          "engine (cache and summaries disabled). cache_cold_* batteries "
          "run each dashboard once on the default config: every query is "
          "a cache miss answered by merging per-shard summaries (reps: 1, "
          "so treat cold numbers as single-shot measurements). "
          "cache_warm_* batteries re-run the same dashboards 10x and are "
          "served from the versioned insight cache; cache_hit_rate is "
          "cumulative over cold+warm probes. Summary-merged results are "
          "verified against the scan path in-process (exact session "
          "counts, curves within 1e-9) before timing. telemetry columns "
          "compare fresh scan-config 1t services with a live metrics "
          "registry vs the USAAS_TELEMETRY=off kill switch (null handles, "
          "no clock reads, no slow-query log); each side is the minimum "
          "over reps runs, and overhead percentages can be slightly "
          "negative on a noisy host. The scan config keeps the query "
          "denominator honest: per-query telemetry is a fixed ~10 us, "
          "which would read as a large percentage of a microsecond "
          "summary-merge hit but is noise against a real record scan. The "
          "frontend section is a wrk2-style open-loop load generator over "
          "the QueryScheduler: arrival i is scheduled at t_i = i / rate and "
          "latency is measured from the scheduled arrival (backlog counts, "
          "no coordinated omission), with mixed tenant traffic — dashboard "
          "cache-hit repeats, analytics boundary-cut scans warmed before a "
          "version bump so saturation degrades them to bounded-staleness "
          "cached insights, and never-cached batch windows that shed. "
          "Percentiles cover admitted queries only; lanes carry per-request "
          "budgets (0.25 s dashboard, 0.5 s analytics, unbounded batch) so "
          "expired counts requests whose deadline elapsed before or during "
          "execution, and the run aborts unless admitted + degraded + shed "
          "+ expired == submitted in both the scheduler stats and the "
          "scraped exposition, staleness stamps respect "
          "max_versions_behind, and nothing sheds while a degradable "
          "cached insight exists. saturation_ab contends tight-budget and "
          "loose-budget tenant threads on deliberately drained token "
          "buckets and compares the tight tenants' admission-wait p99 and "
          "admit rate between the legacy per-bucket timed waits and the "
          "deadline-ordered (EDF) cross-tenant fair queue; on "
          "oversubscribed hosts the deltas are directional, not "
          "calibrated.\"\n"
       << "}\n";
  json.close();
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
