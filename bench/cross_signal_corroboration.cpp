// §5 (text): "If SpaceX Starlink ... wants to understand how users on
// their network are perceiving the MS Teams experience, USaaS could filter
// online user actions and MOS on MS Teams pertaining to Starlink and the
// offline feedback on the same on social media ... User actions could be
// used to corroborate the user posts on social media."
//
// Generates a year of Starlink-coupled conferencing sessions (implicit
// side) and the same year of r/Starlink (explicit side), both driven by
// the same underlying network state, then checks how well each side
// corroborates the other.
#include "bench_util.h"

#include "usaas/isp_bridge.h"

namespace {

using namespace usaas;
using core::Date;

void reproduction() {
  bench::print_header(
      "Cross-signal corroboration: Starlink-coupled Teams calls vs "
      "r/Starlink, calendar 2022");
  const Date first{2022, 1, 1};
  const Date last{2022, 12, 31};
  leo::LaunchSchedule sched;
  leo::SpeedModel speed{leo::ConstellationModel{sched},
                        leo::SubscriberModel{}};

  service::IspCallConfig icfg;
  icfg.first_day = first;
  icfg.last_day = last;
  const auto calls = service::IspCoupledCallGenerator{
      speed, leo::OutageModel{first, last, 42}, icfg}
                         .generate();
  std::size_t sessions = 0;
  std::size_t rated = 0;
  for (const auto& c : calls) {
    sessions += c.participants.size();
    for (const auto& p : c.participants) rated += p.mos ? 1 : 0;
  }
  std::printf("implicit side: %zu calls, %zu sessions (%zu MOS-rated)\n",
              calls.size(), sessions, rated);

  social::SubredditConfig scfg;
  scfg.first_day = first;
  scfg.last_day = last;
  social::RedditSim sim{scfg, speed, leo::OutageModel{first, last, 42},
                        leo::EventTimeline{sched}};
  const auto posts = sim.simulate();
  std::printf("explicit side: %zu posts\n", posts.size());

  const nlp::SentimentAnalyzer analyzer;
  const auto report =
      service::corroborate(calls, posts, first, last, analyzer);

  std::printf("\ndaily implicit drop-off rate vs daily outage-keyword "
              "count: pearson %.3f\n",
              report.correlation);
  std::printf("\nday classification:\n");
  auto print_days = [](const char* label, const std::vector<Date>& days) {
    std::printf("  %-14s %zu:", label, days.size());
    for (const auto& d : days) std::printf(" %s", d.to_string().c_str());
    std::printf("\n");
  };
  print_days("corroborated", report.corroborated_days);
  print_days("social-only", report.social_only_days);
  print_days("implicit-only", report.implicit_only_days);

  std::printf("\nmonthly view (mean drop-off %% vs keyword count):\n");
  for (int m = 1; m <= 12; ++m) {
    double drop_acc = 0.0;
    double kw_acc = 0.0;
    int days = 0;
    core::for_each_day(Date(2022, m, 1),
                       Date(2022, m, 1).plus_months(1).plus_days(-1),
                       [&](const Date& d) {
                         drop_acc += report.implicit_dropoff.at(d);
                         kw_acc += report.social_keywords.at(d);
                         ++days;
                       });
    std::printf("  2022-%02d: drop-off %.2f%%  keywords/day %.1f\n", m,
                100.0 * drop_acc / days, kw_acc / days);
  }
  std::printf("\nreading: the two signal paths never see each other — they "
              "share only the underlying network — yet they agree day by "
              "day, which is exactly why the paper argues user actions can "
              "corroborate social posts (and vice versa).\n");
}

void BM_Corroboration(benchmark::State& state) {
  static const auto setup = [] {
    const Date first{2022, 1, 1};
    const Date last{2022, 3, 31};
    leo::LaunchSchedule sched;
    leo::SpeedModel speed{leo::ConstellationModel{sched},
                          leo::SubscriberModel{}};
    service::IspCallConfig icfg;
    icfg.first_day = first;
    icfg.last_day = last;
    auto calls = service::IspCoupledCallGenerator{
        speed, leo::OutageModel{first, last, 42}, icfg}
                     .generate();
    social::SubredditConfig scfg;
    scfg.first_day = first;
    scfg.last_day = last;
    social::RedditSim sim{scfg, speed, leo::OutageModel{first, last, 42},
                          leo::EventTimeline{sched}};
    return std::pair{std::move(calls), sim.simulate()};
  }();
  const nlp::SentimentAnalyzer analyzer;
  for (auto _ : state) {
    const auto report =
        service::corroborate(setup.first, setup.second, Date(2022, 1, 1),
                             Date(2022, 3, 31), analyzer);
    benchmark::DoNotOptimize(report.correlation);
  }
}
BENCHMARK(BM_Corroboration);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
