// Fig 7: "Downlink speeds on Starlink evolve with more launches and
// customers. User sentiment largely follows the observed speeds."
//
// Runs the full §4.2 pipeline: speed-test screenshot posts -> noisy OCR ->
// field extraction -> monthly medians (with 95%/90% subsample stability),
// plus the normalized strong-positive sentiment score (Pos), annotated
// with launch counts and reported subscriber numbers.
#include "bench_util.h"

#include "core/csv.h"
#include "core/trend.h"
#include "usaas/fulcrum.h"

namespace {

using namespace usaas;

void reproduction() {
  bench::print_header(
      "Fig 7 reproduction: monthly median downlink + Pos sentiment, "
      "annotated with launches & subscribers");
  const auto corpus = bench::make_social_corpus();
  const nlp::SentimentAnalyzer analyzer;
  const service::FulcrumTracker tracker{analyzer};
  const auto months = tracker.analyze(corpus.posts);

  const leo::LaunchSchedule schedule;
  const leo::SubscriberModel subscribers;

  const auto& stats = tracker.extraction_stats();
  std::printf("speed-test reports: %zu attempted, %zu extracted (%.0f%%; "
              "paper identified ~1750 usable reports)\n",
              stats.attempted, stats.extracted, 100.0 * stats.success_rate());

  std::printf("\n%8s | %4s | %6s %6s %6s | %5s (%4s/%4s) | %8s | %9s\n",
              "month", "n", "median", "@95%", "@90%", "Pos", "s+", "s-",
              "launches", "subs");
  bench::print_rule();
  for (const auto& m : months) {
    const core::Date start{m.year, m.month, 1};
    const core::Date end = start.plus_months(1).plus_days(-1);
    const int launches = schedule.launches_between(start, end);
    const double subs = subscribers.subscribers_on(core::Date{
        m.year, m.month, 15});
    std::printf("%04d-%02d | %4zu | %6.1f %6.1f %6.1f | %5s (%4zu/%4zu) | "
                "%8d | %9.0f\n",
                m.year, m.month, m.reports, m.median_downlink_mbps,
                m.median_95pct_sample, m.median_90pct_sample,
                m.pos_score ? std::to_string(*m.pos_score).substr(0, 5).c_str()
                            : "  n/a",
                m.strong_positive, m.strong_negative, launches, subs);
  }

  if (const auto dir = bench::csv_export_dir()) {
    core::CsvTable csv{{"month", "reports", "median_mbps", "median_95pct",
                        "median_90pct", "pos", "strong_pos", "strong_neg"}};
    for (const auto& m : months) {
      csv.add_row({std::to_string(m.year) + "-" + std::to_string(m.month),
                   std::to_string(m.reports),
                   std::to_string(m.median_downlink_mbps),
                   std::to_string(m.median_95pct_sample),
                   std::to_string(m.median_90pct_sample),
                   m.pos_score ? std::to_string(*m.pos_score) : "",
                   std::to_string(m.strong_positive),
                   std::to_string(m.strong_negative)});
    }
    const std::string path = *dir + "/fig7_downlink_speeds.csv";
    csv.write_file(path);
    std::printf("\n(csv written to %s)\n", path.c_str());
  }

  auto month_at = [&](int y, int mo) -> const service::FulcrumMonth& {
    for (const auto& m : months) {
      if (m.year == y && m.month == mo) return m;
    }
    throw std::runtime_error("missing month");
  };
  std::printf("\npaper's shape claims:\n");
  std::printf("  rise Jan-Jun'21:        %.1f -> %.1f Mbps\n",
              month_at(2021, 1).median_downlink_mbps,
              month_at(2021, 6).median_downlink_mbps);
  std::printf("  Jun-Aug'21 dip:         %.1f -> %.1f Mbps (21K users added,"
              " no launches)\n",
              month_at(2021, 6).median_downlink_mbps,
              month_at(2021, 8).median_downlink_mbps);
  std::printf("  decline Sep'21-Dec'22:  %.1f -> %.1f Mbps (37 launches but"
              " 90K -> 1M+ users)\n",
              month_at(2021, 9).median_downlink_mbps,
              month_at(2022, 12).median_downlink_mbps);
  const auto& apr21 = month_at(2021, 4);
  const auto& dec21 = month_at(2021, 12);
  std::printf("  fulcrum anomaly:        Dec'21 speed %.1f > Apr'21 %.1f, "
              "but Pos %.2f < %.2f\n",
              dec21.median_downlink_mbps, apr21.median_downlink_mbps,
              dec21.pos_score.value_or(0.0), apr21.pos_score.value_or(0.0));
  const auto& mar22 = month_at(2022, 3);
  const auto& dec22 = month_at(2022, 12);
  std::printf("  inverse trend in 2022:  speeds %.1f -> %.1f while Pos "
              "%.2f -> %.2f (conditioning to lower speeds)\n",
              mar22.median_downlink_mbps, dec22.median_downlink_mbps,
              mar22.pos_score.value_or(0.0), dec22.pos_score.value_or(0.0));

  // Statistical verdict on "almost steady decrease" beyond Sep '21.
  std::vector<double> post_sep;
  for (const auto& m : months) {
    if (m.year > 2021 || (m.year == 2021 && m.month >= 9)) {
      post_sep.push_back(m.median_downlink_mbps);
    }
  }
  const auto mk = core::mann_kendall(post_sep);
  std::printf("  Mann-Kendall (Sep'21-Dec'22 medians): tau %.2f, z %.1f -> "
              "%s; Theil-Sen slope %.2f Mbps/month\n",
              mk.tau, mk.z,
              mk.decreasing() ? "significant decline" : "no trend",
              core::theil_sen_slope(post_sep));

  // The paper's OCR pipeline also extracts uplink and latency.
  std::printf("\nother OCR-extracted fields (quarterly medians):\n");
  for (std::size_t i = 0; i + 2 < months.size(); i += 3) {
    double up = 0.0;
    double lat = 0.0;
    for (std::size_t j = i; j < i + 3; ++j) {
      up += months[j].median_uplink_mbps;
      lat += months[j].median_latency_ms;
    }
    std::printf("  %d-Q%zu: uplink %.1f Mbps, latency %.0f ms\n",
                months[i].year, i % 12 / 3 + 1, up / 3.0, lat / 3.0);
  }
}

void BM_FulcrumPipeline(benchmark::State& state) {
  static const auto corpus = usaas::bench::make_social_corpus();
  const nlp::SentimentAnalyzer analyzer;
  const service::FulcrumTracker tracker{analyzer};
  for (auto _ : state) {
    const auto months = tracker.analyze(corpus.posts);
    benchmark::DoNotOptimize(months.data());
  }
}
BENCHMARK(BM_FulcrumPipeline);

void BM_OcrExtractionOnly(benchmark::State& state) {
  static const auto corpus = usaas::bench::make_social_corpus();
  const ocr::NoisyOcr channel;
  const ocr::ReportExtractor extractor;
  core::Rng rng{1};
  for (auto _ : state) {
    std::size_t ok = 0;
    for (const auto& post : corpus.posts) {
      if (!post.screenshot) continue;
      if (extractor.extract(channel.read(*post.screenshot, rng))) ++ok;
    }
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_OcrExtractionOnly);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
