// Fig 6: "While a few larger outages sparked a lot of discussions on
// r/Starlink, outages with smaller impacts are quite frequent. Threads
// with positive or neutral sentiments have been filtered out."
//
// Regenerates the day-wise outage-keyword occurrence series (negative
// threads only), classifies spikes, and scores detection against the
// simulator's outage ground truth.
#include "bench_util.h"

#include "usaas/outage_detector.h"

namespace {

using namespace usaas;

void reproduction() {
  bench::print_header(
      "Fig 6 reproduction: outage-keyword occurrences in negative threads");
  const auto corpus = bench::make_social_corpus();
  const nlp::SentimentAnalyzer analyzer;
  const service::OutageDetector detector{
      analyzer, nlp::KeywordDictionary::outage_dictionary()};

  const auto series =
      detector.keyword_series(corpus.posts, corpus.first, corpus.last);

  std::printf("top keyword-spike days (paper: 7 Jan '22 and 30 Aug '22 are "
              "the largest):\n");
  for (const auto& peak : core::top_k_peaks(series, 6, 7)) {
    std::printf("  %s  %5.0f occurrences\n", peak.date.to_string().c_str(),
                peak.value);
  }

  const auto detections =
      detector.detect(corpus.posts, corpus.first, corpus.last);
  std::size_t majors = 0;
  for (const auto& d : detections) majors += d.major ? 1 : 0;
  std::printf("\ndetected outage spikes: %zu total (%zu major, %zu "
              "transient \"shorter peaks\")\n",
              detections.size(), majors, detections.size() - majors);

  std::printf("\nall detections:\n");
  std::printf("%12s | %9s %8s %s\n", "date", "keywords", "z-score", "class");
  bench::print_rule();
  for (const auto& d : detections) {
    std::printf("%12s | %9.0f %8.1f %s\n", d.date.to_string().c_str(),
                d.keyword_count, d.z_score, d.major ? "MAJOR" : "transient");
  }

  // Score against ground truth at two severity levels.
  for (const double threshold : {0.2, 0.004}) {
    const auto truth = corpus.outages.days_above(threshold);
    const auto q = service::OutageDetector::evaluate(detections, truth, 1);
    std::printf("\nvs ground-truth outage days (severity > %.3f, n=%zu): "
                "precision %.2f recall %.2f\n",
                threshold, truth.size(), q.precision(), q.recall());
  }
  std::printf("(paper: most transient outages are not publicly reported — "
              "Downdetector only logs large incidents)\n");
}

void BM_KeywordSeries(benchmark::State& state) {
  static const auto corpus = usaas::bench::make_social_corpus();
  const nlp::SentimentAnalyzer analyzer;
  const service::OutageDetector detector{
      analyzer, nlp::KeywordDictionary::outage_dictionary()};
  for (auto _ : state) {
    const auto series =
        detector.keyword_series(corpus.posts, corpus.first, corpus.last);
    benchmark::DoNotOptimize(series.values().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.posts.size()));
}
BENCHMARK(BM_KeywordSeries);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
