// §5 (text): "We are currently also using AI/ML techniques to predict MOS
// scores from user engagement and network conditions."
//
// Trains the MOS predictor on the rated subset and evaluates on held-out
// raters against three baselines: network-features-only, engagement-only,
// and the constant training mean.
#include "bench_util.h"

#include "usaas/mos_predictor.h"

namespace {

using namespace usaas;

std::vector<confsim::ParticipantRecord> build_sessions(std::size_t calls) {
  confsim::DatasetConfig cfg;
  cfg.seed = 55;
  cfg.num_calls = calls;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  cfg.sweep_metric = netsim::Metric::kLatency;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 300.0;
  cfg.control_windows.loss_hi_pct = 3.0;
  std::vector<confsim::ParticipantRecord> out;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) {
        for (const auto& p : call.participants) out.push_back(p);
      });
  return out;
}

void print_metrics(const char* name, const core::RegressionMetrics& m) {
  std::printf("%-18s mae %.3f  rmse %.3f  r2 %+.3f\n", name, m.mae, m.rmse,
              m.r2);
}

void reproduction() {
  bench::print_header("MOS prediction from engagement + network conditions");
  const auto sessions = build_sessions(60000);
  std::size_t rated = 0;
  for (const auto& s : sessions) rated += s.mos ? 1 : 0;
  std::printf("sessions: %zu, rated: %zu (%.2f%% — the paper's 0.1-1%% "
              "sampling)\n",
              sessions.size(), rated,
              100.0 * static_cast<double>(rated) / sessions.size());

  const service::MosPredictor predictor;
  const auto ev = predictor.evaluate(sessions);
  std::printf("\ntrain %zu rated sessions, test %zu held out:\n",
              ev.train_sessions, ev.test_sessions);
  print_metrics("engagement+network", ev.full);
  print_metrics("network only", ev.network_only);
  print_metrics("engagement only", ev.engagement_only);
  print_metrics("constant mean", ev.mean_baseline);

  std::printf("\ncoverage: the trained model backfills a MOS estimate for "
              "the %.1f%% of sessions the splash screen never asked.\n",
              100.0 * (1.0 - static_cast<double>(rated) / sessions.size()));
}

void BM_PredictorTraining(benchmark::State& state) {
  static const auto sessions = build_sessions(30000);
  for (auto _ : state) {
    service::MosPredictor predictor;
    predictor.train(sessions);
    benchmark::DoNotOptimize(&predictor);
  }
}
BENCHMARK(BM_PredictorTraining);

void BM_PredictorInference(benchmark::State& state) {
  static const auto sessions = build_sessions(10000);
  static const service::MosPredictor predictor = [] {
    service::MosPredictor p;
    p.train(sessions);
    return p;
  }();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.predict(sessions[i % sessions.size()]));
    ++i;
  }
}
BENCHMARK(BM_PredictorInference);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
