// §6 (text): "If call latency, for example, is the discerning factor
// affecting user experience on MS Teams, could network resource allocation
// be tuned online to cater to the demand?"
//
// Allocates a fixed boost budget (a premium route / priority marking that
// improves a session's conditions) over the same session population with
// three policies and compares the resulting population experience. The
// USaaS policy ranks sessions by *predicted experience gain* — using the
// behaviour model's nonlinearity — rather than by raw network badness.
#include "bench_util.h"

#include "netsim/profiles.h"
#include "usaas/qoe_controller.h"

namespace {

using namespace usaas;
using service::AllocationOutcome;
using service::BoostPolicy;
using service::QoeExperiment;

std::vector<netsim::NetworkConditions> make_population(std::size_t n) {
  core::Rng rng{5};
  std::vector<netsim::NetworkConditions> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(netsim::sample_mixed_baseline(rng));
  }
  return out;
}

void print_outcome(const char* label, const AllocationOutcome& out,
                   const AllocationOutcome& baseline) {
  std::printf("%-24s impairment %.4f (-%5.1f%%)  presence %.2f%%  "
              "drop-off %.4f  boosted %zu\n",
              label, out.mean_experience_impairment,
              100.0 * (1.0 - out.mean_experience_impairment /
                                 baseline.mean_experience_impairment),
              out.mean_presence_pct, out.mean_drop_off, out.boosted);
}

void reproduction() {
  bench::print_header(
      "Traffic-engineering opportunity: allocating a 10% boost budget over "
      "50k sessions");
  const auto population = make_population(50000);
  const QoeExperiment experiment;
  const auto baseline = experiment.run_unboosted(population);
  std::printf("%-24s impairment %.4f            presence %.2f%%  "
              "drop-off %.4f\n",
              "no boosts", baseline.mean_experience_impairment,
              baseline.mean_presence_pct, baseline.mean_drop_off);

  for (const auto policy :
       {BoostPolicy::kRandom, BoostPolicy::kWorstNetworkFirst,
        BoostPolicy::kPredictedGain}) {
    core::Rng rng{7};
    print_outcome(to_string(policy), experiment.run(population, policy, rng),
                  baseline);
  }

  // Budget sweep for the USaaS policy.
  std::printf("\nUSaaS policy across budgets:\n");
  for (const double budget : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    service::QoeExperimentConfig cfg;
    cfg.budget_fraction = budget;
    const QoeExperiment exp{cfg};
    core::Rng rng{7};
    const auto out = exp.run(population, BoostPolicy::kPredictedGain, rng);
    std::printf("  budget %4.0f%% -> impairment %.4f, drop-off %.4f\n",
                100.0 * budget, out.mean_experience_impairment,
                out.mean_drop_off);
  }
  std::printf("\nreading: informed policies concentrate the budget where "
              "behaviour responds; the marginal-gain (USaaS) ranking avoids "
              "wasting boosts on sessions the boost cannot save.\n");
}

void BM_AllocationPolicies(benchmark::State& state) {
  static const auto population = make_population(20000);
  const QoeExperiment experiment;
  const auto policy = static_cast<BoostPolicy>(state.range(0));
  for (auto _ : state) {
    core::Rng rng{7};
    benchmark::DoNotOptimize(
        experiment.run(population, policy, rng).mean_experience_impairment);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(population.size()));
}
BENCHMARK(BM_AllocationPolicies)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
