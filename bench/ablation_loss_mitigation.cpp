// Ablation: app-layer loss mitigation OFF.
//
// Fig 1 (middle-left)'s headline — loss up to 2% barely moves engagement —
// is not a property of users but of the application's safeguards ("MS
// Teams is able to effectively mitigate the packet loss using application
// layer safeguards"). Disabling FEC + retransmission makes the loss curve
// collapse like the latency curve, demonstrating the dependency.
#include "bench_util.h"

#include "usaas/correlation_engine.h"

namespace {

using namespace usaas;
using service::CorrelationEngine;
using service::EngagementMetric;

CorrelationEngine build_engine(bool mitigation_enabled) {
  confsim::DatasetConfig cfg;
  cfg.seed = 66;
  cfg.num_calls = 20000;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  cfg.sweep_metric = netsim::Metric::kLoss;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 3.5;
  cfg.mitigation.enabled = mitigation_enabled;
  CorrelationEngine engine;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });
  return engine;
}

void reproduction() {
  bench::print_header(
      "Ablation: loss curve with and without app-layer safeguards");
  const auto with = build_engine(true);
  const auto without = build_engine(false);

  service::SweepSpec spec;
  spec.metric = netsim::Metric::kLoss;
  spec.lo = 0.0;
  spec.hi = 3.5;
  spec.bins = 7;

  for (const auto metric :
       {EngagementMetric::kPresence, EngagementMetric::kMicOn}) {
    const auto mitigated =
        with.engagement_curve(spec, metric).normalized();
    const auto raw = without.engagement_curve(spec, metric).normalized();
    std::printf("\n%s (normalized)\n", to_string(metric));
    std::printf("%10s | %12s %12s\n", "loss %", "mitigated", "no-mitigation");
    bench::print_rule();
    for (std::size_t i = 0; i < mitigated.points.size(); ++i) {
      std::printf("%10.2f | %12.1f %12.1f\n",
                  mitigated.points[i].metric_value,
                  mitigated.points[i].engagement,
                  i < raw.points.size() ? raw.points[i].engagement : 0.0);
    }
    std::printf("drop at 3.5%% loss: mitigated %.1f%% vs no-mitigation "
                "%.1f%%\n",
                mitigated.relative_drop_percent(),
                raw.relative_drop_percent());
  }

  // Drop-off comparison: without safeguards the cliff moves left.
  std::printf("\nearly drop-off probability:\n");
  std::printf("%10s | %12s %12s\n", "loss %", "mitigated", "no-mitigation");
  bench::print_rule();
  const auto d_with = with.dropoff_curve(spec);
  const auto d_without = without.dropoff_curve(spec);
  for (std::size_t i = 0; i < d_with.size(); ++i) {
    std::printf("%10.2f | %12.3f %12.3f\n", d_with[i].metric_value,
                d_with[i].engagement,
                i < d_without.size() ? d_without[i].engagement : 0.0);
  }
}

void BM_MitigatedVsRawDataset(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  for (auto _ : state) {
    confsim::DatasetConfig cfg;
    cfg.seed = 1;
    cfg.num_calls = 500;
    cfg.mitigation.enabled = enabled;
    std::size_t n = 0;
    confsim::CallDatasetGenerator{cfg}.generate_stream(
        [&](const confsim::CallRecord& call) { n += call.participants.size(); });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_MitigatedVsRawDataset)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
