// Fig 5(a): daily strong-positive / strong-negative post counts on
// r/Starlink with the top-3 peaks annotated by news search.
// Fig 5(b): the word cloud of the 3rd-highest peak (22 Apr '22) whose
// top words include "outage" although no news outlet covered it.
#include "bench_util.h"

#include "usaas/peak_annotator.h"

namespace {

using namespace usaas;

void reproduction() {
  bench::print_header(
      "Fig 5 reproduction: sentiment peaks on r/Starlink, Jan'21-Dec'22");
  const auto corpus = bench::make_social_corpus();
  std::printf("simulated posts: %zu (%.0f/week; paper: 372/week)\n",
              corpus.posts.size(), corpus.posts.size() / 104.3);

  const nlp::SentimentAnalyzer analyzer;
  const service::PeakAnnotator annotator{analyzer, corpus.events};

  // Monthly summary of the daily strong-sentiment series (Fig 5a's shape).
  const auto series =
      annotator.build_series(corpus.posts, corpus.first, corpus.last);
  std::printf("\nmonthly strong-sentiment post counts:\n");
  std::printf("%8s | %10s %10s\n", "month", "strong+", "strong-");
  bench::print_rule();
  core::Date month = corpus.first;
  while (month <= corpus.last) {
    double pos = 0.0;
    double neg = 0.0;
    const core::Date next = month.plus_months(1);
    core::for_each_day(month, next.plus_days(-1), [&](const core::Date& d) {
      pos += series.strong_positive.at(d);
      neg += series.strong_negative.at(d);
    });
    std::printf("%8s | %10.0f %10.0f\n", month.month_string().c_str(), pos,
                neg);
    month = next;
  }

  // The top-3 peaks with their word clouds and news annotations.
  const auto peaks =
      annotator.annotate(corpus.posts, corpus.first, corpus.last);
  std::printf("\ntop-%zu sentiment peaks (paper: 9 Feb'21 +preorders, "
              "24 Nov'21 -delays, 22 Apr'22 -uncovered outage):\n",
              peaks.size());
  for (std::size_t i = 0; i < peaks.size(); ++i) {
    const auto& p = peaks[i];
    std::printf("\n#%zu  %s  strong+=%.0f strong-=%.0f  (%s)\n", i + 1,
                p.date.to_string().c_str(), p.strong_positive,
                p.strong_negative,
                p.positive_dominant ? "positive" : "negative");
    std::printf("    search terms:");
    for (const auto& t : p.search_terms) std::printf(" '%s'", t.c_str());
    std::printf("\n    news: %s\n",
                p.news ? p.news->headline.c_str()
                       : "NONE FOUND (the community knew first)");
    std::printf("    summary: %.220s...\n", p.summary.c_str());
    if (p.date == core::Date(2022, 4, 22)) {
      std::printf("\n    Fig 5(b): word cloud of the 22 Apr '22 peak day\n");
      std::printf("%s", p.cloud.render_text(12).c_str());
      const auto rank = p.cloud.rank_of("outage");
      if (rank) {
        std::printf("    'outage' ranks #%zu in the cloud (paper: 3rd most "
                    "common word)\n",
                    *rank + 1);
      }
    }
  }
}

void BM_SentimentSeries(benchmark::State& state) {
  static const auto corpus = usaas::bench::make_social_corpus();
  const nlp::SentimentAnalyzer analyzer;
  const service::PeakAnnotator annotator{analyzer, corpus.events};
  for (auto _ : state) {
    const auto series =
        annotator.build_series(corpus.posts, corpus.first, corpus.last);
    benchmark::DoNotOptimize(series.strong_positive.values().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.posts.size()));
}
BENCHMARK(BM_SentimentSeries);

void BM_PeakAnnotation(benchmark::State& state) {
  static const auto corpus = usaas::bench::make_social_corpus();
  const nlp::SentimentAnalyzer analyzer;
  const service::PeakAnnotator annotator{analyzer, corpus.events};
  for (auto _ : state) {
    const auto peaks =
        annotator.annotate(corpus.posts, corpus.first, corpus.last);
    benchmark::DoNotOptimize(peaks.data());
  }
}
BENCHMARK(BM_PeakAnnotation);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
