// Ablation: hedonic adaptation (the "shifting fulcrum") OFF.
//
// §4.2's anomaly — Dec '21 speeds beat Apr '21 yet Pos is drastically
// lower, and 2022's Pos recovers while speeds keep falling — only exists
// because users judge speeds against an *adapted* expectation. With the
// adaptation replaced by a fixed absolute reference, Pos becomes a pure
// function of the speed level and both anomalies vanish.
#include "bench_util.h"

#include "usaas/fulcrum.h"

namespace {

using namespace usaas;

std::vector<service::FulcrumMonth> run(bool adaptation) {
  social::SubredditConfig cfg;
  cfg.adaptation_enabled = adaptation;
  const auto corpus = bench::make_social_corpus(cfg);
  const nlp::SentimentAnalyzer analyzer;
  const service::FulcrumTracker tracker{analyzer};
  return tracker.analyze(corpus.posts);
}

const service::FulcrumMonth& month_at(
    const std::vector<service::FulcrumMonth>& months, int y, int m) {
  for (const auto& fm : months) {
    if (fm.year == y && fm.month == m) return fm;
  }
  throw std::runtime_error("missing month");
}

void reproduction() {
  bench::print_header("Ablation: Pos score with and without adaptation");
  const auto adapted = run(true);
  const auto absolute = run(false);

  std::printf("%8s | %7s | %12s | %12s\n", "month", "median",
              "Pos (adapted)", "Pos (absolute)");
  bench::print_rule();
  for (std::size_t i = 0; i < adapted.size(); ++i) {
    std::printf("%04d-%02d | %7.1f | %12s | %12s\n", adapted[i].year,
                adapted[i].month, adapted[i].median_downlink_mbps,
                adapted[i].pos_score
                    ? std::to_string(*adapted[i].pos_score).substr(0, 5).c_str()
                    : "n/a",
                absolute[i].pos_score
                    ? std::to_string(*absolute[i].pos_score).substr(0, 5).c_str()
                    : "n/a");
  }

  const auto& a_apr = month_at(adapted, 2021, 4);
  const auto& a_dec = month_at(adapted, 2021, 12);
  const auto& b_apr = month_at(absolute, 2021, 4);
  const auto& b_dec = month_at(absolute, 2021, 12);
  std::printf("\nDec'21-vs-Apr'21 anomaly (speeds %.1f vs %.1f):\n",
              a_dec.median_downlink_mbps, a_apr.median_downlink_mbps);
  std::printf("  adapted:  Pos %.2f (Apr) -> %.2f (Dec)  [anomaly: lower "
              "despite faster]\n",
              a_apr.pos_score.value_or(0), a_dec.pos_score.value_or(0));
  std::printf("  absolute: Pos %.2f (Apr) -> %.2f (Dec)  [no anomaly: "
              "tracks the level]\n",
              b_apr.pos_score.value_or(0), b_dec.pos_score.value_or(0));

  const auto& a_mar22 = month_at(adapted, 2022, 3);
  const auto& a_dec22 = month_at(adapted, 2022, 12);
  const auto& b_mar22 = month_at(absolute, 2022, 3);
  const auto& b_dec22 = month_at(absolute, 2022, 12);
  std::printf("\n2022 inverse trend (speeds %.1f -> %.1f):\n",
              a_mar22.median_downlink_mbps, a_dec22.median_downlink_mbps);
  std::printf("  adapted:  Pos %.2f -> %.2f  [recovers while speeds fall]\n",
              a_mar22.pos_score.value_or(0), a_dec22.pos_score.value_or(0));
  std::printf("  absolute: Pos %.2f -> %.2f  [keeps falling with speeds]\n",
              b_mar22.pos_score.value_or(0), b_dec22.pos_score.value_or(0));
}

void BM_CorpusWithAdaptation(benchmark::State& state) {
  for (auto _ : state) {
    social::SubredditConfig cfg;
    cfg.last_day = core::Date(2021, 6, 30);  // half a year per iteration
    cfg.adaptation_enabled = state.range(0) != 0;
    const auto corpus = usaas::bench::make_social_corpus(cfg);
    benchmark::DoNotOptimize(corpus.posts.data());
  }
}
BENCHMARK(BM_CorpusWithAdaptation)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
