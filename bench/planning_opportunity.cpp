// §6 (text): "could SpaceX change Starlink deployment plans (which LEO
// satellite shell to deploy next) given the current deployment, footprint,
// and user sentiment?"
//
// Evaluates four temporal allocations of the same launch budget over a
// 12-month horizon, forecasting the Pos sentiment score through the same
// fulcrum (adaptation) dynamics the §4.2 study measured. Because users
// judge *changes* against an adapted expectation, when the plan is
// allocated matters as much as how much capacity it adds.
#include "bench_util.h"

#include "usaas/planner.h"

namespace {

using namespace usaas;
using service::DeploymentPlanner;
using service::PlanObjective;
using service::PlanSpec;

constexpr int kBudget = 36;
constexpr int kMonths = 12;

void print_plan(const service::PlanEvaluation& ev) {
  std::printf("\n%-28s  meanPos %.3f  minPos %.3f  final median %.1f Mbps\n",
              ev.plan.name.c_str(), ev.mean_pos, ev.min_pos,
              ev.final_median_mbps);
  std::printf("  launches/month: [");
  for (const int n : ev.plan.launches_per_month) std::printf(" %d", n);
  std::printf(" ]\n  monthly Pos:    [");
  for (const auto& m : ev.months) std::printf(" %.2f", m.forecast_pos);
  std::printf(" ]\n");
}

void reproduction() {
  bench::print_header(
      "Network-planning opportunity: same 36-launch budget, four temporal "
      "allocations (horizon: calendar 2023)");
  const DeploymentPlanner planner{leo::LaunchSchedule{},
                                  leo::SubscriberModel{},
                                  core::Date(2023, 1, 1)};

  print_plan(planner.evaluate(
      DeploymentPlanner::uniform_plan(kBudget, kMonths), kMonths));
  print_plan(planner.evaluate(
      DeploymentPlanner::front_loaded_plan(kBudget, kMonths), kMonths));
  print_plan(planner.evaluate(
      DeploymentPlanner::back_loaded_plan(kBudget, kMonths), kMonths));
  print_plan(planner.evaluate(
      planner.sentiment_aware_plan(kBudget, kMonths, PlanObjective::kMeanPos),
      kMonths));
  print_plan(planner.evaluate(
      planner.sentiment_aware_plan(kBudget, kMonths, PlanObjective::kMinPos),
      kMonths));

  std::printf("\nreading: front-loading buys the highest average sentiment "
              "(a big early speed jump) at the cost of the worst month; the "
              "min-pos plan spreads launches to keep the adapted community "
              "from ever experiencing a deep decline. The satellites are "
              "identical — only the calendar differs.\n");
}

void BM_PlanEvaluation(benchmark::State& state) {
  const DeploymentPlanner planner{leo::LaunchSchedule{},
                                  leo::SubscriberModel{},
                                  core::Date(2023, 1, 1)};
  const auto plan = DeploymentPlanner::uniform_plan(kBudget, kMonths);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.evaluate(plan, kMonths).mean_pos);
  }
}
BENCHMARK(BM_PlanEvaluation);

void BM_SentimentAwareSearch(benchmark::State& state) {
  const DeploymentPlanner planner{leo::LaunchSchedule{},
                                  leo::SubscriberModel{},
                                  core::Date(2023, 1, 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        planner.sentiment_aware_plan(12, 6, PlanObjective::kMeanPos));
  }
}
BENCHMARK(BM_SentimentAwareSearch);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
