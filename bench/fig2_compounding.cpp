// Fig 2: "High network latency and high packet loss together have a
// compounding impact on Presence."
//
// Regenerates the latency x loss heat map of mean Presence and reports the
// worst-cell dip relative to the best cell (the paper: "Presence could dip
// by as much as ~50% for certain combinations").
#include "bench_util.h"

#include "usaas/correlation_engine.h"

namespace {

using namespace usaas;
using service::CorrelationEngine;
using service::EngagementMetric;

CorrelationEngine build_engine(std::size_t calls) {
  confsim::DatasetConfig cfg;
  cfg.seed = 22;
  cfg.num_calls = calls;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  cfg.sweep_metric = netsim::Metric::kLatency;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 320.0;
  // Let loss roam over its full range too (jitter/bw stay controlled).
  cfg.control_windows.loss_hi_pct = 3.4;
  CorrelationEngine engine;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });
  return engine;
}

void reproduction() {
  bench::print_header(
      "Fig 2 reproduction: Presence heat map over latency x loss");
  const auto engine = build_engine(30000);
  constexpr std::size_t kLatBins = 4;
  constexpr std::size_t kLossBins = 4;
  const auto grid = engine.compounding_grid(EngagementMetric::kPresence,
                                            320.0, kLatBins, 3.4, kLossBins);

  std::printf("%18s", "loss \\ latency |");
  for (std::size_t xi = 0; xi < kLatBins; ++xi) {
    std::printf("  %6.0f ms", (320.0 / kLatBins) * (xi + 0.5));
  }
  std::printf("\n");
  bench::print_rule();
  for (std::size_t yi = 0; yi < kLossBins; ++yi) {
    std::printf("%12.2f %% |", (3.4 / kLossBins) * (yi + 0.5));
    for (std::size_t xi = 0; xi < kLatBins; ++xi) {
      const auto mean = grid.cell_mean(xi, yi);
      if (mean) {
        std::printf("  %8.1f", *mean);
      } else {
        std::printf("  %8s", "-");
      }
    }
    std::printf("\n");
  }

  const auto best = grid.max_cell_mean();
  const auto worst = grid.min_cell_mean();
  if (best && worst) {
    std::printf("\nbest cell %.1f, worst cell %.1f -> dip to %.0f%% of best "
                "(paper: dips \"by as much as ~50%%\")\n",
                *best, *worst, 100.0 * *worst / *best);
  }

  // The additive-vs-compound decomposition the paper argues for.
  const auto lat_only = grid.cell_mean(kLatBins - 1, 0);
  const auto loss_only = grid.cell_mean(0, kLossBins - 1);
  const auto both = grid.cell_mean(kLatBins - 1, kLossBins - 1);
  const auto neither = grid.cell_mean(0, 0);
  if (lat_only && loss_only && both && neither) {
    const double lat_damage = *neither - *lat_only;
    const double loss_damage = *neither - *loss_only;
    const double joint = *neither - *both;
    std::printf("damage: latency-only %.1f + loss-only %.1f = %.1f < joint "
                "%.1f (superadditive)\n",
                lat_damage, loss_damage, lat_damage + loss_damage, joint);
  }
}

void BM_GridConstruction(benchmark::State& state) {
  static const CorrelationEngine engine = build_engine(8000);
  for (auto _ : state) {
    const auto grid = engine.compounding_grid(EngagementMetric::kPresence,
                                              320.0, 8, 3.4, 8);
    benchmark::DoNotOptimize(grid.max_cell_mean());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(engine.session_count()));
}
BENCHMARK(BM_GridConstruction);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
