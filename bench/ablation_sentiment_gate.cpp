// Ablation: sentiment gating OFF in the outage detector.
//
// §4.1: keyword "occurrences are only counted if the user sentiment
// attached to them was negative to avoid false positives." With the gate
// removed, neutral/positive threads that merely *mention* outage words
// ("no outage this month!", reliability praise, question threads) leak
// into the daily counts and detection precision falls.
#include "bench_util.h"

#include "usaas/outage_detector.h"

namespace {

using namespace usaas;

void reproduction() {
  bench::print_header("Ablation: outage detection with and without the "
                      "negative-sentiment gate");
  const auto corpus = bench::make_social_corpus();
  const nlp::SentimentAnalyzer analyzer;

  const service::OutageDetector gated{
      analyzer, nlp::KeywordDictionary::outage_dictionary()};
  service::OutageDetectorConfig cfg;
  cfg.require_negative_sentiment = false;
  const service::OutageDetector ungated{
      analyzer, nlp::KeywordDictionary::outage_dictionary(), cfg};

  const auto gated_series =
      gated.keyword_series(corpus.posts, corpus.first, corpus.last);
  const auto ungated_series =
      ungated.keyword_series(corpus.posts, corpus.first, corpus.last);
  std::printf("total keyword occurrences counted: gated %.0f vs ungated "
              "%.0f (+%.0f%% noise)\n",
              gated_series.total(), ungated_series.total(),
              100.0 * (ungated_series.total() / gated_series.total() - 1.0));

  const auto truth = corpus.outages.days_above(0.004);
  for (const bool gate : {true, false}) {
    const auto& detector = gate ? gated : ungated;
    const auto detections =
        detector.detect(corpus.posts, corpus.first, corpus.last);
    const auto q = service::OutageDetector::evaluate(detections, truth, 1);
    std::printf("\n%s: %zu detections, precision %.2f, recall %.2f\n",
                gate ? "WITH gate" : "WITHOUT gate", detections.size(),
                q.precision(), q.recall());
  }
  std::printf("\n(without the gate, benign keyword chatter more than "
              "doubles the counts: precision falls AND the raised noise "
              "floor buries the small real spikes — the paper's "
              "rationale)\n");
}

void BM_GatedVsUngatedSeries(benchmark::State& state) {
  static const auto corpus = usaas::bench::make_social_corpus();
  const nlp::SentimentAnalyzer analyzer;
  service::OutageDetectorConfig cfg;
  cfg.require_negative_sentiment = state.range(0) != 0;
  const service::OutageDetector detector{
      analyzer, nlp::KeywordDictionary::outage_dictionary(), cfg};
  for (auto _ : state) {
    const auto series =
        detector.keyword_series(corpus.posts, corpus.first, corpus.last);
    benchmark::DoNotOptimize(series.values().data());
  }
}
BENCHMARK(BM_GatedVsUngatedSeries)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
