// Fig 3: "The platform type impacts user sensitivity to network loss rate."
//
// Regenerates the per-platform Presence-vs-loss curves; mobile platforms
// drop off sooner at the same loss rate.
#include "bench_util.h"

#include "usaas/correlation_engine.h"

namespace {

using namespace usaas;
using confsim::Platform;
using service::CorrelationEngine;
using service::EngagementMetric;

CorrelationEngine build_engine(std::size_t calls) {
  confsim::DatasetConfig cfg;
  cfg.seed = 33;
  cfg.num_calls = calls;
  cfg.sampling = confsim::ConditionSampling::kSweep;
  cfg.sweep_metric = netsim::Metric::kLoss;
  cfg.sweep_lo = 0.0;
  cfg.sweep_hi = 3.5;
  CorrelationEngine engine;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) { engine.ingest(call); });
  return engine;
}

void reproduction() {
  bench::print_header(
      "Fig 3 reproduction: Presence vs loss rate, per platform (normalized)");
  const auto engine = build_engine(40000);

  service::SweepSpec spec;
  spec.metric = netsim::Metric::kLoss;
  spec.lo = 0.0;
  spec.hi = 3.5;
  spec.bins = 7;

  constexpr Platform kPlatforms[] = {Platform::kWindowsPc, Platform::kMacPc,
                                     Platform::kIos, Platform::kAndroid};
  std::vector<service::EngagementCurve> curves;
  for (const Platform p : kPlatforms) {
    curves.push_back(engine
                         .engagement_curve(spec, EngagementMetric::kPresence,
                                           [p](const confsim::ParticipantRecord& r) {
                                             return r.platform == p;
                                           })
                         .normalized());
  }

  std::printf("%10s |", "loss %");
  for (const Platform p : kPlatforms) std::printf(" %11s", to_string(p));
  std::printf("\n");
  bench::print_rule();
  for (std::size_t i = 0; i < curves[0].points.size(); ++i) {
    std::printf("%10.2f |", curves[0].points[i].metric_value);
    for (const auto& curve : curves) {
      std::printf(" %11.1f",
                  i < curve.points.size() ? curve.points[i].engagement : 0.0);
    }
    std::printf("\n");
  }
  std::printf("\nrelative presence drop at 3.5%% loss:\n");
  for (std::size_t i = 0; i < curves.size(); ++i) {
    std::printf("  %-11s %.1f%%\n", to_string(kPlatforms[i]),
                curves[i].relative_drop_percent());
  }
  std::printf("(paper: mobile users drop off sooner; OS matters too)\n");
}

void BM_FilteredCurve(benchmark::State& state) {
  static const CorrelationEngine engine = build_engine(8000);
  service::SweepSpec spec;
  spec.metric = netsim::Metric::kLoss;
  spec.lo = 0.0;
  spec.hi = 3.5;
  for (auto _ : state) {
    const auto curve = engine.engagement_curve(
        spec, EngagementMetric::kPresence,
        [](const confsim::ParticipantRecord& r) {
          return r.platform == Platform::kAndroid;
        });
    benchmark::DoNotOptimize(curve.points.data());
  }
}
BENCHMARK(BM_FilteredCurve);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
