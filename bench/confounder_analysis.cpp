// §6 (text): "Are networks to blame always? ... there could be confounders
// that need to be taken care of while correlating network performance with
// user actions ... meeting size ... and long-term conditioning."
//
// Decomposes engagement variance across observable factors (eta-squared
// over strata) and shows that (a) for Mic On, meeting size dwarfs the
// network — the naive correlation trap — while (b) the latency effect on
// Presence survives stratification by meeting size, so it is not an
// artifact.
#include "bench_util.h"

#include "usaas/confounders.h"

namespace {

using namespace usaas;
using service::EngagementMetric;
using service::Factor;

std::vector<confsim::ParticipantRecord> build_sessions() {
  confsim::DatasetConfig cfg;
  cfg.seed = 123;
  cfg.num_calls = 20000;
  cfg.sampling = confsim::ConditionSampling::kPopulation;
  std::vector<confsim::ParticipantRecord> out;
  confsim::CallDatasetGenerator{cfg}.generate_stream(
      [&](const confsim::CallRecord& call) {
        for (const auto& p : call.participants) out.push_back(p);
      });
  return out;
}

void reproduction() {
  bench::print_header(
      "Confounder analysis: variance share (eta^2) of each factor per "
      "engagement metric");
  const auto sessions = build_sessions();
  std::printf("sessions: %zu\n\n", sessions.size());

  std::printf("%18s | %9s %9s %9s\n", "factor", "Presence", "CamOn", "MicOn");
  bench::print_rule();
  for (const Factor factor :
       {Factor::kLatencyQuartile, Factor::kLossQuartile, Factor::kPlatform,
        Factor::kMeetingSize}) {
    std::printf("%18s |", to_string(factor));
    for (const auto metric :
         {EngagementMetric::kPresence, EngagementMetric::kCamOn,
          EngagementMetric::kMicOn}) {
      const auto report = service::analyze_confounders(sessions, metric);
      std::printf("   %6.4f ", report.effect_of(factor));
    }
    std::printf("\n");
  }

  const auto effect = service::latency_effect_within_meeting_size(
      sessions, EngagementMetric::kPresence);
  std::printf("\nlatency -> presence drop (Q1 vs Q4 latency): raw %.2f pp, "
              "within-meeting-size strata %.2f pp (%zu strata)\n",
              effect.raw_drop, effect.stratified_drop, effect.strata_used);
  std::printf("reading: Mic On's biggest 'signal' is meeting size, not the "
              "network — but the latency effect on Presence survives "
              "stratification, so the §3 curves are not a size artifact.\n");
}

void BM_ConfounderReport(benchmark::State& state) {
  static const auto sessions = build_sessions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service::analyze_confounders(sessions, EngagementMetric::kPresence));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sessions.size()));
}
BENCHMARK(BM_ConfounderReport);

}  // namespace

int main(int argc, char** argv) {
  return usaas::bench::run_reproduction_then_benchmarks(argc, argv,
                                                        reproduction);
}
